"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment module (``test_bench_e1_*`` .. ``test_bench_e8_*``)
corresponds to one row of the experiment index in ``DESIGN.md`` and one
section of ``EXPERIMENTS.md``.  Wall-clock numbers come from
pytest-benchmark; derived metrics (byte-code counts, kernel launches,
simulated device time, predicted speedups) are attached to each benchmark's
``extra_info`` so they appear in ``--benchmark-json`` output, and are also
printed so a plain ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-style comparison tables.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.frontend.session import Session, set_session
from repro.utils.config import Config, set_config


@pytest.fixture(autouse=True)
def clean_global_state():
    """Reset global configuration and the default front-end session per benchmark."""
    set_config(Config())
    set_session(Session())
    yield
    set_config(Config())
    set_session(Session())


def record_table(benchmark, title: str, rows: list, columns: list) -> None:
    """Attach a small result table to a benchmark and print it.

    Parameters
    ----------
    benchmark:
        The pytest-benchmark fixture.
    title:
        Table caption (e.g. ``"E1: byte-code counts"``).
    rows:
        List of dicts, one per row.
    columns:
        Column order.
    """
    benchmark.extra_info[title] = rows
    header = " | ".join(f"{name:>16}" for name in columns)
    lines = [f"\n[{title}]", header, "-" * len(header)]
    for row in rows:
        lines.append(" | ".join(f"{_format(row.get(name)):>16}" for name in columns))
    print("\n".join(lines))


def _format(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)
