"""Shared fixtures and reporting helpers for the benchmark harness.

Every experiment module (``test_bench_e1_*`` .. ``test_bench_e15_*``)
corresponds to one row of the experiment index in ``DESIGN.md`` and one
section of ``EXPERIMENTS.md``.  Wall-clock numbers come from
pytest-benchmark; derived metrics (byte-code counts, kernel launches,
simulated device time, predicted speedups) are attached to each benchmark's
``extra_info`` so they appear in ``--benchmark-json`` output, and are also
printed so a plain ``pytest benchmarks/ --benchmark-only -s`` shows the
paper-style comparison tables.

Perf trajectory
---------------
At session finish every benchmark that ran is folded into one
``BENCH_<experiment>.json`` file per experiment module at the repository
root (``test_bench_e12_parallel`` → ``BENCH_E12.json``): wall-clock
statistics plus every ``record_table`` table.  The files are committed, so
``git log -p BENCH_E12.json`` is the performance trajectory of that
experiment across PRs — machine-readable, no dashboard required.
"""

from __future__ import annotations

import json
import os
import platform
import re
from pathlib import Path

import numpy as np
import pytest

from repro.frontend.session import Session, set_session
from repro.utils.config import Config, set_config

#: Repository root — BENCH_*.json trajectory files land here.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: Bump when the trajectory file layout changes shape.
BENCH_SCHEMA = 2


def _host_block() -> dict:
    """Hardware/platform stamp for ``BENCH_*.json``.

    Wall-clock trajectories are only comparable on like hardware; without
    this block a committed number from a 2-core CI runner and one from a
    32-core workstation were indistinguishable.
    """
    return {
        "cpu_count": os.cpu_count() or 1,
        "machine": platform.machine(),
        "system": platform.system(),
        "python": platform.python_version(),
    }


@pytest.fixture(autouse=True)
def clean_global_state():
    """Reset global configuration and the default front-end session per benchmark.

    ``REPRO_CHECK_IR=1`` in the environment turns on the static checking
    layer for the whole benchmark run — CI's static-analysis job uses it
    to smoke the plan-cache and codegen experiments with every analyzer
    live, proving the checks survive real workloads (and making their
    overhead visible in the wall-clock trajectory if it ever grows).
    """
    check_ir = os.environ.get("REPRO_CHECK_IR", "") not in ("", "0")
    set_config(Config(check_ir=check_ir))
    set_session(Session())
    yield
    set_config(Config())
    set_session(Session())


def record_table(benchmark, title: str, rows: list, columns: list) -> None:
    """Attach a small result table to a benchmark and print it.

    Parameters
    ----------
    benchmark:
        The pytest-benchmark fixture.
    title:
        Table caption (e.g. ``"E1: byte-code counts"``).
    rows:
        List of dicts, one per row.
    columns:
        Column order.
    """
    benchmark.extra_info[title] = rows
    header = " | ".join(f"{name:>16}" for name in columns)
    lines = [f"\n[{title}]", header, "-" * len(header)]
    for row in rows:
        lines.append(" | ".join(f"{_format(row.get(name)):>16}" for name in columns))
    print("\n".join(lines))


def _format(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


# --------------------------------------------------------------------------- #
# BENCH_*.json perf-trajectory recorder
# --------------------------------------------------------------------------- #


def _experiment_id(fullname: str) -> str | None:
    """``benchmarks/test_bench_e12_parallel.py::test_x`` → ``"E12"``."""
    match = re.search(r"test_bench_(e\d+)_", fullname)
    return match.group(1).upper() if match else None


def _json_safe(value):
    """Recursively coerce NumPy scalars so ``json`` can serialise tables."""
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, (np.floating, float)):
        return float(value)
    return value


def _trajectory_entry(bench) -> dict | None:
    """One trajectory record for a finished pytest-benchmark ``Metadata``."""
    stats = getattr(bench, "stats", None)
    if stats is None or not getattr(stats, "data", None):
        return None  # disabled/skipped benchmark: nothing measured
    return {
        "test": bench.name,
        "group": bench.group,
        "wall_seconds": {
            "min": float(stats.min),
            "mean": float(stats.mean),
            "max": float(stats.max),
            "rounds": int(stats.rounds),
        },
        "tables": _json_safe(dict(bench.extra_info)),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write one ``BENCH_<experiment>.json`` per experiment that ran.

    Only experiments with at least one measured benchmark are written, so a
    filtered run (``pytest benchmarks/test_bench_e15_codegen.py``) refreshes
    its own trajectory file and leaves the others untouched.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None:
        return
    experiments: dict[str, list] = {}
    for bench in bench_session.benchmarks:
        experiment = _experiment_id(bench.fullname)
        if experiment is None:
            continue
        entry = _trajectory_entry(bench)
        if entry is not None:
            experiments.setdefault(experiment, []).append(entry)
    for experiment, entries in sorted(experiments.items()):
        payload = {
            "schema": BENCH_SCHEMA,
            "experiment": experiment,
            "host": _host_block(),
            "benchmarks": sorted(entries, key=lambda item: item["test"]),
        }
        path = REPO_ROOT / f"BENCH_{experiment}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
