"""E10 — the extended pass set (beyond the paper's listings).

The paper's conclusion plans "a further study of real examples"; these
benchmarks measure what the extension passes add on top of the paper's
transformations:

* scalar constant folding (collapses constant-initialised pipelines),
* strength reduction (division-by-constant, sqrt/reciprocal powers),
* common-subexpression elimination (duplicate element-wise expressions).

Expected shape: the extended pipeline never produces more byte-codes than
the default pipeline, removes duplicate work where the workload has any, and
costs only marginally more optimizer time.
"""

import numpy as np
import pytest

from repro import frontend as bh
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.core.cost import CostModel
from repro.core.pipeline import default_pipeline, optimize
from repro.core.verifier import SemanticVerifier
from repro.frontend.session import reset_session
from repro.workloads import elementwise_chain, repeated_constant_add

from conftest import record_table


def _duplicate_expression_program(size=10_000):
    """A program with a repeated sub-expression (sqrt(x) computed twice)."""
    builder = ProgramBuilder()
    x = builder.new_vector(size)
    first = builder.new_vector(size)
    second = builder.new_vector(size)
    total = builder.new_vector(size)
    builder.random(x, seed=7)
    builder.sqrt(first, x)
    builder.sqrt(second, x)        # duplicate of the sqrt above
    builder.add(total, first, second)
    builder.divide(total, total, 4.0)
    builder.sync(total)
    builder.free(first)
    builder.free(second)
    return builder.build()


def test_default_pipeline(benchmark):
    """Baseline optimizer: the paper's pass set."""
    program = _duplicate_expression_program()
    report = benchmark(lambda: optimize(program))
    benchmark.group = "E10 duplicate-expression workload"
    benchmark.extra_info["bytecodes_after"] = len(report.optimized)
    assert report.changed


def test_extended_pipeline(benchmark):
    """Extended optimizer: + constant folding, strength reduction, CSE."""
    program = _duplicate_expression_program()
    report = benchmark(lambda: optimize(program, extended=True))
    benchmark.group = "E10 duplicate-expression workload"

    default_report = optimize(program)
    model = CostModel("gpu")
    rows = [
        {
            "pipeline": "default (paper)",
            "bytecodes": len(default_report.optimized),
            "sqrt_ops": default_report.optimized.count(OpCode.BH_SQRT),
            "divide_ops": default_report.optimized.count(OpCode.BH_DIVIDE),
            "simulated_us": model.program_cost(default_report.optimized) * 1e6,
        },
        {
            "pipeline": "extended",
            "bytecodes": len(report.optimized),
            "sqrt_ops": report.optimized.count(OpCode.BH_SQRT),
            "divide_ops": report.optimized.count(OpCode.BH_DIVIDE),
            "simulated_us": model.program_cost(report.optimized) * 1e6,
        },
    ]
    record_table(
        benchmark,
        "E10: default vs extended pipeline on a duplicate-expression workload",
        rows,
        ["pipeline", "bytecodes", "sqrt_ops", "divide_ops", "simulated_us"],
    )
    assert report.optimized.count(OpCode.BH_SQRT) == 1          # CSE removed the duplicate
    assert report.optimized.count(OpCode.BH_DIVIDE) == 0        # strength reduction
    assert len(report.optimized) <= len(default_report.optimized)
    SemanticVerifier().check(program, report.optimized)


def test_extended_pipeline_overhead(benchmark):
    """Optimizer wall-clock: extended pass list on a plain workload (no opportunities)."""
    program, _ = elementwise_chain(1_000, length=12)
    report = benchmark(lambda: optimize(program, extended=True))
    benchmark.group = "E10 optimizer overhead"
    default_report = optimize(program)
    # no extra opportunities: both pipelines converge to the same size
    assert len(report.optimized) == len(default_report.optimized)


def test_extended_pipeline_on_frontend_workload(benchmark):
    """End-to-end: Black-Scholes-like duplicate expressions through the front-end."""

    def run():
        pipeline = default_pipeline(extended=True)
        session = reset_session(backend="interpreter", optimize=True, pipeline=pipeline)
        bh.random.seed(11)
        spot = bh.random.uniform(80.0, 120.0, 50_000)
        log_m = bh.log(spot / 100.0)
        d1 = (log_m + 0.07) / 0.2
        d2 = (log_m + 0.03) / 0.2          # log(spot / 100) recorded twice? no — reused;
        payoff = bh.maximum(spot - 100.0, 0.0) / 2.0
        total = (d1 + d2).sum() + payoff.sum()
        value = float(total)
        return value, session.last_report

    value, report = benchmark(run)
    benchmark.group = "E10 front-end workload"
    assert np.isfinite(value)
    assert report is not None
