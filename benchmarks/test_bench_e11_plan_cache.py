"""E11 — plan-cache amortization on repeated-flush workloads.

Iterative scientific programs (the heat-equation stencil here) flush a
structurally identical byte-code batch every iteration: the opcodes, view
geometry and constants repeat, only the base arrays behind the front-end
temporaries are fresh.  Without a plan cache the middleware re-runs the full
fixed-point optimization pipeline per flush; with the execution engine's
program-fingerprint cache every iteration after warm-up rebinds a cached
:class:`~repro.runtime.plan.ExecutionPlan` in one linear pass.

The acceptance criterion asserted below: after the first iterations the
per-flush middleware overhead (``ExecutionStats.plan_time_seconds`` —
optimize + partition time) drops by at least 2x, and the plan-cache hit
counters prove the reuse is real.  In practice the reduction is one to two
orders of magnitude; the 2x bound keeps the assertion robust on noisy CI
hosts.
"""

import numpy as np
import pytest

from repro.frontend import flush as frontend_flush
from repro.frontend import zeros
from repro.frontend.session import reset_session

from conftest import record_table

GRID = 96
ITERATIONS = 50


def _heat_step(work):
    """One Jacobi iteration expressed with shifted views, as a user writes it."""
    up = work[0:-2, 1:-1]
    down = work[2:, 1:-1]
    left = work[1:-1, 0:-2]
    right = work[1:-1, 2:]
    interior = (up + down + left + right) * 0.25
    next_grid = work.copy()
    next_grid[1:-1, 1:-1] = interior
    return next_grid


def _run_iterations(backend, optimize):
    session = reset_session(backend=backend, optimize=optimize)
    grid = zeros((GRID, GRID))
    grid[0, :] = 100.0
    grid[-1, :] = 100.0
    work = grid
    per_flush = []
    for _ in range(ITERATIONS):
        work = _heat_step(work)
        frontend_flush()
        stats = session.stats_history[-1]
        per_flush.append(
            {
                "plan_s": stats.plan_time_seconds,
                "hit": stats.plan_cache_hits,
                "miss": stats.plan_cache_misses,
            }
        )
    checksum = float(work.to_numpy().sum())
    return session, per_flush, checksum


@pytest.mark.parametrize("backend", ("interpreter", "jit"))
def test_plan_cache_amortizes_middleware_overhead(benchmark, backend):
    """50 heat-equation flushes: steady-state planning must be >= 2x cheaper."""

    def run():
        return _run_iterations(backend, optimize=True)

    session, per_flush, checksum = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = f"E11 plan cache ({backend})"

    misses = [row for row in per_flush if row["miss"]]
    hits = [row for row in per_flush if row["hit"]]
    # The first flush can never hit; the structure stabilizes within a few
    # iterations (deferred frees of the previous iteration's temporaries
    # join the batch), after which every flush replays a cached plan.
    assert per_flush[0]["miss"] == 1
    assert len(hits) >= ITERATIONS - 5
    assert per_flush[-1]["hit"] == 1

    mean_miss_ms = 1e3 * sum(r["plan_s"] for r in misses) / len(misses)
    mean_hit_ms = 1e3 * sum(r["plan_s"] for r in hits) / len(hits)
    record_table(
        benchmark,
        f"E11: per-flush middleware overhead, {GRID}x{GRID} grid, "
        f"{ITERATIONS} iterations ({backend})",
        [
            {
                "phase": "cold (plan miss)",
                "flushes": len(misses),
                "plan_ms_per_flush": mean_miss_ms,
            },
            {
                "phase": "steady (plan hit)",
                "flushes": len(hits),
                "plan_ms_per_flush": mean_hit_ms,
            },
            {
                "phase": "reduction",
                "flushes": None,
                "plan_ms_per_flush": mean_miss_ms / mean_hit_ms if mean_hit_ms else float("inf"),
            },
        ],
        ["phase", "flushes", "plan_ms_per_flush"],
    )

    # Acceptance criterion: >= 2x reduction in per-flush middleware overhead
    # once the plan cache is warm (measured: one to two orders of magnitude).
    assert mean_hit_ms * 2.0 <= mean_miss_ms

    # The counters prove reuse, and reuse must not change results.
    cache = session.cache_stats()
    assert cache["plan_cache_hits"] == len(hits)
    _, _, reference = _run_iterations(backend, optimize=False)
    assert checksum == pytest.approx(reference)


def test_kernel_cache_shares_templates_across_iterations(benchmark):
    """The JIT compiles each structurally distinct kernel once per session."""

    def run():
        return _run_iterations("jit", optimize=True)

    session, _, _ = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "E11 kernel cache"
    cache = session.cache_stats()
    assert cache["kernel_cache_hits"] > cache["kernel_cache_misses"]
    record_table(
        benchmark,
        "E11: compiled-kernel cache over 50 iterations",
        [cache],
        ["kernel_cache_hits", "kernel_cache_misses", "kernel_cache_size"],
    )
