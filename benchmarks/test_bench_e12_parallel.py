"""E12 — tiled parallel backend versus the reference interpreter.

A large fused element-wise workload (two multi-megabyte vectors through a
24-operation chain, fused into one kernel by the pipeline) is executed by
the reference interpreter (one full-array traversal per byte-code) and by
the tiled parallel backend (the whole fused chain applied tile-by-tile,
each tile cache-sized, tiles distributed over the worker pool).

Assertions are layered by flakiness:

* **deterministic, hard** — the decomposition is exactly what the tiling
  math predicts (tile count, tiled instruction count), both backends
  execute the same byte-codes, and the results are **bit-identical**:
  tiling slices rows but never reorders arithmetic.
* **wall-clock, soft** — the acceptance target is >= 1.5x over the
  interpreter (measured ~2-3x even single-core, from cache locality
  alone; more with real cores).  Wall-clock on shared CI hosts is noisy,
  so missing the target emits a prominent warning instead of failing the
  suite; the hard floor only guards against catastrophic regression
  (parallel slower than half interpreter speed).
"""

import warnings

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.runtime.engine import ExecutionEngine
from repro.runtime.tiling import resolve_num_threads
from repro.utils.config import get_config

from conftest import record_table

VECTOR_LENGTH = 1 << 22  # 4M float64 elements = 32 MiB per vector
CHAIN_OPS = 24
SPEEDUP_TARGET = 1.5


def build_workload():
    """Two vectors through a 24-op element-wise chain, one sync at the end."""
    builder = ProgramBuilder()
    a = builder.new_vector(VECTOR_LENGTH)
    b = builder.new_vector(VECTOR_LENGTH)
    builder.identity(a, 0.5)
    builder.identity(b, 1.5)
    for i in range(CHAIN_OPS):
        if i % 3 == 0:
            builder.multiply(a, a, b)
        elif i % 3 == 1:
            builder.add(a, a, 0.125)
        else:
            builder.maximum(b, b, a)
    builder.sync(a)
    builder.sync(b)
    return builder.build(), a, b


def best_wall_time(engine, program, rounds=3):
    """Best-of-N backend wall time; the plan is warm after the first run."""
    return min(engine.execute(program).stats.wall_time_seconds for _ in range(rounds))


def test_parallel_backend_beats_interpreter_on_large_fused_workload(benchmark):
    program, a, b = build_workload()
    interpreter = ExecutionEngine(backend="interpreter", optimize=True)
    parallel = ExecutionEngine(backend="parallel", optimize=True)

    # Warm both plans (and the parallel tile templates) outside the clock;
    # the second parallel run is the one inspected below, so it must have
    # replayed the cached plan.
    reference = interpreter.execute(program)
    parallel.execute(program)
    tiled = parallel.execute(program)

    # ---------------- deterministic assertions (hard) ----------------- #
    config = get_config()
    expected_tiles_per_kernel = max(
        -(-VECTOR_LENGTH // config.parallel_tile_elements),
        resolve_num_threads(config),
    )
    stats = tiled.stats
    # The whole chain fused into one kernel -> one tiled step, whose tile
    # count is exactly the tiling arithmetic.
    assert stats.tiles_executed == expected_tiles_per_kernel
    assert stats.tiled_instructions == CHAIN_OPS + 2  # chain + two identities
    assert stats.serial_fallbacks == 0
    assert stats.threads_used >= 1
    # Both backends executed the same optimized byte-code.
    assert stats.instructions_executed == reference.stats.instructions_executed
    assert stats.kernel_launches == reference.stats.kernel_launches
    # Bit-identical results: tiling must not change a single ULP.
    assert np.array_equal(reference.value(a), tiled.value(a))
    assert np.array_equal(reference.value(b), tiled.value(b))
    # The second parallel execution replayed the cached plan + tiling.
    assert tiled.stats.plan_cache_hits == 1
    assert parallel.last_plan.tiling is not None

    # ---------------- wall-clock comparison (soft) -------------------- #
    def measure():
        return best_wall_time(interpreter, program), best_wall_time(parallel, program)

    interp_seconds, parallel_seconds = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.group = "E12 tiled parallel backend"
    speedup = interp_seconds / parallel_seconds if parallel_seconds else float("inf")

    record_table(
        benchmark,
        f"E12: {VECTOR_LENGTH} elements x {CHAIN_OPS}-op fused chain "
        f"({stats.tiles_executed} tiles, {stats.threads_used} thread(s))",
        [
            {
                "backend": "interpreter",
                "wall_ms": interp_seconds * 1e3,
                "tiles": 0,
                "speedup": 1.0,
            },
            {
                "backend": "parallel",
                "wall_ms": parallel_seconds * 1e3,
                "tiles": stats.tiles_executed,
                "speedup": speedup,
            },
        ],
        ["backend", "wall_ms", "tiles", "speedup"],
    )

    # Soft acceptance check: warn loudly instead of flaking CI.
    if speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"E12 soft target missed: parallel backend speedup {speedup:.2f}x "
            f"< {SPEEDUP_TARGET}x over the interpreter (noisy host?)",
            stacklevel=1,
        )
    # Hard floor: the tiled backend must never be drastically slower.
    assert speedup > 0.5


def test_parallel_backend_matches_interpreter_on_reductions(benchmark):
    """Reduction-heavy workload: sliced reductions stay bit-identical."""
    builder = ProgramBuilder()
    rows, cols = 2048, 512
    matrix = builder.new_matrix(rows, cols)
    row_out = builder.new_vector(cols)
    col_out = builder.new_vector(rows)
    builder.random(matrix, seed=42)
    builder.multiply(matrix, matrix, 2.0)
    builder.add_reduce(row_out, matrix, axis=0)
    builder.maximum_reduce(col_out, matrix, axis=1)
    builder.sync(row_out)
    builder.sync(col_out)
    program = builder.build()

    interpreter = ExecutionEngine(backend="interpreter", optimize=True)
    parallel = ExecutionEngine(backend="parallel", optimize=True)

    def run():
        return interpreter.execute(program), parallel.execute(program)

    reference, tiled = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "E12 tiled parallel backend"
    assert np.array_equal(reference.value(row_out), tiled.value(row_out))
    assert np.array_equal(reference.value(col_out), tiled.value(col_out))
    assert tiled.stats.tiles_executed > 0
    assert tiled.stats.serial_fallbacks == 1  # the BH_RANDOM generator
