"""E13 — liveness-driven memory planning on repeated-flush workloads.

The plan cache (E11) removed the per-flush optimizer cost and tiling (E12)
parallelized the arithmetic; what remains of the middleware overhead on
iterative workloads is *allocation*: every flush used to zero-fill a fresh
host allocation for every temporary and hand freed buffers straight back
to the OS.  The memory planning subsystem attacks both ends:

* the :class:`~repro.runtime.memory.BufferPool` recycles freed buffers
  across flushes, so steady-state iterations perform (almost) no host
  allocations at all, and
* the plan-time :class:`~repro.runtime.memplan.MemoryPlan` aliases
  temporaries with disjoint lifetimes onto shared slots and waives
  provably unnecessary zero fills, cutting the peak footprint of a batch
  below what a naive allocator needs.

The workload batches several Jacobi heat-equation steps per flush (no
intermediate observation), so temporaries are defined *and* become dead
within one program — the situation the slot allocator exploits — then
repeats the flush many times to exercise pool recycling.  All acceptance
assertions are on deterministic allocation counters and planned byte
sizes; wall-clock is reported but only soft-warned on, keeping the suite
robust on noisy CI hosts.
"""

import warnings

from repro.frontend import flush as frontend_flush
from repro.frontend import zeros
from repro.frontend.session import reset_session
from repro.utils.config import config_override

from conftest import record_table

GRID = 64
STEPS_PER_FLUSH = 6
FLUSHES = 15


def _heat_batch(work):
    """Several Jacobi iterations recorded lazily, flushed as one batch."""
    for _ in range(STEPS_PER_FLUSH):
        up = work[0:-2, 1:-1]
        down = work[2:, 1:-1]
        left = work[1:-1, 0:-2]
        right = work[1:-1, 2:]
        interior = (up + down + left + right) * 0.25
        next_grid = work.copy()
        next_grid[1:-1, 1:-1] = interior
        work = next_grid
    return work


def _run(memory_planning: bool):
    overrides = dict(
        memory_plan_enabled=memory_planning,
        memory_pool_max_bytes=(1 << 26) if memory_planning else 0,
    )
    with config_override(**overrides):
        session = reset_session(backend="interpreter", optimize=True)
        grid = zeros((GRID, GRID))
        grid[0, :] = 100.0
        grid[-1, :] = 100.0
        work = grid
        for _ in range(FLUSHES):
            work = _heat_batch(work)
            frontend_flush()
        checksum = float(work.to_numpy().sum())
        stats = session.total_stats()
        return {
            "checksum": checksum,
            "session": session,
            "stats": stats,
            "host_allocations": session.memory.host_allocations,
            "allocation_count": session.memory.allocation_count,
            "wall_s": sum(s.wall_time_seconds for s in session.stats_history),
        }


def test_memory_planning_cuts_allocations_and_peak(benchmark):
    """Planning on vs. off: >= 2x fewer host allocations, smaller planned peak."""

    def run():
        return _run(memory_planning=True), _run(memory_planning=False)

    planned, unplanned = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "E13 memory planning"

    # Results are bitwise identical with planning on and off: zero fills
    # are only waived where liveness proves no uninitialised read.
    assert planned["checksum"] == unplanned["checksum"]

    planned_stats = planned["stats"]
    unplanned_stats = unplanned["stats"]
    record_table(
        benchmark,
        f"E13: {FLUSHES} flushes x {STEPS_PER_FLUSH} heat steps, {GRID}x{GRID} grid",
        [
            {
                "mode": "planned+pool",
                "host_allocs": planned["host_allocations"],
                "pool_hits": planned_stats.pool_hits,
                "bytes_reused": planned_stats.pool_bytes_reused,
                "peak_bytes": planned_stats.actual_peak_bytes,
                "wall_s": planned["wall_s"],
            },
            {
                "mode": "unplanned",
                "host_allocs": unplanned["host_allocations"],
                "pool_hits": unplanned_stats.pool_hits,
                "bytes_reused": unplanned_stats.pool_bytes_reused,
                "peak_bytes": unplanned_stats.actual_peak_bytes,
                "wall_s": unplanned["wall_s"],
            },
        ],
        ["mode", "host_allocs", "pool_hits", "bytes_reused", "peak_bytes", "wall_s"],
    )

    # Acceptance: the recycling pool must cut host allocations by >= 2x.
    # (Measured: ~10x — only the first flush allocates; the counters are
    # deterministic, so the bound is exact, not statistical.)
    assert planned["host_allocations"] * 2 <= unplanned["host_allocations"]
    # Every materialization still happened — reuse, not skipped work.
    assert planned["allocation_count"] == unplanned["allocation_count"]
    assert planned_stats.pool_hits > 0
    assert planned_stats.pool_bytes_reused > 0

    # Acceptance: the planner's slot aliasing must put the planned peak
    # below the unplanned baseline for the batched program, and the
    # measured high-water mark must follow it down.
    session = planned["session"]
    plans = [
        plan
        for plan in (session.engine.last_plan,)
        if plan is not None and plan.memory_plan is not None
    ]
    assert plans, "no memory plan was attached"
    # total_stats keeps the max planned/actual peaks across flushes.
    assert planned_stats.planned_peak_bytes > 0
    assert planned_stats.planned_peak_bytes < unplanned_stats.actual_peak_bytes
    assert planned_stats.actual_peak_bytes < unplanned_stats.actual_peak_bytes

    # Wall-clock: reuse should not be slower; warn (don't fail) on noise.
    if planned["wall_s"] > unplanned["wall_s"] * 1.25:
        warnings.warn(
            f"memory planning slower than baseline: {planned['wall_s']:.4f}s vs "
            f"{unplanned['wall_s']:.4f}s (noisy host?)",
            stacklevel=1,
        )


def test_memory_plan_aliases_batch_temporaries(benchmark):
    """The batched flush's plan folds dead temporaries onto shared slots."""

    def run():
        return _run(memory_planning=True)

    planned = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "E13 memory planning"
    session = planned["session"]

    # Find the big batch's plan in the cache (the trailing free-only flush
    # may own last_plan): pick the plan with the most aliasing.
    plans = [
        plan for plan in session.engine.plan_cache._plans.values()
        if plan.memory_plan is not None
    ]
    assert plans
    best = max(plans, key=lambda plan: plan.memory_plan.aliased_bases)
    memory_plan = best.memory_plan
    record_table(
        benchmark,
        "E13: slot aliasing in the batched heat-step plan",
        [memory_plan.stats()],
        [
            "memory_plan_bases",
            "memory_plan_slots",
            "memory_plan_aliased_bases",
            "memory_plan_zero_fills_waived",
            "memory_plan_planned_peak_bytes",
            "memory_plan_unplanned_peak_bytes",
        ],
    )
    # Deterministic structural assertions: temporaries were aliased, zero
    # fills were waived, and the planned peak undercuts the naive layout.
    assert memory_plan.aliased_bases >= 2
    assert memory_plan.num_slots >= 1
    assert memory_plan.zero_fills_waived >= 1
    assert memory_plan.planned_peak_bytes < memory_plan.unplanned_peak_bytes
