"""E14 — dependency-graph fusion scheduling on interleaved workloads.

Consecutive-only fusion (the low end of the paper's transformation
spectrum) cuts a kernel at every interleaved reduction, system byte-code or
shape change, so a stencil that records a per-step convergence norm
launches one extra kernel per step: the mid-chain reduction splits the
element-wise stencil arithmetic into two launches.

The dependency-graph fusion scheduler builds the program's data-dependency
DAG, legally reorders the interleaved reduction past the rest of the chain
and fuses the whole stencil step into a single kernel.  This benchmark runs
the heat equation with a per-step norm under both policies and asserts,
deterministically:

* strictly fewer kernel launches with the scheduler on,
* the scheduler actually reordered byte-codes (non-adjacent clustering —
  not just the adjacent runs the consecutive policy already finds),
* bitwise-identical results (grid and every per-step norm): reordering
  respects every data dependency, so not a single bit may move.
"""

import numpy as np

from repro.frontend.session import Session
from repro.utils.config import config_override
from repro.workloads import heat_equation_with_norm

from conftest import record_table

GRID = 48
ITERATIONS = 12


def _run(scheduler: str):
    with config_override(fusion_scheduler=scheduler):
        session = Session(backend="interpreter", optimize=True)
        grid, norms = heat_equation_with_norm(
            grid_size=GRID, iterations=ITERATIONS, session=session
        )
        values = grid.to_numpy().copy()
        # The main flush just ran; grab its plan before the norm reads
        # trigger trailing sync-only flushes.
        plan = session.engine.last_plan
        schedule = plan.fusion_schedule if plan is not None else None
        norm_values = [norm.to_numpy().copy() for norm in norms]
        launches = sum(stats.kernel_launches for stats in session.stats_history)
        return {
            "grid": values,
            "norms": norm_values,
            "kernel_launches": launches,
            "schedule": schedule,
            "wall_s": sum(s.wall_time_seconds for s in session.stats_history),
        }


def test_dag_scheduler_launches_fewer_kernels(benchmark):
    """DAG scheduling vs consecutive runs: fewer launches, identical bits."""

    def run():
        return _run("dag"), _run("consecutive")

    dag, consecutive = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.group = "E14 fusion scheduling"

    dag_schedule = dag["schedule"]
    record_table(
        benchmark,
        f"E14: heat equation with per-step norm, {ITERATIONS} steps, "
        f"{GRID}x{GRID} grid",
        [
            {
                "scheduler": "dag",
                "kernel_launches": dag["kernel_launches"],
                "reordered": dag_schedule.bytecodes_reordered,
                "predicted_savings_us": dag_schedule.predicted_savings_seconds * 1e6,
                "wall_s": dag["wall_s"],
            },
            {
                "scheduler": "consecutive",
                "kernel_launches": consecutive["kernel_launches"],
                "reordered": consecutive["schedule"].bytecodes_reordered,
                "predicted_savings_us": consecutive["schedule"].predicted_savings_seconds
                * 1e6,
                "wall_s": consecutive["wall_s"],
            },
        ],
        ["scheduler", "kernel_launches", "reordered", "predicted_savings_us", "wall_s"],
    )

    # Acceptance: strictly fewer kernels with the scheduler on.  The
    # interleaved per-step norm cuts one consecutive run per stencil step,
    # so the bound is exact and deterministic, not statistical.
    assert dag["kernel_launches"] < consecutive["kernel_launches"]
    assert (
        dag["kernel_launches"] + ITERATIONS <= consecutive["kernel_launches"]
    ), "the scheduler should recover at least one launch per stencil step"

    # The win must come from *non-adjacent* clustering: byte-codes moved.
    assert dag_schedule is not None
    assert dag_schedule.bytecodes_reordered >= ITERATIONS
    assert dag_schedule.kernels_after < dag_schedule.kernels_before
    assert dag_schedule.predicted_savings_seconds > 0
    assert consecutive["schedule"].bytecodes_reordered == 0

    # Bitwise identity: legal reordering may not move a single bit.
    assert np.array_equal(dag["grid"], consecutive["grid"])
    assert len(dag["norms"]) == ITERATIONS
    for index, (a, b) in enumerate(zip(dag["norms"], consecutive["norms"])):
        assert np.array_equal(a, b), f"per-step norm {index} diverged"
