"""E15 — native codegen backend versus the tiled parallel backend.

The native backend lowers each fused kernel form to a C loop nest once and
then launches the compiled artifact on every warm flush, so the per-element
cost drops from NumPy dispatch (one full-array traversal and one
materialised temporary per byte-code, even inside a fused kernel) to a
single fused loop that keeps instruction-local temporaries in registers.

Two workloads, both dominated by fused element-wise kernels:

* the heat-equation stencil (the paper's flagship workload) at a grid large
  enough that both backends are memory-bound — the native win here is
  eliminating materialised stencil temporaries, and
* the E12 element-wise chain (24 fused operations over 4M-element vectors),
  where interpreted execution pays 24 array traversals per tile and the
  compiled loop pays one.

Assertions are layered by flakiness, as everywhere in this harness:

* **deterministic, hard** — compile/cache counters: the cold flush compiles
  (into a per-test temporary cache dir), every warm flush performs **zero**
  compiler invocations and zero fallbacks, and a fresh backend in the same
  process restores every artifact from the on-disk cache without invoking
  the compiler once — the acceptance criterion for warm services.  Results
  are bit-identical to the parallel backend (same tiling, same plans, the
  loop nest lowering is bitwise-safe by construction).
* **wall-clock, soft** — the acceptance target is >= 5x over the parallel
  backend on warm flushes (measured ~5-10x single-core).  Missing the
  target warns loudly instead of flaking CI; the hard floor guards against
  catastrophic regression only.
"""

import time
import warnings

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.codegen import clear_memory_cache, find_c_compiler
from repro.frontend.session import Session
from repro.runtime.engine import ExecutionEngine
from repro.utils.config import config_override
from repro.workloads import heat_equation

from conftest import record_table

GRID = 1200
ITERATIONS = 20
VECTOR_LENGTH = 1 << 22
CHAIN_OPS = 24
SPEEDUP_TARGET = 5.0
ROUNDS = 3

requires_compiler = pytest.mark.skipif(
    find_c_compiler() is None,
    reason="no C compiler on this host; the native backend would only run fallbacks",
)


def _native_counters(stats) -> dict:
    return {
        key: value
        for key, value in stats.as_dict().items()
        if key.startswith("native_")
    }


def _best_stencil_time(session, rounds=ROUNDS):
    """Best-of-N warm wall time for the full stencil flush on ``session``."""
    best = float("inf")
    out = None
    for _ in range(rounds):
        start = time.perf_counter()
        grid = heat_equation(grid_size=GRID, iterations=ITERATIONS, session=session)
        out = grid.to_numpy()
        best = min(best, time.perf_counter() - start)
    return best, out


@requires_compiler
def test_native_backend_beats_parallel_on_heat_equation(benchmark, tmp_path):
    with config_override(codegen_cache_dir=str(tmp_path)):
        clear_memory_cache()

        parallel = Session(backend="parallel", optimize=True)
        heat_equation(grid_size=GRID, iterations=ITERATIONS, session=parallel).to_numpy()

        native = Session(backend="native", optimize=True)
        cold_grid = heat_equation(
            grid_size=GRID, iterations=ITERATIONS, session=native
        ).to_numpy()
        cold = native.stats_history[-1]

        # ---------------- deterministic assertions (hard) ----------------- #
        # Cold flush against an empty cache dir: the compiler ran, the disk
        # had nothing to offer, and compiled kernels (not fallbacks) did the
        # work.
        assert cold.native_compiles >= 1
        assert cold.native_disk_hits == 0
        assert cold.native_fallbacks == 0
        assert cold.native_kernel_launches > 0

        def measure():
            parallel_seconds, parallel_out = _best_stencil_time(parallel)
            native_seconds, native_out = _best_stencil_time(native)
            return parallel_seconds, parallel_out, native_seconds, native_out

        parallel_seconds, parallel_out, native_seconds, native_out = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        benchmark.group = "E15 native codegen"
        warm = native.stats_history[-1]

        # Warm flushes replay the cached plan and launch straight into the
        # already-bound artifacts: zero compiler invocations, zero lowering
        # work, zero fallbacks — the acceptance criterion for warm services.
        assert warm.plan_cache_hits == 1
        assert warm.native_compiles == 0
        assert warm.native_disk_hits == 0
        assert warm.native_memory_hits == 0
        assert warm.native_fallbacks == 0
        assert warm.native_kernel_launches > 0

        # Bit-identical to the parallel backend: same plans, same tiling,
        # and only bitwise-safe kernel forms are lowered.
        assert np.array_equal(parallel_out, native_out)
        assert np.array_equal(cold_grid, native_out)

        # A fresh backend instance with the in-process artifact memo wiped
        # must restore every kernel from the on-disk cache: zero compiler
        # invocations on a warm disk cache, one disk hit per cold compile.
        clear_memory_cache()
        restored = Session(backend="native", optimize=True)
        restored_grid = heat_equation(
            grid_size=GRID, iterations=ITERATIONS, session=restored
        ).to_numpy()
        disk = restored.stats_history[-1]
        assert disk.native_compiles == 0
        assert disk.native_disk_hits == cold.native_compiles
        assert disk.native_fallbacks == 0
        assert np.array_equal(restored_grid, native_out)

    # ---------------- wall-clock comparison (soft) -------------------- #
    speedup = parallel_seconds / native_seconds if native_seconds else float("inf")
    record_table(
        benchmark,
        f"E15: heat equation, {GRID}x{GRID} grid, {ITERATIONS} steps (warm flushes)",
        [
            {
                "backend": "parallel",
                "warm_ms": parallel_seconds * 1e3,
                "compiles": 0,
                "disk_hits": 0,
                "native_launches": 0,
                "speedup": 1.0,
            },
            {
                "backend": "native",
                "warm_ms": native_seconds * 1e3,
                "compiles": cold.native_compiles,
                "disk_hits": disk.native_disk_hits,
                "native_launches": warm.native_kernel_launches,
                "speedup": speedup,
            },
        ],
        ["backend", "warm_ms", "compiles", "disk_hits", "native_launches", "speedup"],
    )
    if speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"E15 soft target missed: native backend speedup {speedup:.2f}x "
            f"< {SPEEDUP_TARGET}x over the parallel backend on the stencil "
            "(noisy host?)",
            stacklevel=1,
        )
    # Hard floor: compiled loop nests must never lose to interpreted tiles.
    assert speedup > 1.5


def _build_chain():
    """The E12 workload: two vectors through a 24-op fused chain."""
    builder = ProgramBuilder()
    a = builder.new_vector(VECTOR_LENGTH)
    b = builder.new_vector(VECTOR_LENGTH)
    builder.identity(a, 0.5)
    builder.identity(b, 1.5)
    for i in range(CHAIN_OPS):
        if i % 3 == 0:
            builder.multiply(a, a, b)
        elif i % 3 == 1:
            builder.add(a, a, 0.125)
        else:
            builder.maximum(b, b, a)
    builder.sync(a)
    builder.sync(b)
    return builder.build(), a, b


def _best_engine_time(engine, program, rounds=ROUNDS):
    return min(engine.execute(program).stats.wall_time_seconds for _ in range(rounds))


@requires_compiler
def test_native_backend_beats_parallel_on_elementwise_chain(benchmark, tmp_path):
    program, a, b = _build_chain()
    with config_override(codegen_cache_dir=str(tmp_path)):
        clear_memory_cache()

        parallel = ExecutionEngine(backend="parallel", optimize=True)
        native = ExecutionEngine(backend="native", optimize=True)
        reference = parallel.execute(program)

        cold = native.execute(program)
        assert cold.stats.native_compiles >= 1
        assert cold.stats.native_disk_hits == 0
        assert cold.stats.native_fallbacks == 0

        warm = native.execute(program)
        assert warm.stats.plan_cache_hits == 1
        assert warm.stats.native_compiles == 0
        assert warm.stats.native_fallbacks == 0
        assert warm.stats.native_kernel_launches > 0

        # The whole chain is one fused kernel: bit-identical outputs.
        assert np.array_equal(reference.value(a), warm.value(a))
        assert np.array_equal(reference.value(b), warm.value(b))

        def measure():
            return (
                _best_engine_time(parallel, program),
                _best_engine_time(native, program),
            )

        parallel_seconds, native_seconds = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        benchmark.group = "E15 native codegen"

    speedup = parallel_seconds / native_seconds if native_seconds else float("inf")
    record_table(
        benchmark,
        f"E15: {VECTOR_LENGTH} elements x {CHAIN_OPS}-op fused chain (warm flushes)",
        [
            {
                "backend": "parallel",
                "warm_ms": parallel_seconds * 1e3,
                "compiles": 0,
                "speedup": 1.0,
            },
            {
                "backend": "native",
                "warm_ms": native_seconds * 1e3,
                "compiles": cold.stats.native_compiles,
                "speedup": speedup,
            },
        ],
        ["backend", "warm_ms", "compiles", "speedup"],
    )
    if speedup < SPEEDUP_TARGET:
        warnings.warn(
            f"E15 soft target missed: native backend speedup {speedup:.2f}x "
            f"< {SPEEDUP_TARGET}x over the parallel backend on the fused chain "
            "(noisy host?)",
            stacklevel=1,
        )
    assert speedup > 1.5
