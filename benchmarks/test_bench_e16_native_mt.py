"""E16 — in-kernel multithreading for the native C tier.

PR 5 made warm element-wise flushes compile to C; this experiment measures
moving the *thread split* into the compiled artifact.  With
``codegen_threads=N`` a whole fused map step is ONE ``repro_kernel_mt``
ctypes call — the artifact block-partitions its outermost loop across a
persistent in-kernel pthread pool — instead of one Python-side launch per
tile.  Tiled reductions, which previously always ran on the interpreted
parallel paths, now lower to compiled kernels whose per-chunk partials
tree-combine in the parallel backend's fixed order.

Assertions are layered by flakiness, as everywhere in this harness:

* **deterministic, hard** — launch accounting: on a threading-capable
  toolchain every fused map step of the warm flush is exactly one
  ``repro_kernel_mt`` call (no per-tile launches), and the reduction
  workload compiles its reductions with **zero** interpreter fallbacks.
  Element-wise results are bit-identical across thread counts and to the
  unoptimized oracle; reduction results stay within the established
  reduction contract (tree combines legitimately reassociate).
* **wall-clock, soft-ish** — on a multi-core host, warm threaded-native
  must beat warm single-thread native with a hard >= 1.3x floor (soft
  target 2.5x warns loudly).  The comparison is skipped on single-core
  hosts, where an in-kernel thread split cannot win by construction.
"""

import os
import time
import warnings

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.codegen import clear_memory_cache, find_c_compiler
from repro.codegen.compiler import select_mt_mode
from repro.frontend.session import Session
from repro.runtime.engine import ExecutionEngine
from repro.runtime.tiling import TiledMapStep
from repro.utils.config import config_override
from repro.workloads import heat_equation

from conftest import record_table

GRID = 1200
ITERATIONS = 20
VECTOR_LENGTH = 1 << 22
MATRIX_ROWS, MATRIX_COLS = 2048, 1024
THREADS = 4
HARD_FLOOR = 1.3
SOFT_TARGET = 2.5
ROUNDS = 3
RTOL, ATOL = 1e-6, 1e-8

requires_compiler = pytest.mark.skipif(
    find_c_compiler() is None,
    reason="no C compiler on this host; the native backend would only run fallbacks",
)

requires_mt_toolchain = pytest.mark.skipif(
    find_c_compiler() is None or select_mt_mode() == "serial",
    reason="toolchain supports neither -pthread nor OpenMP; artifacts are serial-mode",
)

requires_multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="single-core host: an in-kernel thread split cannot win wall-clock",
)


def _best_stencil_time(session, rounds=ROUNDS):
    best = float("inf")
    out = None
    for _ in range(rounds):
        start = time.perf_counter()
        grid = heat_equation(grid_size=GRID, iterations=ITERATIONS, session=session)
        out = grid.to_numpy()
        best = min(best, time.perf_counter() - start)
    return best, out


@requires_mt_toolchain
@requires_multicore
def test_threaded_native_beats_single_thread_on_heat_equation(benchmark, tmp_path):
    with config_override(codegen_cache_dir=str(tmp_path)):
        clear_memory_cache()

        # Warm both configurations fully before measuring.  The artifact is
        # the SAME compiled library in both columns (nthreads is a runtime
        # argument, never a digest input), so the single-thread warmup also
        # compiled everything the threaded run launches.
        with config_override(codegen_threads=1):
            single = Session(backend="native", optimize=True)
            heat_equation(
                grid_size=GRID, iterations=ITERATIONS, session=single
            ).to_numpy()
        with config_override(codegen_threads=THREADS):
            threaded = Session(backend="native", optimize=True)
            heat_equation(
                grid_size=GRID, iterations=ITERATIONS, session=threaded
            ).to_numpy()
            warm = threaded.stats_history[-1]
        assert warm.native_compiles == 0  # same artifacts as the 1-thread column
        assert warm.native_fallbacks == 0
        assert warm.native_mt_launches > 0

        def measure():
            with config_override(codegen_threads=1):
                single_seconds, single_out = _best_stencil_time(single)
            with config_override(codegen_threads=THREADS):
                threaded_seconds, threaded_out = _best_stencil_time(threaded)
            return single_seconds, single_out, threaded_seconds, threaded_out

        single_seconds, single_out, threaded_seconds, threaded_out = benchmark.pedantic(
            measure, rounds=1, iterations=1
        )
        benchmark.group = "E16 in-kernel threading"

    # Element-wise stencil: the in-kernel block partition may not move a bit.
    assert np.array_equal(single_out, threaded_out)

    speedup = single_seconds / threaded_seconds if threaded_seconds else float("inf")
    record_table(
        benchmark,
        f"E16: heat equation, {GRID}x{GRID} grid, {ITERATIONS} steps, "
        f"threads 1 vs {THREADS} (warm flushes)",
        [
            {
                "threads": 1,
                "warm_ms": single_seconds * 1e3,
                "mt_launches": 0,
                "speedup": 1.0,
            },
            {
                "threads": THREADS,
                "warm_ms": threaded_seconds * 1e3,
                "mt_launches": warm.native_mt_launches,
                "speedup": speedup,
            },
        ],
        ["threads", "warm_ms", "mt_launches", "speedup"],
    )
    if speedup < SOFT_TARGET:
        warnings.warn(
            f"E16 soft target missed: in-kernel threading speedup {speedup:.2f}x "
            f"< {SOFT_TARGET}x over single-thread native on the stencil "
            "(few cores? noisy host?)",
            stacklevel=1,
        )
    assert speedup >= HARD_FLOOR, (
        f"threaded native ({threaded_seconds * 1e3:.1f} ms) must beat "
        f"single-thread native ({single_seconds * 1e3:.1f} ms) by >= {HARD_FLOOR}x"
    )


def _two_kernel_program():
    """Two differently-shaped fused chains → two distinct tiled map steps."""
    builder = ProgramBuilder()
    a = builder.new_vector(VECTOR_LENGTH)
    b = builder.new_vector(VECTOR_LENGTH // 2)
    builder.identity(a, 0.5)
    builder.identity(b, 1.5)
    for _ in range(6):
        builder.multiply(a, a, 1.0009765625)
        builder.add(a, a, 0.25)
    for _ in range(4):
        builder.add(b, b, 0.125)
        builder.multiply(b, b, 0.99951171875)
    builder.sync(a)
    builder.sync(b)
    return builder.build(), a, b


@requires_mt_toolchain
def test_one_ctypes_launch_per_fused_map_step(benchmark, tmp_path):
    """Hard accounting: a fused map step is ONE repro_kernel_mt call.

    Valid on any core count — the counter contract is about how many
    foreign calls the warm flush makes, not about wall-clock.
    """
    program, a, b = _two_kernel_program()
    oracle = ExecutionEngine(backend="interpreter", optimize=False).execute(program)
    with config_override(codegen_cache_dir=str(tmp_path), codegen_threads=THREADS):
        clear_memory_cache()
        engine = ExecutionEngine(backend="native", optimize=True)
        engine.execute(program)

        def measure():
            return engine.execute(program)

        warm = benchmark.pedantic(measure, rounds=1, iterations=1)
        benchmark.group = "E16 in-kernel threading"

    map_steps = [
        step
        for step in engine.last_plan.tiling.steps
        if isinstance(step, TiledMapStep)
    ]
    assert len(map_steps) >= 2, "workload must decompose into several map steps"
    assert any(len(step.spans) > 1 for step in map_steps), (
        "no step tiled; the one-launch assert would be vacuous"
    )
    # Exactly one ctypes launch per fused map step — the per-tile path
    # never ran, and every launch went through the chunked entry point.
    assert warm.stats.native_mt_launches == len(map_steps)
    assert warm.stats.tiles_executed == len(map_steps)
    assert warm.stats.native_fallbacks == 0
    # Bit-identical to the unoptimized oracle (element-wise program).
    assert np.array_equal(warm.value(a), oracle.value(a))
    assert np.array_equal(warm.value(b), oracle.value(b))

    record_table(
        benchmark,
        "E16: launch accounting (warm flush)",
        [
            {
                "map_steps": len(map_steps),
                "mt_launches": warm.stats.native_mt_launches,
                "tiles_executed": warm.stats.tiles_executed,
                "spans_total": sum(len(step.spans) for step in map_steps),
            }
        ],
        ["map_steps", "mt_launches", "tiles_executed", "spans_total"],
    )


def _reduction_program():
    """Matrix chain → row sums → scalar total: n-D and 1-D combine forms."""
    builder = ProgramBuilder()
    matrix = builder.new_matrix(MATRIX_ROWS, MATRIX_COLS)
    rows = builder.new_vector(MATRIX_ROWS)
    total = builder.new_vector(1)
    builder.identity(matrix, 0.001953125)
    builder.multiply(matrix, matrix, 1.5)
    builder.add(matrix, matrix, 0.0625)
    builder.add_reduce(rows, matrix, axis=1)
    builder.add_reduce(total, rows, axis=0)
    builder.sync(rows)
    builder.sync(total)
    return builder.build(), rows, total


@requires_compiler
def test_compiled_reduction_workload(benchmark, tmp_path):
    program, rows, total = _reduction_program()
    oracle = ExecutionEngine(backend="interpreter", optimize=False).execute(program)
    with config_override(
        codegen_cache_dir=str(tmp_path),
        codegen_threads=THREADS,
        # Let the 1-D scalar reduction tile too (its source is only
        # MATRIX_ROWS elements), so BOTH reduction forms run compiled.
        # Tile geometry is irrelevant to the compiled paths — every map
        # and reduction below is one foreign call regardless of spans.
        parallel_serial_threshold=512,
        parallel_tile_elements=1024,
    ):
        clear_memory_cache()
        engine = ExecutionEngine(backend="native", optimize=True)
        cold = engine.execute(program)

        def measure():
            return engine.execute(program)

        warm = benchmark.pedantic(measure, rounds=1, iterations=1)
        benchmark.group = "E16 in-kernel threading"

    # Both reduction forms (n-D slice and 1-D combine) compiled; the
    # interpreted tiled reduction path never ran — cold or warm.
    assert cold.stats.native_reductions_compiled == 2
    assert cold.stats.native_reduction_fallbacks == 0
    assert warm.stats.native_reductions_compiled == 2
    assert warm.stats.native_reduction_fallbacks == 0
    assert warm.stats.native_compiles == 0

    # Within the established reduction contract versus the unoptimized
    # oracle (chunked partials legitimately reassociate float adds).
    np.testing.assert_allclose(
        warm.value(rows), oracle.value(rows), rtol=RTOL, atol=ATOL
    )
    np.testing.assert_allclose(
        warm.value(total), oracle.value(total), rtol=RTOL, atol=ATOL
    )

    record_table(
        benchmark,
        f"E16: compiled reductions, {MATRIX_ROWS}x{MATRIX_COLS} matrix (warm flush)",
        [
            {
                "reductions_compiled": warm.stats.native_reductions_compiled,
                "reduction_fallbacks": warm.stats.native_reduction_fallbacks,
                "mt_launches": warm.stats.native_mt_launches,
                "compiles_cold": cold.stats.native_compiles,
            }
        ],
        [
            "reductions_compiled",
            "reduction_fallbacks",
            "mt_launches",
            "compiles_cold",
        ],
    )
