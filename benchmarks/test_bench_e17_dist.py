"""E17 — multi-process sharded execution over shared memory.

PR 8 moved the thread split into the compiled artifact; this experiment
measures moving the *process* split into a worker pool.  The ``dist``
backend executes each tiled step as row shards across spawned worker
processes; array bytes live in ``multiprocessing.shared_memory`` segments
both sides map, and the pipe control channel carries only plan tokens and
shard descriptors.  The stencil workload exercises the halo-exchange path
on every iteration: boundary rows read a neighbour's block, fetched into
landing buffers and (by default) overlapped with interior compute.

Assertions are layered by flakiness, as everywhere in this harness:

* **deterministic, hard** — results are bit-identical to the unoptimized
  oracle and across worker counts (sharding slices rows, never reorders
  arithmetic; reduction combine trees are dealt from the plan's spans, so
  they don't depend on the pool size).  Halo exchanges actually fired,
  shards actually launched multi-process, and ``dist_payload_bytes`` is
  **zero** — the "descriptors only, never array payloads" claim is a
  counter, not a code-reading exercise.
* **wall-clock, soft-ish** — on a multi-core host, warm multi-worker must
  beat warm single-worker with a hard >= 1.5x floor (soft target 2.5x
  warns loudly).  Skipped on single-core hosts, where a process split
  cannot win by construction.
"""

import os
import time
import warnings

import numpy as np
import pytest

from repro.frontend.session import Session
from repro.utils.config import config_override
from repro.workloads import heat_equation

from conftest import record_table

GRID = 512
ITERATIONS = 10
SPEEDUP_GRID = 1200
SPEEDUP_ITERATIONS = 12
WORKERS = 2
HARD_FLOOR = 1.5
SOFT_TARGET = 2.5
ROUNDS = 3

requires_multicore = pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason="single-core host: a process split cannot win wall-clock",
)


def _heat_oracle(grid=GRID, iterations=ITERATIONS):
    session = Session(backend="interpreter", optimize=False)
    return heat_equation(grid_size=grid, iterations=iterations, session=session).to_numpy()


def _run_heat(session, grid=GRID, iterations=ITERATIONS):
    start = time.perf_counter()
    out = heat_equation(grid_size=grid, iterations=iterations, session=session).to_numpy()
    seconds = time.perf_counter() - start
    return out, seconds, session.stats_history[-1]


def test_sharded_heat_equation_ships_descriptors_only(benchmark):
    oracle = _heat_oracle()
    with config_override(dist_num_workers=WORKERS):
        session = Session(backend="dist", optimize=True)
        # Warm run: spawns the pool, creates the segments the warm run
        # recycles.  (Each heat run builds fresh arrays, so its plan is
        # shipped per run — the zero-payload and recycling counters are
        # what distinguish warm from cold here, not load counts.)
        _run_heat(session)

        def measure():
            return _run_heat(session)

        out, seconds, stats = benchmark.pedantic(measure, rounds=1, iterations=1)
        benchmark.group = "E17 distributed"
        cache = session.engine.cache_stats()

    # Bit-identical to the unoptimized oracle: sharding slices rows and the
    # halo fetch must have delivered exactly the neighbour's bytes (landing
    # buffers start uninitialised, so a skipped fetch cannot pass by luck).
    assert np.array_equal(out, oracle)
    assert stats.dist_workers_used == WORKERS
    assert stats.dist_shard_launches > 0, "no multi-process shard launches"
    assert stats.dist_halo_exchanges > 0, "no halo exchange fired"
    # The standing claim: the control channel never carries array payloads.
    assert stats.dist_payload_bytes == 0
    # Warm flushes recycle parked segments instead of creating fresh ones.
    assert cache["dist_segments_recycled"] > 0

    record_table(
        benchmark,
        f"E17: heat equation, {GRID}x{GRID} grid, {ITERATIONS} steps, "
        f"{WORKERS} workers (warm run)",
        [
            {
                "workers": WORKERS,
                "warm_ms": seconds * 1e3,
                "shard_launches": stats.dist_shard_launches,
                "halo_exchanges": stats.dist_halo_exchanges,
                "halo_kib": stats.dist_halo_bytes / 1024,
                "payload_bytes": stats.dist_payload_bytes,
                "control_kib": stats.dist_control_bytes / 1024,
            }
        ],
        [
            "workers",
            "warm_ms",
            "shard_launches",
            "halo_exchanges",
            "halo_kib",
            "payload_bytes",
            "control_kib",
        ],
    )


def test_bitwise_across_worker_counts(benchmark):
    """Hard accounting: worker count changes the split, never the bits.

    Valid on any core count — this is the cluster-parity contract, not a
    wall-clock claim.
    """
    oracle = _heat_oracle()
    rows = []
    results = {}

    def measure():
        for workers in (1, 2, 4):
            with config_override(dist_num_workers=workers):
                session = Session(backend="dist", optimize=True)
                out, seconds, stats = _run_heat(session)
            results[workers] = out
            rows.append(
                {
                    "workers": workers,
                    "ms": seconds * 1e3,
                    "shard_launches": stats.dist_shard_launches,
                    "halo_exchanges": stats.dist_halo_exchanges,
                    "payload_bytes": stats.dist_payload_bytes,
                }
            )
        return results

    benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.group = "E17 distributed"

    for workers, out in results.items():
        assert np.array_equal(out, oracle), f"{workers} workers vs oracle"
    assert all(row["payload_bytes"] == 0 for row in rows)
    assert any(row["halo_exchanges"] > 0 for row in rows if row["workers"] > 1)

    record_table(
        benchmark,
        f"E17: worker-count sweep, {GRID}x{GRID} grid, {ITERATIONS} steps",
        rows,
        ["workers", "ms", "shard_launches", "halo_exchanges", "payload_bytes"],
    )


@requires_multicore
def test_multi_worker_beats_single_worker_on_heat_equation(benchmark):
    with config_override(dist_num_workers=1):
        single = Session(backend="dist", optimize=True)
        _run_heat(single, SPEEDUP_GRID, SPEEDUP_ITERATIONS)
    with config_override(dist_num_workers=WORKERS):
        multi = Session(backend="dist", optimize=True)
        _, _, warm = _run_heat(multi, SPEEDUP_GRID, SPEEDUP_ITERATIONS)
    assert warm.dist_workers_used == WORKERS
    assert warm.dist_payload_bytes == 0

    def measure():
        single_best = multi_best = float("inf")
        single_out = multi_out = None
        for _ in range(ROUNDS):
            with config_override(dist_num_workers=1):
                out, seconds, _ = _run_heat(single, SPEEDUP_GRID, SPEEDUP_ITERATIONS)
            single_best, single_out = min(single_best, seconds), out
            with config_override(dist_num_workers=WORKERS):
                out, seconds, _ = _run_heat(multi, SPEEDUP_GRID, SPEEDUP_ITERATIONS)
            multi_best, multi_out = min(multi_best, seconds), out
        return single_best, single_out, multi_best, multi_out

    single_seconds, single_out, multi_seconds, multi_out = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    benchmark.group = "E17 distributed"

    # Element-wise stencil: the process split may not move a bit.
    assert np.array_equal(single_out, multi_out)

    speedup = single_seconds / multi_seconds if multi_seconds else float("inf")
    record_table(
        benchmark,
        f"E17: heat equation, {SPEEDUP_GRID}x{SPEEDUP_GRID} grid, "
        f"{SPEEDUP_ITERATIONS} steps, workers 1 vs {WORKERS} (warm runs)",
        [
            {"workers": 1, "warm_ms": single_seconds * 1e3, "speedup": 1.0},
            {
                "workers": WORKERS,
                "warm_ms": multi_seconds * 1e3,
                "halo_exchanges": warm.dist_halo_exchanges,
                "speedup": speedup,
            },
        ],
        ["workers", "warm_ms", "halo_exchanges", "speedup"],
    )
    if speedup < SOFT_TARGET:
        warnings.warn(
            f"E17 soft target missed: multi-worker speedup {speedup:.2f}x "
            f"< {SOFT_TARGET}x over one worker on the stencil "
            "(few cores? noisy host?)",
            stacklevel=1,
        )
    assert speedup >= HARD_FLOOR, (
        f"{WORKERS}-worker dist ({multi_seconds * 1e3:.1f} ms) must beat "
        f"single-worker dist ({single_seconds * 1e3:.1f} ms) by >= {HARD_FLOOR}x"
    )
