"""E1 — constant merging (paper Listings 1-3).

Paper claim: three ``BH_ADD .. 1`` byte-codes over a large tensor cost three
full traversals; merging the constants yields one ``BH_ADD .. 3`` and one
traversal.  Expected shape: the optimized program has one add instead of k,
and executes roughly k× less addition work (wall-clock gain bounded by the
fixed costs around it).
"""

import numpy as np
import pytest

from repro.bytecode.opcodes import OpCode
from repro.core.cost import CostModel
from repro.core.pipeline import optimize
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import repeated_constant_add

from conftest import record_table

SIZE = 1_000_000
REPEATS = (3, 8, 16)


def _execute(program, out):
    result = NumPyInterpreter().execute(program)
    return result.value(out)


@pytest.mark.parametrize("repeats", REPEATS)
def test_unoptimized_repeated_adds(benchmark, repeats):
    """Baseline: execute the k separate BH_ADD byte-codes (Listing 2)."""
    program, out = repeated_constant_add(SIZE, repeats=repeats)
    values = benchmark(_execute, program, out)
    assert np.all(values == repeats)
    benchmark.group = f"E1 constant-merge k={repeats}"
    benchmark.extra_info["bytecodes"] = len(program)
    benchmark.extra_info["adds"] = repeats


@pytest.mark.parametrize("repeats", REPEATS)
def test_optimized_merged_add(benchmark, repeats):
    """Optimized: the constants are merged into a single BH_ADD (Listing 3)."""
    program, out = repeated_constant_add(SIZE, repeats=repeats)
    report = optimize(program)
    values = benchmark(_execute, report.optimized, out)
    assert np.all(values == repeats)
    benchmark.group = f"E1 constant-merge k={repeats}"

    model = CostModel("gpu")
    rows = [
        {
            "program": "unoptimized",
            "bytecodes": len(program),
            "add_ops": program.count(OpCode.BH_ADD),
            "kernels": program.num_kernels(),
            "simulated_us": model.program_cost(program) * 1e6,
        },
        {
            "program": "optimized",
            "bytecodes": len(report.optimized),
            "add_ops": report.optimized.count(OpCode.BH_ADD),
            "kernels": report.optimized.num_kernels(),
            "simulated_us": model.program_cost(report.optimized) * 1e6,
        },
    ]
    record_table(
        benchmark,
        f"E1: Listing 2 vs Listing 3, {repeats} adds over {SIZE} elements",
        rows,
        ["program", "bytecodes", "add_ops", "kernels", "simulated_us"],
    )
    # the paper's headline shape: k adds collapse to exactly one
    assert report.optimized.count(OpCode.BH_ADD) == 1


def test_bytecode_reduction_across_vector_sizes(benchmark):
    """Instruction-count table across vector sizes (size-independent shape)."""

    def build_and_optimize():
        rows = []
        for size in (1_000, 100_000, 10_000_000):
            program, _ = repeated_constant_add(size, repeats=3)
            report = optimize(program, enabled_passes=["constant_merge"])
            rows.append(
                {
                    "size": size,
                    "before": len(program),
                    "after": len(report.optimized),
                    "merged_constant": 3,
                }
            )
        return rows

    rows = benchmark(build_and_optimize)
    benchmark.group = "E1 constant-merge optimizer overhead"
    record_table(benchmark, "E1: byte-code counts vs vector size", rows,
                 ["size", "before", "after", "merged_constant"])
    assert all(row["after"] == 3 for row in rows)
