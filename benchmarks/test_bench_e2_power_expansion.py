"""E2 — power expansion (paper Equation 1, Listings 4-5).

Paper claim: ``BH_POWER`` with a natural exponent can be replaced by
``BH_MULTIPLY`` chains; the naive chain needs n-1 multiplies (Listing 4),
reusing the result tensor needs only ~log2(n) (Listing 5), and the expansion
is worthwhile because the pow kernel is much more expensive per element than
a multiply.  Expected shape: expanded variants beat ``BH_POWER`` in
wall-clock for moderate exponents, and Listing 5 beats Listing 4.
"""

import numpy as np
import pytest

from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.cost import CostModel
from repro.core.power_expansion import expand_power
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import power_program

from conftest import record_table

SIZE = 1_000_000
EXPONENT = 10


def _expanded_program(program, strategy):
    replacement = expand_power(program[0], strategy=strategy)
    return Program(replacement + list(program[1:]))


def _run(program, out, memory):
    return NumPyInterpreter().execute(program, memory.clone()).value(out)


def test_bh_power_baseline(benchmark):
    """Baseline: the un-expanded BH_POWER kernel (transcendental pow)."""
    program, out, memory = power_program(SIZE, EXPONENT)
    values = benchmark(_run, program, out, memory)
    benchmark.group = f"E2 x^{EXPONENT} over {SIZE} elements"
    benchmark.extra_info["multiplies"] = 0
    assert np.isfinite(values).all()


@pytest.mark.parametrize("strategy, expected_multiplies", [("naive", 9), ("power_of_two", 5), ("binary", 4)])
def test_expanded_power(benchmark, strategy, expected_multiplies):
    """Expanded variants: Listing 4 (naive), Listing 5 (result reuse), binary."""
    program, out, memory = power_program(SIZE, EXPONENT)
    expanded = _expanded_program(program, strategy)
    assert expanded.count(OpCode.BH_MULTIPLY) == expected_multiplies

    reference = _run(program, out, memory)
    values = benchmark(_run, expanded, out, memory)
    assert np.allclose(values, reference, rtol=1e-10)

    benchmark.group = f"E2 x^{EXPONENT} over {SIZE} elements"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["multiplies"] = expected_multiplies

    model = CostModel("multicore")
    record_table(
        benchmark,
        f"E2: strategy={strategy}",
        [
            {
                "strategy": "BH_POWER",
                "multiplies": 0,
                "bytecodes": len(program),
                "simulated_us": model.program_cost(program) * 1e6,
            },
            {
                "strategy": strategy,
                "multiplies": expected_multiplies,
                "bytecodes": len(expanded),
                "simulated_us": model.program_cost(expanded) * 1e6,
            },
        ],
        ["strategy", "multiplies", "bytecodes", "simulated_us"],
    )


def test_instruction_count_table(benchmark):
    """Listing 4 vs Listing 5 instruction counts across exponents (no execution)."""

    def build():
        rows = []
        for exponent in (2, 4, 8, 10, 16, 32, 64):
            program, _, _ = power_program(8, exponent)
            rows.append(
                {
                    "exponent": exponent,
                    "naive (Listing 4)": len(expand_power(program[0], strategy="naive")),
                    "paper (Listing 5)": len(expand_power(program[0], strategy="power_of_two")),
                    "binary": len(expand_power(program[0], strategy="binary")),
                }
            )
        return rows

    rows = benchmark(build)
    benchmark.group = "E2 instruction counts"
    record_table(
        benchmark,
        "E2: multiplies needed per strategy",
        rows,
        ["exponent", "naive (Listing 4)", "paper (Listing 5)", "binary"],
    )
    ten = [row for row in rows if row["exponent"] == 10]
    # the exact numbers quoted in the paper for x^10: 9 vs 5
    assert ten == [] or (ten[0]["naive (Listing 4)"] == 9 and ten[0]["paper (Listing 5)"] == 5)
