"""E3 — addition-chain quality (Listing 5 vs Listing 4 vs better chains).

Measures, across an exponent sweep, how many multiplies each strategy emits
and how long the chain construction itself takes.  Expected shape: naive
grows linearly in n, the paper's square-then-increment chain grows like
log2(n) plus the remainder, binary like log2(n) plus popcount, and the
optimal chain search matches or beats binary everywhere.
"""

import pytest

from repro.core.addition_chains import (
    binary_chain,
    chain_multiply_count,
    naive_chain,
    optimal_chain,
    power_of_two_chain,
)

from conftest import record_table

EXPONENTS = tuple(range(2, 65))


@pytest.mark.parametrize(
    "strategy, builder",
    [
        ("naive", naive_chain),
        ("power_of_two", power_of_two_chain),
        ("binary", binary_chain),
        ("optimal", optimal_chain),
    ],
)
def test_chain_construction(benchmark, strategy, builder):
    """Time to build chains for every exponent up to 64, plus their lengths."""

    def build_all():
        return [builder(exponent).num_multiplies for exponent in EXPONENTS]

    lengths = benchmark(build_all)
    benchmark.group = "E3 chain construction (n=2..64)"
    benchmark.extra_info["strategy"] = strategy
    benchmark.extra_info["total_multiplies"] = sum(lengths)
    benchmark.extra_info["worst_case"] = max(lengths)


def test_chain_length_table(benchmark):
    """The series the paper's Listings 4/5 exemplify, over a sweep of exponents."""

    def build():
        rows = []
        for exponent in (2, 3, 4, 7, 10, 15, 16, 23, 32, 33, 47, 64):
            rows.append(
                {
                    "exponent": exponent,
                    "naive": chain_multiply_count(exponent, "naive"),
                    "power_of_two": chain_multiply_count(exponent, "power_of_two"),
                    "binary": chain_multiply_count(exponent, "binary"),
                    "optimal": chain_multiply_count(exponent, "optimal"),
                }
            )
        return rows

    rows = benchmark(build)
    benchmark.group = "E3 chain lengths"
    record_table(
        benchmark,
        "E3: multiplies per exponent and strategy",
        rows,
        ["exponent", "naive", "power_of_two", "binary", "optimal"],
    )
    for row in rows:
        assert row["optimal"] <= row["binary"] <= row["power_of_two"] <= row["naive"]
