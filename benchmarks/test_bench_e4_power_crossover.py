"""E4 — the pow-vs-multiply crossover (paper Section 4).

Paper claim: "for values close to a power of 2, multiplying multiple times is
faster than doing an actual BH_POWER", which is why Bohrium enables the
expansion by default.  This benchmark sweeps exponents, measures wall-clock
for the pow kernel versus the expanded multiply chain, and also reports the
cost-model prediction (on the compute-bound single-core profile, where the
transcendental cost of BH_POWER dominates).  Expected shape: the expansion's
advantage peaks at exact powers of two and shrinks as the chain gets longer
between them.

Assertions are made against the deterministic cost model and the expansion's
instruction counts; the measured wall-clock columns are reported for
inspection only (they depend on the host's NumPy build and timing noise).
"""

import numpy as np
import pytest

from repro.bytecode.program import Program
from repro.core.cost import CostModel
from repro.core.power_expansion import expand_power
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import power_program

from conftest import record_table

SIZE = 500_000
SWEEP = (2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def _measure(program, out, memory, repeats=3):
    times = []
    for _ in range(repeats):
        result = NumPyInterpreter().execute(program, memory.clone())
        times.append(result.stats.wall_time_seconds)
    return min(times), result.value(out)


@pytest.mark.parametrize("exponent", (8, 10))
def test_crossover_single_exponent(benchmark, exponent):
    """Wall-clock for the expanded chain at one exponent (pytest-benchmark timing)."""
    program, out, memory = power_program(SIZE, exponent)
    expanded = Program(expand_power(program[0], strategy="power_of_two") + list(program[1:]))

    def run():
        return NumPyInterpreter().execute(expanded, memory.clone()).value(out)

    values = benchmark(run)
    reference = NumPyInterpreter().execute(program, memory.clone()).value(out)
    assert np.allclose(values, reference, rtol=1e-10)
    benchmark.group = f"E4 expanded x^{exponent}"


def test_crossover_sweep(benchmark):
    """The full speedup-vs-exponent curve (measured once inside the benchmark)."""

    def sweep():
        model = CostModel("single_core")
        rows = []
        for exponent in SWEEP:
            program, out, memory = power_program(SIZE, exponent)
            expanded = Program(
                expand_power(program[0], strategy="power_of_two") + list(program[1:])
            )
            pow_time, pow_values = _measure(program, out, memory)
            mul_time, mul_values = _measure(expanded, out, memory)
            assert np.allclose(pow_values, mul_values, rtol=1e-10)
            rows.append(
                {
                    "exponent": exponent,
                    "is_pow2": int(exponent & (exponent - 1) == 0),
                    "multiplies": len(expanded) - len(program) + 1,
                    "pow_ms": pow_time * 1e3,
                    "expanded_ms": mul_time * 1e3,
                    "measured_speedup": pow_time / mul_time,
                    "predicted_speedup": model.program_cost(program)
                    / model.program_cost(expanded),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.group = "E4 crossover sweep"
    record_table(
        benchmark,
        "E4: BH_POWER vs multiply expansion across exponents",
        rows,
        [
            "exponent",
            "is_pow2",
            "multiplies",
            "pow_ms",
            "expanded_ms",
            "measured_speedup",
            "predicted_speedup",
        ],
    )

    by_exponent = {row["exponent"]: row for row in rows}
    # Paper shape, asserted on the deterministic cost model: at powers of two
    # the expansion wins outright, and exact powers of two show a larger
    # advantage than their ragged neighbours (whose addition chains are
    # longer).  The squaring chain lengths themselves are exact.
    assert by_exponent[8]["multiplies"] == 3
    assert by_exponent[16]["multiplies"] == 4
    assert by_exponent[12]["multiplies"] > by_exponent[16]["multiplies"]
    assert by_exponent[8]["predicted_speedup"] > 1.0
    assert by_exponent[16]["predicted_speedup"] > 1.0
    assert by_exponent[8]["predicted_speedup"] > by_exponent[12]["predicted_speedup"]
    assert by_exponent[16]["predicted_speedup"] > by_exponent[24]["predicted_speedup"]
