"""E5 — the context-aware linear-solve rewrite (paper Equation 2).

Paper claim: solving ``A x = b`` via an LU factorisation is usually faster
than forming ``inv(A)`` and multiplying, and the byte-code idiom can be
rewritten automatically — but only when the inverse is not used for anything
else.  Expected shape: the rewritten program wins by roughly the 3x flop
ratio (growing with N), and the reuse variant is left untouched.
"""

import numpy as np
import pytest

from repro.bytecode.opcodes import OpCode
from repro.core.cost import CostModel
from repro.core.pipeline import optimize
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import linear_solve_program

from conftest import record_table

SIZES = (64, 128, 256)


def _run(program, solution, memory):
    return NumPyInterpreter().execute(program, memory.clone()).value(solution)


@pytest.mark.parametrize("n", SIZES)
def test_inverse_based_solve(benchmark, n):
    """Baseline: execute the inv(A) @ b idiom as written."""
    program, solution, memory = linear_solve_program(n, seed=n)
    values = benchmark(_run, program, solution, memory)
    benchmark.group = f"E5 linear solve N={n}"
    matrix = memory.read_view(program[0].input_views[0])
    rhs = memory.read_view(program[1].input_views[1])
    assert np.allclose(values, np.linalg.solve(matrix, rhs), atol=1e-6)


@pytest.mark.parametrize("n", SIZES)
def test_lu_rewritten_solve(benchmark, n):
    """Optimized: the idiom rewritten to a single BH_LU_SOLVE."""
    program, solution, memory = linear_solve_program(n, seed=n)
    report = optimize(program)
    assert report.optimized.count(OpCode.BH_LU_SOLVE) == 1
    assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 0

    values = benchmark(_run, report.optimized, solution, memory)
    benchmark.group = f"E5 linear solve N={n}"
    reference = _run(program, solution, memory)
    assert np.allclose(values, reference, atol=1e-6)

    model = CostModel("multicore")
    record_table(
        benchmark,
        f"E5: N={n}",
        [
            {
                "program": "inv(A) @ b",
                "bytecodes": len(program),
                "flops_model": model.breakdown(program).flops,
                "simulated_ms": model.program_cost(program) * 1e3,
            },
            {
                "program": "BH_LU_SOLVE",
                "bytecodes": len(report.optimized),
                "flops_model": model.breakdown(report.optimized).flops,
                "simulated_ms": model.program_cost(report.optimized) * 1e3,
            },
        ],
        ["program", "bytecodes", "flops_model", "simulated_ms"],
    )
    # the ~3x flop gap of the paper's argument
    assert (
        model.breakdown(program).flops / model.breakdown(report.optimized).flops > 2.0
    )


def test_reuse_blocks_rewrite(benchmark):
    """Negative control: when the inverse is reused the program must not change."""

    def optimize_reuse():
        program, _, _ = linear_solve_program(64, reuse_inverse=True)
        report = optimize(program)
        return program, report

    program, report = benchmark(optimize_reuse)
    benchmark.group = "E5 rewrite safety"
    assert report.optimized.count(OpCode.BH_MATRIX_INVERSE) == 1
    assert report.optimized.count(OpCode.BH_LU_SOLVE) == 0
    record_table(
        benchmark,
        "E5: reuse-of-inverse control",
        [
            {
                "case": "inverse reused",
                "inverse_ops": report.optimized.count(OpCode.BH_MATRIX_INVERSE),
                "lu_solve_ops": report.optimized.count(OpCode.BH_LU_SOLVE),
            }
        ],
        ["case", "inverse_ops", "lu_solve_ops"],
    )
