"""E6 — loop-fusion-like contraction of element-wise chains.

Paper claim (Section 2): transformations can be "small loop-fusion-like
contractions of byte-codes".  Expected shape: fusing a chain of k
element-wise byte-codes into one kernel reduces kernel launches from k to 1
and reduces simulated memory traffic (each operand streamed once); the
measured gain grows with chain length, and the fusing JIT backend shows the
same effect as the fusion pass.
"""

import numpy as np
import pytest

from repro.bytecode.opcodes import OpCode
from repro.core.cost import CostModel
from repro.core.fusion import FusionPass
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.jit import FusingJIT
from repro.runtime.simulator import SimulatedAccelerator
from repro.workloads import elementwise_chain

from conftest import record_table

SIZE = 500_000
CHAIN_LENGTHS = (4, 16)


def _run(backend, program, out):
    return backend.execute(program).value(out)


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_unfused_chain(benchmark, length):
    """Baseline: each element-wise byte-code is its own kernel launch."""
    program, out = elementwise_chain(SIZE, length=length)
    values = benchmark(_run, NumPyInterpreter(), program, out)
    benchmark.group = f"E6 chain length {length}"
    assert np.isfinite(values).all()


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_fused_chain(benchmark, length):
    """Fused: the whole chain wrapped into one BH_FUSED kernel."""
    program, out = elementwise_chain(SIZE, length=length)
    fused = FusionPass().run(program).program
    assert fused.num_kernels() == 1

    reference = NumPyInterpreter().execute(program).value(out)
    values = benchmark(_run, NumPyInterpreter(), fused, out)
    assert np.allclose(values, reference)
    benchmark.group = f"E6 chain length {length}"

    model = CostModel("gpu")
    record_table(
        benchmark,
        f"E6: chain of {length} element-wise byte-codes over {SIZE} elements",
        [
            {
                "program": "unfused",
                "kernel_launches": program.num_kernels(),
                "bytes_modelled": model.breakdown(program).bytes_moved,
                "simulated_us": model.program_cost(program) * 1e6,
            },
            {
                "program": "fused",
                "kernel_launches": fused.num_kernels(),
                "bytes_modelled": model.breakdown(fused).bytes_moved,
                "simulated_us": model.program_cost(fused) * 1e6,
            },
        ],
        ["program", "kernel_launches", "bytes_modelled", "simulated_us"],
    )
    assert model.program_cost(fused) < model.program_cost(program)


@pytest.mark.parametrize("length", CHAIN_LENGTHS)
def test_fusing_jit_backend(benchmark, length):
    """The runtime-side fuser (FusingJIT) shows the same contraction."""
    program, out = elementwise_chain(SIZE, length=length)
    jit = FusingJIT()
    values = benchmark(_run, jit, program, out)
    benchmark.group = f"E6 chain length {length}"
    result = jit.execute(program)
    assert result.stats.kernel_launches < program.num_kernels()
    assert np.allclose(values, NumPyInterpreter().execute(program).value(out))


def test_simulated_speedup_vs_chain_length(benchmark):
    """Simulated-accelerator speedup curve as the fusable chain grows."""

    def sweep():
        rows = []
        accelerator = SimulatedAccelerator("gpu")
        for length in (2, 4, 8, 16, 32):
            program, _ = elementwise_chain(10_000, length=length)
            # raise the kernel-size cap so the longest chain still fuses into
            # one kernel and the curve isolates the chain-length effect
            fused = FusionPass(max_kernel_size=64).run(program).program
            rows.append(
                {
                    "chain_length": length,
                    "kernels_before": program.num_kernels(),
                    "kernels_after": fused.num_kernels(),
                    "simulated_speedup": accelerator.estimate(program)
                    / accelerator.estimate(fused),
                }
            )
        return rows

    rows = benchmark(sweep)
    benchmark.group = "E6 fusion scaling"
    record_table(
        benchmark,
        "E6: simulated speedup vs chain length (GPU profile)",
        rows,
        ["chain_length", "kernels_before", "kernels_after", "simulated_speedup"],
    )
    speedups = [row["simulated_speedup"] for row in rows]
    assert all(later >= earlier for earlier, later in zip(speedups, speedups[1:]))
