"""E7 — end-to-end scientific workloads through the lazy front-end.

Paper motivation (Section 1): the programmer keeps writing NumPy and the
runtime delivers the performance.  These benchmarks run the motivating
workloads (heat-equation stencil, Black-Scholes pricing, Monte-Carlo pi,
Gaussian blur, a polynomial mixing both headline rewrites) through the full
stack — front-end recording, optimization pipeline, backend execution — with
the optimizer off versus on.  Expected shape: the optimized runs launch
fewer kernels and are never slower; chains dominated by element-wise work
(Black-Scholes, polynomial) show the largest gains.
"""

import numpy as np
import pytest

from repro import frontend as bh
from repro.frontend.session import reset_session
from repro.workloads import (
    black_scholes,
    gaussian_blur,
    heat_equation,
    monte_carlo_pi,
    polynomial_evaluation,
)

from conftest import record_table

WORKLOADS = {
    "heat_equation": lambda: heat_equation(grid_size=96, iterations=10),
    "black_scholes": lambda: black_scholes(num_options=200_000),
    "monte_carlo_pi": lambda: monte_carlo_pi(num_samples=200_000),
    "gaussian_blur": lambda: gaussian_blur(height=128, width=128, iterations=3),
    "polynomial": lambda: polynomial_evaluation(size=200_000, exponent=10),
}


def _run_workload(name, optimize_flag):
    session = reset_session(backend="interpreter", optimize=optimize_flag)
    bh.random.seed(2016)
    result = WORKLOADS[name]()
    values = result.to_numpy()
    stats = session.total_stats()
    return values, stats


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_unoptimized(benchmark, name):
    """Baseline: lazy front-end with the optimizer disabled (one kernel per byte-code)."""
    values, stats = benchmark(_run_workload, name, False)
    benchmark.group = f"E7 {name}"
    benchmark.extra_info["kernel_launches"] = stats.kernel_launches
    assert np.isfinite(values).all()


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_optimized(benchmark, name):
    """Optimized: the full transformation pipeline runs at every flush."""
    baseline_values, baseline_stats = _run_workload(name, False)
    values, stats = benchmark(_run_workload, name, True)
    benchmark.group = f"E7 {name}"
    benchmark.extra_info["kernel_launches"] = stats.kernel_launches

    assert np.allclose(values, baseline_values, rtol=1e-8, atol=1e-10)
    assert stats.kernel_launches <= baseline_stats.kernel_launches
    record_table(
        benchmark,
        f"E7: {name}",
        [
            {
                "configuration": "unoptimized",
                "kernel_launches": baseline_stats.kernel_launches,
                "instructions": baseline_stats.instructions_executed,
            },
            {
                "configuration": "optimized",
                "kernel_launches": stats.kernel_launches,
                "instructions": stats.instructions_executed,
            },
        ],
        ["configuration", "kernel_launches", "instructions"],
    )
