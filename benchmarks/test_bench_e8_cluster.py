"""E8 — simulated cluster/multicore scaling (paper Section 1 context).

Bohrium's pitch includes clusters; we cannot run one, so the partitioned
executor prices programs under an explicit latency/bandwidth model.
Expected shape: simulated time falls with worker count but sub-linearly
(communication and launch overheads), and the byte-code optimizer improves
every point of the curve because each removed byte-code removes a round of
per-worker work and each fused kernel removes synchronisation.
"""

import numpy as np
import pytest

from repro.cluster import ClusterExecutor, CommunicationModel
from repro.core.pipeline import optimize
from repro.workloads import elementwise_chain, linear_solve_program, repeated_constant_add

from conftest import record_table

WORKER_COUNTS = (1, 2, 4, 8, 16)
SIZE = 1_000_000


@pytest.mark.parametrize("workers", (1, 4, 16))
def test_cluster_execution(benchmark, workers):
    """Wall-clock of the (correctness) execution path plus pricing, per worker count."""
    program, out = elementwise_chain(100_000, length=8)

    def run():
        executor = ClusterExecutor(num_workers=workers, profile="single_core")
        return executor.execute(program).value(out)

    values = benchmark(run)
    benchmark.group = "E8 cluster execution"
    assert np.isfinite(values).all()


def test_scaling_curve_unoptimized_vs_optimized(benchmark):
    """The headline scaling table: simulated seconds vs workers, before/after optimization."""

    def sweep():
        program, _ = elementwise_chain(SIZE, length=16)
        optimized = optimize(program).optimized
        executor = ClusterExecutor(num_workers=1, profile="single_core")
        before = executor.scaling_curve(program, WORKER_COUNTS)
        after = executor.scaling_curve(optimized, WORKER_COUNTS)
        rows = []
        for workers in WORKER_COUNTS:
            rows.append(
                {
                    "workers": workers,
                    "unoptimized_ms": before[workers] * 1e3,
                    "optimized_ms": after[workers] * 1e3,
                    "optimizer_gain": before[workers] / after[workers],
                    "scaling_vs_1": before[WORKER_COUNTS[0]] / before[workers],
                }
            )
        return rows

    rows = benchmark(sweep)
    benchmark.group = "E8 scaling curve"
    record_table(
        benchmark,
        f"E8: element-wise chain of 16 byte-codes over {SIZE} elements",
        rows,
        ["workers", "unoptimized_ms", "optimized_ms", "optimizer_gain", "scaling_vs_1"],
    )
    # more workers help, the optimizer helps at every point, and scaling is sub-linear
    assert rows[-1]["scaling_vs_1"] > 1.5
    assert rows[-1]["scaling_vs_1"] < WORKER_COUNTS[-1]
    assert all(row["optimizer_gain"] > 1.0 for row in rows)


def test_communication_sensitivity(benchmark):
    """Ablation: a slower interconnect hurts the unoptimized program more."""

    def sweep():
        program, _ = repeated_constant_add(SIZE, repeats=8)
        optimized = optimize(program).optimized
        rows = []
        for latency, bandwidth, label in (
            (1e-6, 50e9, "fast fabric"),
            (50e-6, 1e9, "slow ethernet"),
        ):
            comm = CommunicationModel(latency_s=latency, bytes_per_second=bandwidth)
            executor = ClusterExecutor(num_workers=8, profile="single_core", comm=comm)
            rows.append(
                {
                    "interconnect": label,
                    "unoptimized_ms": executor.estimate(program).total_seconds * 1e3,
                    "optimized_ms": executor.estimate(optimized).total_seconds * 1e3,
                }
            )
        return rows

    rows = benchmark(sweep)
    benchmark.group = "E8 communication sensitivity"
    record_table(
        benchmark,
        "E8: interconnect sensitivity (8 workers)",
        rows,
        ["interconnect", "unoptimized_ms", "optimized_ms"],
    )
    for row in rows:
        assert row["optimized_ms"] < row["unoptimized_ms"]


def test_extension_heavy_program_on_cluster(benchmark):
    """The Equation 2 rewrite also removes a serialised + gathered extension op."""

    def sweep():
        program, _, _ = linear_solve_program(128)
        optimized = optimize(program).optimized
        executor = ClusterExecutor(num_workers=8, profile="single_core")
        return {
            "unoptimized": executor.estimate(program),
            "optimized": executor.estimate(optimized),
        }

    stats = benchmark(sweep)
    benchmark.group = "E8 linear solve on cluster"
    record_table(
        benchmark,
        "E8: inv(A) @ b vs LU solve under the cluster model (8 workers)",
        [
            {
                "program": name,
                "serial_ops": value.serial_instructions,
                "sync_rounds": value.sync_rounds,
                "total_ms": value.total_seconds * 1e3,
            }
            for name, value in stats.items()
        ],
        ["program", "serial_ops", "sync_rounds", "total_ms"],
    )
    assert stats["optimized"].total_seconds < stats["unoptimized"].total_seconds
    assert stats["optimized"].serial_instructions < stats["unoptimized"].serial_instructions
