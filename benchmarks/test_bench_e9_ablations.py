"""E9 — ablations of the design choices called out in DESIGN.md.

Not a paper table, but the design decisions the reproduction documents:

* pass ordering / fixed-point iteration versus a single pass,
* safety analysis on versus off (measured as: how often would the unsound
  rewrite have fired on programs where it must not),
* chain strategy choice inside the power-expansion pass,
* optimizer overhead itself (how long does optimizing a program take
  relative to running it).
"""

import numpy as np
import pytest

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.core.pipeline import Pipeline, default_pipeline, optimize
from repro.core.verifier import SemanticVerifier
from repro.runtime.interpreter import NumPyInterpreter
from repro.workloads import (
    elementwise_chain,
    linear_solve_program,
    power_program,
    random_elementwise_program,
    repeated_constant_add,
)

from conftest import record_table


def test_fixed_point_vs_single_pass(benchmark):
    """Does iterating the pipeline to a fixed point buy extra reductions?"""

    def sweep():
        rows = []
        for name, program in (
            ("mixed chain", _mixed_program()),
            ("constant adds", repeated_constant_add(1000, repeats=8)[0]),
            ("power", power_program(1000, 12)[0]),
        ):
            single = optimize(program, fixed_point=False)
            fixed = optimize(program, fixed_point=True)
            rows.append(
                {
                    "workload": name,
                    "before": len(program),
                    "single_pass": len(single.optimized),
                    "fixed_point": len(fixed.optimized),
                    "iterations": fixed.iterations,
                }
            )
        return rows

    rows = benchmark(sweep)
    benchmark.group = "E9 ablations"
    record_table(
        benchmark,
        "E9: single pass vs fixed point (byte-code counts)",
        rows,
        ["workload", "before", "single_pass", "fixed_point", "iterations"],
    )
    assert all(row["fixed_point"] <= row["single_pass"] for row in rows)


def _mixed_program():
    builder = ProgramBuilder()
    v = builder.new_vector(1000)
    builder.identity(v, 0)
    builder.add(v, v, 1)
    builder.multiply(v, v, 1)   # identity-simplify unlocks a longer merge run
    builder.add(v, v, 1)
    builder.add(v, v, 1)
    builder.sync(v)
    return builder.build()


def test_chain_strategy_ablation(benchmark):
    """Pass-level ablation: which chain strategy should power expansion use?"""

    def sweep():
        rows = []
        for strategy in ("naive", "power_of_two", "binary"):
            counts = []
            for exponent in (6, 10, 24, 48):
                program, _, _ = power_program(1000, exponent)
                report = optimize(
                    program,
                    enabled_passes=["power_expansion"],
                    power_expansion={"strategy": strategy},
                    fixed_point=False,
                )
                counts.append(report.optimized.count(OpCode.BH_MULTIPLY))
            rows.append(
                {
                    "strategy": strategy,
                    "n=6": counts[0],
                    "n=10": counts[1],
                    "n=24": counts[2],
                    "n=48": counts[3],
                }
            )
        return rows

    rows = benchmark(sweep)
    benchmark.group = "E9 ablations"
    record_table(
        benchmark, "E9: multiplies emitted per strategy", rows,
        ["strategy", "n=6", "n=10", "n=24", "n=48"],
    )
    by_name = {row["strategy"]: row for row in rows}
    assert by_name["binary"]["n=48"] <= by_name["power_of_two"]["n=48"] <= by_name["naive"]["n=48"]


def test_safety_analysis_ablation(benchmark):
    """How often would the Equation 2 rewrite mis-fire without liveness checks?

    We measure the number of rewrite opportunities the pattern matcher sees
    versus the number the safety analysis admits, over programs where the
    inverse is reused — the admitted count must be zero.
    """

    def sweep():
        from repro.core.linear_solve import LinearSolveRewritePass, _solve_pattern

        unsafe_sites = 0
        admitted = 0
        for n in (8, 16, 32):
            program, _, _ = linear_solve_program(n, reuse_inverse=True, seed=n)
            unsafe_sites += len(_solve_pattern().find_all(program))
            admitted += LinearSolveRewritePass().run(program).stats.rewrites_applied
        return {"pattern_matches": unsafe_sites, "admitted_rewrites": admitted}

    counts = benchmark(sweep)
    benchmark.group = "E9 ablations"
    record_table(
        benchmark,
        "E9: pattern matches vs safety-admitted rewrites on reuse programs",
        [counts],
        ["pattern_matches", "admitted_rewrites"],
    )
    assert counts["pattern_matches"] == 3
    assert counts["admitted_rewrites"] == 0


def test_optimizer_overhead(benchmark):
    """Optimizer cost relative to executing the program it optimizes."""
    program, out = elementwise_chain(200_000, length=12)

    def run_optimizer():
        return optimize(program)

    report = benchmark(run_optimizer)
    benchmark.group = "E9 optimizer overhead"
    execution = NumPyInterpreter().execute(program)
    benchmark.extra_info["program_execution_seconds"] = execution.stats.wall_time_seconds
    assert report.changed


def test_verifier_catches_seeded_fault(benchmark):
    """The semantic verifier is the safety net; make sure it actually trips."""

    def run():
        program, _ = repeated_constant_add(64, repeats=4)
        report = optimize(program, enabled_passes=["constant_merge"])
        verifier = SemanticVerifier()
        clean = verifier.equivalent(program, report.optimized)
        # seed a fault: perturb the merged constant in the optimized program
        broken_instructions = [
            instr.with_constant(123.456)
            if instr.opcode is OpCode.BH_ADD and instr.constant is not None
            else instr
            for instr in report.optimized
        ]
        from repro.bytecode.program import Program

        faulty = verifier.equivalent(program, Program(broken_instructions))
        return clean, faulty

    clean, faulty = benchmark(run)
    benchmark.group = "E9 verifier"
    assert clean is True
    assert faulty is False
