"""Black-Scholes option pricing with the lazy front-end.

A long element-wise pipeline (log, erf, exp, many multiplies) over a large
vector of spot prices — the kind of workload where fusing byte-codes into
kernels and removing redundant traversals pays off.  The example prices the
same options with and without the optimizer and checks the results agree.

Run with::

    python examples/black_scholes.py
"""

import time

from repro import frontend as np
from repro.frontend import reset_session
from repro.workloads import black_scholes


def price(num_options: int, optimize: bool) -> dict:
    session = reset_session(backend="interpreter", optimize=optimize)
    np.random.seed(2016)
    start = time.perf_counter()
    prices = black_scholes(num_options=num_options)
    values = prices.to_numpy()
    elapsed = time.perf_counter() - start
    stats = session.total_stats()
    return {
        "elapsed_s": elapsed,
        "kernels": stats.kernel_launches,
        "mean_price": float(values.mean()),
        "report": session.last_report,
    }


def main() -> None:
    num_options = 500_000
    baseline = price(num_options, optimize=False)
    optimized = price(num_options, optimize=True)

    print(f"Black-Scholes, {num_options} options")
    print(f"  unoptimized: {baseline['kernels']:3d} kernel launches, "
          f"{baseline['elapsed_s'] * 1e3:7.1f} ms, mean price {baseline['mean_price']:.4f}")
    print(f"  optimized  : {optimized['kernels']:3d} kernel launches, "
          f"{optimized['elapsed_s'] * 1e3:7.1f} ms, mean price {optimized['mean_price']:.4f}")
    print(f"  price difference: {abs(baseline['mean_price'] - optimized['mean_price']):.3e}")
    if optimized["report"] is not None:
        print()
        print(optimized["report"].summary())


if __name__ == "__main__":
    main()
