"""Simulated cluster scaling of an optimized vs unoptimized workload.

Bohrium's pitch is running unchanged NumPy code on multicore machines and
clusters.  This example prices a long element-wise chain on the simulated
partitioned executor for 1..16 workers, with and without the byte-code
optimizer, and prints the scaling curve: the optimizer removes byte-codes
(and therefore whole per-worker kernel rounds and synchronisations), so the
optimized curve sits below the unoptimized one at every worker count.

Run with::

    python examples/cluster_scaling.py
"""

from repro import optimize
from repro.cluster import ClusterExecutor
from repro.workloads import elementwise_chain, repeated_constant_add


def main() -> None:
    size, chain_length = 1_000_000, 16
    program, _ = elementwise_chain(size, length=chain_length)
    optimized = optimize(program).optimized

    worker_counts = (1, 2, 4, 8, 16)
    executor = ClusterExecutor(num_workers=1, profile="single_core")
    curve_before = executor.scaling_curve(program, worker_counts)
    curve_after = executor.scaling_curve(optimized, worker_counts)

    print(f"element-wise chain of {chain_length} byte-codes over {size} elements")
    print(f"{'workers':>8} {'unoptimized':>14} {'optimized':>14} {'speedup':>9}")
    for workers in worker_counts:
        before = curve_before[workers]
        after = curve_after[workers]
        print(
            f"{workers:>8} {before * 1e3:>11.3f} ms {after * 1e3:>11.3f} ms "
            f"{before / after:>8.2f}x"
        )

    print()
    program, _ = repeated_constant_add(size, repeats=8)
    optimized = optimize(program).optimized
    curve_before = executor.scaling_curve(program, worker_counts)
    curve_after = executor.scaling_curve(optimized, worker_counts)
    print(f"repeated constant add (8 additions) over {size} elements")
    print(f"{'workers':>8} {'unoptimized':>14} {'optimized':>14} {'speedup':>9}")
    for workers in worker_counts:
        before = curve_before[workers]
        after = curve_after[workers]
        print(
            f"{workers:>8} {before * 1e3:>11.3f} ms {after * 1e3:>11.3f} ms "
            f"{before / after:>8.2f}x"
        )


if __name__ == "__main__":
    main()
