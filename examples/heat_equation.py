"""Heat-equation (Jacobi) stencil: an end-to-end scientific workload.

Runs the same front-end code twice — once with the optimizer disabled and
once enabled — and reports byte-code counts, kernel launches and wall-clock
time, i.e. the high-productivity / high-performance trade-off the paper's
introduction motivates.

Run with::

    python examples/heat_equation.py
"""

import time

from repro import frontend as np
from repro.frontend import reset_session
from repro.workloads import heat_equation


def run(grid_size: int, iterations: int, optimize: bool) -> dict:
    session = reset_session(backend="interpreter", optimize=optimize)
    start = time.perf_counter()
    result = heat_equation(grid_size=grid_size, iterations=iterations)
    values = result.to_numpy()
    elapsed = time.perf_counter() - start
    stats = session.total_stats()
    return {
        "optimize": optimize,
        "elapsed_s": elapsed,
        "kernels": stats.kernel_launches,
        "instructions": stats.instructions_executed,
        "checksum": float(values.sum()),
        "report": session.last_report,
    }


def main() -> None:
    grid_size, iterations = 128, 20

    baseline = run(grid_size, iterations, optimize=False)
    optimized = run(grid_size, iterations, optimize=True)

    print(f"heat equation, {grid_size}x{grid_size} grid, {iterations} Jacobi iterations")
    print(f"{'':>14} {'kernels':>8} {'byte-codes':>11} {'time':>10}")
    for row in (baseline, optimized):
        label = "optimized" if row["optimize"] else "unoptimized"
        print(
            f"{label:>14} {row['kernels']:>8} {row['instructions']:>11} "
            f"{row['elapsed_s'] * 1e3:>8.1f} ms"
        )
    print()
    print(f"checksum difference: {abs(baseline['checksum'] - optimized['checksum']):.3e}")
    if optimized["report"] is not None:
        print()
        print(optimized["report"].summary())


if __name__ == "__main__":
    main()
