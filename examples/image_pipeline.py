"""Imaging pipeline: iterated Gaussian blur plus post-processing.

The paper is part of the CINEMA imaging project; this example stands in for
that kind of tomography post-processing: blur a random "image" with shifted
views, normalise it, and threshold it — all recorded lazily and optimized
before execution.

Run with::

    python examples/image_pipeline.py
"""

import time

from repro import frontend as np
from repro.frontend import reset_session
from repro.workloads import gaussian_blur


def run(height: int, width: int, iterations: int, optimize: bool) -> dict:
    session = reset_session(backend="interpreter", optimize=optimize)
    np.random.seed(42)
    start = time.perf_counter()
    blurred = gaussian_blur(height=height, width=width, iterations=iterations)
    # Post-processing: normalise to [0, 1] and threshold at the mean.
    low = blurred.min()
    high = blurred.max()
    normalised = (blurred - low) / (high - low + 1e-12)
    mask = normalised > 0.5
    foreground_fraction = float((mask * 1.0).mean())
    elapsed = time.perf_counter() - start
    stats = session.total_stats()
    return {
        "elapsed_s": elapsed,
        "kernels": stats.kernel_launches,
        "foreground": foreground_fraction,
    }


def main() -> None:
    height = width = 256
    iterations = 4
    baseline = run(height, width, iterations, optimize=False)
    optimized = run(height, width, iterations, optimize=True)

    print(f"image pipeline, {height}x{width}, {iterations} blur iterations")
    print(f"  unoptimized: {baseline['kernels']:3d} kernel launches, "
          f"{baseline['elapsed_s'] * 1e3:7.1f} ms")
    print(f"  optimized  : {optimized['kernels']:3d} kernel launches, "
          f"{optimized['elapsed_s'] * 1e3:7.1f} ms")
    print(f"  foreground fraction agrees to "
          f"{abs(baseline['foreground'] - optimized['foreground']):.3e}")


if __name__ == "__main__":
    main()
