"""The context-aware linear-solve rewrite (the paper's Equation 2).

Writes ``x = inv(A) @ b`` with the lazy front-end, shows that the optimizer
replaces the inversion + product with a single ``BH_LU_SOLVE``, verifies the
numbers against the naive path, and shows the negative case: when the
inverse is reused, the rewrite is (correctly) refused.

Run with::

    python examples/linear_solve.py
"""

import time

import numpy

from repro import format_program
from repro import frontend as np
from repro.frontend import linalg, reset_session
from repro.linalg.util import random_well_conditioned


def solve_with_idiom(n: int, optimize: bool) -> tuple:
    """Record ``inv(A) @ b``, flush, and return (solution, elapsed seconds)."""
    session = reset_session(backend="interpreter", optimize=optimize)
    matrix = np.array(random_well_conditioned(n, seed=7))
    rhs = np.array(numpy.random.default_rng(11).standard_normal(n))
    start = time.perf_counter()
    solution = linalg.inv(matrix) @ rhs
    values = solution.to_numpy()
    elapsed = time.perf_counter() - start
    return values, elapsed, session


def main() -> None:
    n = 256

    unoptimized, slow_time, _ = solve_with_idiom(n, optimize=False)
    optimized, fast_time, session = solve_with_idiom(n, optimize=True)

    print("Optimized byte-code for x = inv(A) @ b:")
    print(format_program(session.last_report.optimized))
    print()
    print(session.last_report.summary())
    print()

    reference = numpy.linalg.solve(random_well_conditioned(n, seed=7),
                                   numpy.random.default_rng(11).standard_normal(n))
    print(f"max |x_optimized - numpy.linalg.solve| = {abs(optimized - reference).max():.2e}")
    print(f"max |x_optimized - x_unoptimized|      = {abs(optimized - unoptimized).max():.2e}")
    print(f"inverse-based solve : {slow_time * 1e3:8.2f} ms")
    print(f"LU-rewritten solve  : {fast_time * 1e3:8.2f} ms "
          f"({slow_time / fast_time:.2f}x faster)")
    print()

    # Negative case: the inverse is also used for something else, so the
    # rewrite must not fire ("only faster if we do not use the inverse for
    # anything else").
    session = reset_session(backend="interpreter", optimize=True)
    matrix = np.array(random_well_conditioned(n, seed=7))
    rhs = np.array(numpy.random.default_rng(11).standard_normal(n))
    inverse = linalg.inv(matrix)
    solution = inverse @ rhs
    inverse_row_sums = inverse.sum(axis=0)
    solution.to_numpy()
    report_with_reuse = session.last_report
    inverse_row_sums.to_numpy()
    rewrites = sum(
        stats.rewrites_applied
        for stats in report_with_reuse.pass_stats
        if stats.pass_name == "linear_solve"
    ) if report_with_reuse else 0
    print(f"with the inverse reused, linear_solve rewrites applied: {rewrites} (expected 0)")


if __name__ == "__main__":
    main()
