"""Power expansion (the paper's Equation 1 and Listings 4-5).

Shows, for ``x ** 10``:

* the naive multiplication chain (nine multiplies, Listing 4),
* the paper's square-then-increment chain (five multiplies, Listing 5),
* the binary square-and-multiply chain (four multiplies),
* the cost-model prediction and measured wall-clock for each, versus the
  un-expanded ``BH_POWER``.

Run with::

    python examples/power_expansion.py
"""

from repro import CostModel, NumPyInterpreter, format_program, optimize
from repro.core.addition_chains import available_strategies, chain_for
from repro.workloads import power_program


def describe_chains(exponent: int) -> None:
    print(f"Addition chains for n = {exponent}:")
    for strategy in available_strategies():
        chain = chain_for(exponent, strategy)
        print(
            f"  {strategy:>12}: {chain.num_multiplies:2d} multiplies, "
            f"values {list(chain.values)}"
        )
    print()


def run_strategy(exponent: int, size: int, strategy: str) -> None:
    program, output, memory = power_program(size, exponent)
    report = optimize(
        program,
        power_expansion={"strategy": strategy},
        enabled_passes=["power_expansion"],
        fixed_point=False,
    )
    cost = CostModel("gpu")
    interpreter = NumPyInterpreter()
    result = interpreter.execute(report.optimized, memory.clone())
    print(
        f"  {strategy:>12}: {report.instructions_after - 1:2d} multiplies, "
        f"simulated {cost.program_cost(report.optimized) * 1e6:8.2f} us, "
        f"wall {result.stats.wall_time_seconds * 1e3:7.3f} ms"
    )


def main() -> None:
    exponent, size = 10, 1_000_000
    describe_chains(exponent)

    program, output, memory = power_program(size, exponent)
    print("Original byte-code (one BH_POWER):")
    print(format_program(program))
    print()

    cost = CostModel("gpu")
    baseline = NumPyInterpreter().execute(program, memory.clone())
    print(
        f"  {'BH_POWER':>12}:  1 power op,   "
        f"simulated {cost.program_cost(program) * 1e6:8.2f} us, "
        f"wall {baseline.stats.wall_time_seconds * 1e3:7.3f} ms"
    )
    for strategy in ("naive", "power_of_two", "binary"):
        run_strategy(exponent, size, strategy)

    print()
    program, _, _ = power_program(8, exponent)
    report = optimize(
        program,
        power_expansion={"strategy": "power_of_two"},
        enabled_passes=["power_expansion"],
        fixed_point=False,
    )
    print("Expanded byte-code with the paper's strategy (Listing 5):")
    print(format_program(report.optimized))


if __name__ == "__main__":
    main()
