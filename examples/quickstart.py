"""Quickstart: the paper's Listing 1, end to end.

Three ``a += 1`` statements are recorded as three ``BH_ADD`` byte-codes; the
optimizer merges the constants into a single ``BH_ADD a0, a0, 3`` (Listing 3)
before anything executes.

Run with::

    python examples/quickstart.py
"""

from repro import format_program
from repro import frontend as np
from repro.frontend import reset_session


def main() -> None:
    session = reset_session(backend="interpreter", optimize=True)

    # The paper's Listing 1 — unchanged NumPy-style code.
    a = np.zeros(10)
    a += 1
    a += 1
    a += 1

    print("Recorded byte-code (the paper's Listing 2):")
    print(format_program(session.pending))
    print()

    values = a.to_numpy()  # flush point: optimize + execute

    report = session.last_report
    print("Optimized byte-code (the paper's Listing 3, plus fusion):")
    print(format_program(report.optimized))
    print()
    print(report.summary())
    print()
    print(f"Result: {values}")
    print(
        f"Byte-codes: {report.instructions_before} -> {report.instructions_after}; "
        f"kernel launches this flush: {session.stats_history[-1].kernel_launches}"
    )


if __name__ == "__main__":
    main()
