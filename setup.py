"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work in offline
environments without the ``wheel`` package (pip falls back to the legacy
``setup.py develop`` path when no ``[build-system]`` table is present).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Algebraic Transformation of Descriptive Vector "
        "Byte-code Sequences' (Larsen, Middleware DS 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.20"],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro-opt=repro.tools.cli:main"]},
)
