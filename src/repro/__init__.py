"""repro — reproduction of "Algebraic Transformation of Descriptive Vector
Byte-code Sequences" (Mads Ohm Larsen, Middleware Doctoral Symposium 2016).

The package implements a Bohrium-like stack in pure Python:

* :mod:`repro.bytecode` — the descriptive vector byte-code IR (op-codes,
  views, programs, the textual listing format).
* :mod:`repro.runtime` — execution backends: a NumPy reference interpreter,
  a fusing JIT and a simulated accelerator with a roofline cost model.
* :mod:`repro.core` — the paper's contribution: the algebraic
  transformation engine (constant merging, power expansion via addition
  chains, the context-aware linear-solve rewrite, fusion, clean-up passes,
  the cost model and the pass pipeline).
* :mod:`repro.linalg` — from-scratch LU / triangular-solve / inversion
  substrate used by the extension byte-codes.
* :mod:`repro.frontend` — a lazy NumPy-like array front-end that records
  byte-code instead of computing eagerly ("change the import, keep the
  code").
* :mod:`repro.cluster` — a simulated partitioned multi-worker executor.
* :mod:`repro.workloads` — workload generators used by the examples and the
  benchmark harness.

Quickstart (the paper's Listing 1):

>>> from repro import frontend as np
>>> a = np.zeros(10)
>>> a += 1
>>> a += 1
>>> a += 1
>>> a.to_numpy()          # flush: optimize + execute the recorded byte-code
array([3., 3., 3., 3., 3., 3., 3., 3., 3., 3.])
"""

from repro import bytecode, core, linalg, runtime, utils
from repro.bytecode import (
    BaseArray,
    Constant,
    Instruction,
    OpCode,
    Program,
    ProgramBuilder,
    View,
    format_program,
    parse_program,
    validate_program,
)
from repro.core import CostModel, OptimizationReport, Pipeline, default_pipeline, optimize
from repro.runtime import (
    ExecutionEngine,
    ExecutionPlan,
    ExecutionResult,
    ExecutionStats,
    FusingJIT,
    MemoryManager,
    NumPyInterpreter,
    PlanCache,
    SimulatedAccelerator,
    get_backend,
    program_fingerprint,
    register_backend,
)
from repro.utils import Config, config_override, get_config, set_config

__version__ = "1.0.0"

__all__ = [
    "bytecode",
    "core",
    "linalg",
    "runtime",
    "utils",
    "BaseArray",
    "Constant",
    "Instruction",
    "OpCode",
    "Program",
    "ProgramBuilder",
    "View",
    "format_program",
    "parse_program",
    "validate_program",
    "CostModel",
    "OptimizationReport",
    "Pipeline",
    "default_pipeline",
    "optimize",
    "ExecutionEngine",
    "ExecutionPlan",
    "ExecutionResult",
    "ExecutionStats",
    "FusingJIT",
    "MemoryManager",
    "NumPyInterpreter",
    "PlanCache",
    "SimulatedAccelerator",
    "get_backend",
    "register_backend",
    "program_fingerprint",
    "Config",
    "config_override",
    "get_config",
    "set_config",
    "__version__",
]
