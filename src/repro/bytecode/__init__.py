"""The Bohrium-style byte-code intermediate representation.

This package defines the descriptive vector byte-code language from the
paper (Section 3): programs are linear sequences of instructions, each
instruction has an op-code, a result operand and up to two input operands,
and operands are either *views* over *base arrays* or scalar *constants*.

The main entry points are:

* :class:`OpCode` / :data:`OPCODE_INFO` — the op-code set and its metadata.
* :class:`BaseArray` — a storage descriptor (shape-less, just element count).
* :class:`View` — an offset/shape/stride window onto a base array.
* :class:`Constant` — a scalar literal operand.
* :class:`Instruction` — one byte-code.
* :class:`Program` — an ordered sequence of instructions.
* :class:`ProgramBuilder` — convenience constructor for programs.
* :func:`parse_program` / :func:`format_program` — the textual format used
  by the paper's listings.
* :func:`validate_program` — structural validation.
"""

from repro.bytecode.dtypes import DType, float64, float32, int64, int32, bool_, promote
from repro.bytecode.base import BaseArray
from repro.bytecode.view import View
from repro.bytecode.operand import Constant, Operand, is_constant, is_view
from repro.bytecode.opcodes import OpCode, OpCodeInfo, OPCODE_INFO, opcode_info
from repro.bytecode.instruction import Instruction
from repro.bytecode.program import Program
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.printer import format_instruction, format_program
from repro.bytecode.parser import parse_program, parse_instruction
from repro.bytecode.validate import validate_program, validate_instruction

__all__ = [
    "DType",
    "float64",
    "float32",
    "int64",
    "int32",
    "bool_",
    "promote",
    "BaseArray",
    "View",
    "Constant",
    "Operand",
    "is_constant",
    "is_view",
    "OpCode",
    "OpCodeInfo",
    "OPCODE_INFO",
    "opcode_info",
    "Instruction",
    "Program",
    "ProgramBuilder",
    "format_instruction",
    "format_program",
    "parse_program",
    "parse_instruction",
    "validate_program",
    "validate_instruction",
]
