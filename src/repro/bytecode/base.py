"""Base arrays: the storage descriptors views point into.

A base array in Bohrium is a flat, contiguous allocation of ``nelem``
elements of a single dtype.  Shape lives on :class:`~repro.bytecode.view.View`,
not on the base — the same base can be viewed as a vector, a matrix, or a
strided window.  The byte-code never stores data itself; the runtime's
memory manager materializes bases on demand.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional

from repro.bytecode.dtypes import DType, float64

_COUNTER = itertools.count()
_COUNTER_LOCK = threading.Lock()


def _next_serial() -> int:
    with _COUNTER_LOCK:
        return next(_COUNTER)


class BaseArray:
    """A logical flat allocation of ``nelem`` elements of ``dtype``.

    Parameters
    ----------
    nelem:
        Number of elements in the allocation.  Must be positive.
    dtype:
        Element type.  Defaults to ``float64``.
    name:
        Optional human-readable register name (``a0``, ``a1``, ...).  When
        omitted a unique name is generated; the name is what the textual
        format prints.

    Notes
    -----
    Identity matters: two distinct ``BaseArray`` objects are different
    storage even if they have equal sizes, so equality is identity-based and
    bases are hashable by identity.
    """

    __slots__ = ("nelem", "dtype", "name", "serial")

    def __init__(self, nelem: int, dtype: DType = float64, name: Optional[str] = None) -> None:
        if nelem <= 0:
            raise ValueError(f"base array must have a positive element count, got {nelem}")
        self.nelem = int(nelem)
        self.dtype = dtype
        self.serial = _next_serial()
        self.name = name if name is not None else f"a{self.serial}"

    @property
    def nbytes(self) -> int:
        """Size of the allocation in bytes."""
        return self.nelem * self.dtype.itemsize

    def __repr__(self) -> str:
        return f"BaseArray(name={self.name!r}, nelem={self.nelem}, dtype={self.dtype.name})"

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other
