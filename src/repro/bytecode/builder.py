"""Convenience construction of byte-code programs.

The :class:`ProgramBuilder` provides the small DSL that tests, examples and
workload generators use to write programs the way the paper's listings read:

>>> builder = ProgramBuilder()
>>> a0 = builder.new_vector(10)
>>> builder.identity(a0, 0)
>>> builder.add(a0, a0, 1)
>>> builder.add(a0, a0, 1)
>>> builder.add(a0, a0, 1)
>>> builder.sync(a0)
>>> program = builder.build()
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import DType, float64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, Operand, as_operand
from repro.bytecode.program import Program
from repro.bytecode.validate import validate_program
from repro.bytecode.view import View

ViewLike = Union[View, BaseArray]
OperandLike = Union[View, BaseArray, Constant, int, float, bool]


def _as_view(value: ViewLike) -> View:
    if isinstance(value, View):
        return value
    if isinstance(value, BaseArray):
        return View.full(value)
    raise TypeError(f"expected a View or BaseArray, got {type(value)!r}")


def _as_operand(value: OperandLike) -> Operand:
    if isinstance(value, BaseArray):
        return View.full(value)
    return as_operand(value)


class ProgramBuilder:
    """Incrementally builds a :class:`Program`.

    All emit methods return the output view so calls can be chained
    naturally.  ``build()`` optionally validates the finished program.
    """

    def __init__(self, dtype: DType = float64) -> None:
        self.dtype = dtype
        self._program = Program()
        self._register_counter = 0

    # ------------------------------------------------------------------ #
    # Register / view management
    # ------------------------------------------------------------------ #

    def _next_name(self) -> str:
        name = f"a{self._register_counter}"
        self._register_counter += 1
        return name

    def new_base(
        self, nelem: int, dtype: Optional[DType] = None, name: Optional[str] = None
    ) -> BaseArray:
        """Allocate a new base array of ``nelem`` elements."""
        return BaseArray(nelem, dtype or self.dtype, name=name or self._next_name())

    def new_vector(
        self, length: int, dtype: Optional[DType] = None, name: Optional[str] = None
    ) -> View:
        """Allocate a base and return its full 1-D view."""
        return View.full(self.new_base(length, dtype, name))

    def new_matrix(
        self, rows: int, cols: int, dtype: Optional[DType] = None, name: Optional[str] = None
    ) -> View:
        """Allocate a base and return its full ``rows x cols`` view."""
        base = self.new_base(rows * cols, dtype, name)
        return View.full(base, (rows, cols))

    def new_like(self, view: ViewLike, name: Optional[str] = None) -> View:
        """Allocate a new base with the same shape/dtype as ``view``."""
        view = _as_view(view)
        base = self.new_base(view.nelem, view.dtype, name)
        return View.full(base, view.shape)

    # ------------------------------------------------------------------ #
    # Generic emit
    # ------------------------------------------------------------------ #

    def emit(self, opcode: OpCode, *operands: OperandLike, tag: Optional[str] = None) -> Instruction:
        """Append a raw instruction and return it."""
        instruction = Instruction(opcode, [_as_operand(op) for op in operands], tag=tag)
        self._program.append(instruction)
        return instruction

    def emit_binary(
        self, opcode: OpCode, out: ViewLike, left: OperandLike, right: OperandLike
    ) -> View:
        out_view = _as_view(out)
        self.emit(opcode, out_view, left, right)
        return out_view

    def emit_unary(self, opcode: OpCode, out: ViewLike, operand: OperandLike) -> View:
        out_view = _as_view(out)
        self.emit(opcode, out_view, operand)
        return out_view

    # ------------------------------------------------------------------ #
    # Element-wise helpers (named after the listings)
    # ------------------------------------------------------------------ #

    def identity(self, out: ViewLike, source: OperandLike) -> View:
        """``BH_IDENTITY out, source`` — broadcast copy / initialisation."""
        return self.emit_unary(OpCode.BH_IDENTITY, out, source)

    def add(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_ADD, out, left, right)

    def subtract(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_SUBTRACT, out, left, right)

    def multiply(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_MULTIPLY, out, left, right)

    def divide(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_DIVIDE, out, left, right)

    def power(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_POWER, out, left, right)

    def mod(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_MOD, out, left, right)

    def maximum(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_MAXIMUM, out, left, right)

    def minimum(self, out: ViewLike, left: OperandLike, right: OperandLike) -> View:
        return self.emit_binary(OpCode.BH_MINIMUM, out, left, right)

    def negative(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_NEGATIVE, out, operand)

    def absolute(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_ABSOLUTE, out, operand)

    def sqrt(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_SQRT, out, operand)

    def exp(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_EXP, out, operand)

    def log(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_LOG, out, operand)

    def sin(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_SIN, out, operand)

    def cos(self, out: ViewLike, operand: OperandLike) -> View:
        return self.emit_unary(OpCode.BH_COS, out, operand)

    # ------------------------------------------------------------------ #
    # Reductions, generators and extension methods
    # ------------------------------------------------------------------ #

    def add_reduce(self, out: ViewLike, source: ViewLike, axis: int = 0) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_ADD_REDUCE, out_view, _as_view(source), Constant(int(axis)))
        return out_view

    def multiply_reduce(self, out: ViewLike, source: ViewLike, axis: int = 0) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_MULTIPLY_REDUCE, out_view, _as_view(source), Constant(int(axis)))
        return out_view

    def maximum_reduce(self, out: ViewLike, source: ViewLike, axis: int = 0) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_MAXIMUM_REDUCE, out_view, _as_view(source), Constant(int(axis)))
        return out_view

    def arange(self, out: ViewLike) -> View:
        """``BH_RANGE out`` — fill with 0, 1, 2, ..."""
        out_view = _as_view(out)
        self.emit(OpCode.BH_RANGE, out_view)
        return out_view

    def random(self, out: ViewLike, seed: int) -> View:
        """``BH_RANDOM out, seed`` — fill with uniform [0, 1) values."""
        out_view = _as_view(out)
        self.emit(OpCode.BH_RANDOM, out_view, Constant(int(seed)))
        return out_view

    def matmul(self, out: ViewLike, left: ViewLike, right: ViewLike) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_MATMUL, out_view, _as_view(left), _as_view(right))
        return out_view

    def matrix_inverse(self, out: ViewLike, source: ViewLike) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_MATRIX_INVERSE, out_view, _as_view(source))
        return out_view

    def lu_solve(self, out: ViewLike, matrix: ViewLike, rhs: ViewLike) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_LU_SOLVE, out_view, _as_view(matrix), _as_view(rhs))
        return out_view

    def transpose(self, out: ViewLike, source: ViewLike) -> View:
        out_view = _as_view(out)
        self.emit(OpCode.BH_TRANSPOSE, out_view, _as_view(source))
        return out_view

    # ------------------------------------------------------------------ #
    # System op-codes
    # ------------------------------------------------------------------ #

    def sync(self, view: ViewLike) -> View:
        """``BH_SYNC view`` — mark the view as a required program output."""
        out_view = _as_view(view)
        self.emit(OpCode.BH_SYNC, out_view)
        return out_view

    def free(self, view: ViewLike) -> View:
        """``BH_FREE view`` — release the base array after this point."""
        out_view = _as_view(view)
        self.emit(OpCode.BH_FREE, out_view)
        return out_view

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #

    @property
    def program(self) -> Program:
        """The program built so far (live object, not a copy)."""
        return self._program

    def build(self, validate: bool = True) -> Program:
        """Return the finished program, validating it by default."""
        if validate:
            validate_program(self._program)
        return self._program
