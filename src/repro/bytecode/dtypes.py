"""Element types for base arrays, views and constants.

Bohrium byte-code is typed; every base array and constant carries an element
type.  We model the subset of types that the paper's examples and the
benchmark workloads need, backed by NumPy dtypes so the runtime can allocate
storage directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np


@dataclass(frozen=True)
class DType:
    """A byte-code element type.

    Attributes
    ----------
    name:
        Bohrium-style type name, e.g. ``"BH_FLOAT64"``.
    np_dtype:
        The corresponding NumPy dtype used for storage.
    is_float:
        True for floating-point types.
    is_integer:
        True for (signed) integer types.
    is_bool:
        True for the boolean type.
    rank:
        Promotion rank; higher rank wins in mixed-type operations.
    """

    name: str
    np_dtype: np.dtype
    is_float: bool
    is_integer: bool
    is_bool: bool
    rank: int

    @property
    def itemsize(self) -> int:
        """Size of one element in bytes."""
        return int(self.np_dtype.itemsize)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return self.name


bool_ = DType("BH_BOOL", np.dtype(np.bool_), False, False, True, 0)
int32 = DType("BH_INT32", np.dtype(np.int32), False, True, False, 1)
int64 = DType("BH_INT64", np.dtype(np.int64), False, True, False, 2)
float32 = DType("BH_FLOAT32", np.dtype(np.float32), True, False, False, 3)
float64 = DType("BH_FLOAT64", np.dtype(np.float64), True, False, False, 4)

_ALL_DTYPES = (bool_, int32, int64, float32, float64)

_BY_NAME = {dtype.name: dtype for dtype in _ALL_DTYPES}
_BY_NP = {dtype.np_dtype: dtype for dtype in _ALL_DTYPES}


def from_name(name: str) -> DType:
    """Look up a dtype by its Bohrium-style name (e.g. ``"BH_FLOAT64"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown dtype name: {name!r}") from None


def from_numpy(np_dtype: Union[np.dtype, type]) -> DType:
    """Map a NumPy dtype (or scalar type) to the byte-code dtype."""
    dt = np.dtype(np_dtype)
    if dt in _BY_NP:
        return _BY_NP[dt]
    # Fall back to the closest supported type rather than failing: other
    # integer widths map to int64, other floats to float64.
    if np.issubdtype(dt, np.bool_):
        return bool_
    if np.issubdtype(dt, np.integer):
        return int64
    if np.issubdtype(dt, np.floating):
        return float64
    raise KeyError(f"unsupported NumPy dtype: {dt!r}")


def from_python(value: Union[bool, int, float]) -> DType:
    """Infer the byte-code dtype of a Python scalar."""
    if isinstance(value, (bool, np.bool_)):
        return bool_
    if isinstance(value, (int, np.integer)):
        return int64
    if isinstance(value, (float, np.floating)):
        return float64
    raise TypeError(f"cannot infer dtype of {type(value)!r}")


def promote(left: DType, right: DType) -> DType:
    """Return the result dtype of combining two operand dtypes.

    Promotion follows rank order (bool < int32 < int64 < float32 < float64),
    which matches the behaviour NumPy exhibits for these particular types.
    """
    return left if left.rank >= right.rank else right


def all_dtypes() -> tuple:
    """Return the tuple of all supported dtypes."""
    return _ALL_DTYPES
