"""Instructions: a single byte-code.

An instruction is an op-code plus its operands.  For op-codes with an output
the first operand is the result view; the remaining operands are inputs
(views or constants).  System op-codes (``BH_SYNC``, ``BH_FREE``) take a
single view which we also store in the output slot, matching Bohrium's
convention that the "result" of a sync/free is the array being synced/freed.

Fused kernels (``BH_FUSED``) additionally carry the list of element-wise
instructions they replace, so backends can either execute them as one kernel
or fall back to interpreting the payload.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.bytecode.opcodes import OpCode, OpCodeInfo, opcode_info
from repro.bytecode.operand import Constant, Operand, as_operand, is_constant, is_view
from repro.bytecode.view import View


class Instruction:
    """One byte-code: an op-code, a result operand and input operands.

    Parameters
    ----------
    opcode:
        The operation to perform.
    operands:
        Output view first (when the op-code has an output), then inputs.
        Python scalars are coerced to :class:`Constant`.
    kernel:
        For ``BH_FUSED`` only: the element-wise instructions this kernel
        fuses, in execution order.
    tag:
        Optional free-form provenance string (which pass created the
        instruction); useful when inspecting optimized programs.
    """

    __slots__ = ("opcode", "operands", "kernel", "tag")

    def __init__(
        self,
        opcode: OpCode,
        operands: Sequence = (),
        kernel: Optional[Sequence["Instruction"]] = None,
        tag: Optional[str] = None,
    ) -> None:
        if not isinstance(opcode, OpCode):
            raise TypeError(f"opcode must be an OpCode, got {type(opcode)!r}")
        self.opcode = opcode
        self.operands: Tuple[Operand, ...] = tuple(as_operand(op) for op in operands)
        self.kernel: Optional[Tuple[Instruction, ...]] = (
            tuple(kernel) if kernel is not None else None
        )
        self.tag = tag
        if self.kernel is not None and opcode is not OpCode.BH_FUSED:
            raise ValueError("only BH_FUSED instructions may carry a kernel payload")

    # ------------------------------------------------------------------ #
    # Metadata accessors
    # ------------------------------------------------------------------ #

    @property
    def info(self) -> OpCodeInfo:
        """The static metadata record for this instruction's op-code."""
        return opcode_info(self.opcode)

    @property
    def out(self) -> Optional[View]:
        """The result view, or ``None`` for op-codes without an output."""
        if not self.info.has_output or not self.operands:
            return None
        result = self.operands[0]
        return result if is_view(result) else None

    @property
    def inputs(self) -> Tuple[Operand, ...]:
        """The input operands (everything after the output slot)."""
        if self.info.has_output:
            return self.operands[1:]
        return self.operands

    @property
    def input_views(self) -> Tuple[View, ...]:
        """Only the view-typed inputs."""
        return tuple(op for op in self.inputs if is_view(op))

    @property
    def constants(self) -> Tuple[Constant, ...]:
        """Only the constant-typed inputs."""
        return tuple(op for op in self.inputs if is_constant(op))

    @property
    def constant(self) -> Optional[Constant]:
        """The single constant input if there is exactly one, else ``None``."""
        consts = self.constants
        return consts[0] if len(consts) == 1 else None

    # ------------------------------------------------------------------ #
    # Classification helpers used by the passes
    # ------------------------------------------------------------------ #

    def is_elementwise(self) -> bool:
        """True for map-style instructions (fusable)."""
        return self.info.elementwise

    def is_reduction(self) -> bool:
        """True for axis reductions."""
        return self.info.reduction

    def is_system(self) -> bool:
        """True for runtime directives (SYNC/FREE/NONE)."""
        return self.info.system

    def is_extension(self) -> bool:
        """True for compound extension methods (dense linear algebra)."""
        return self.info.extension

    def is_fused(self) -> bool:
        """True for fused-kernel instructions."""
        return self.opcode is OpCode.BH_FUSED

    def views(self) -> Tuple[View, ...]:
        """Every view operand (output and inputs), in operand order."""
        own = tuple(op for op in self.operands if is_view(op))
        if self.kernel is not None:
            nested = tuple(v for instr in self.kernel for v in instr.views())
            return own + nested
        return own

    def reads(self) -> Tuple[View, ...]:
        """Views this instruction reads from."""
        if self.kernel is not None:
            return tuple(v for instr in self.kernel for v in instr.reads())
        if self.opcode is OpCode.BH_SYNC:
            # SYNC reads (forces materialization of) its operand.
            return tuple(op for op in self.operands if is_view(op))
        return self.input_views

    def writes(self) -> Tuple[View, ...]:
        """Views this instruction writes to."""
        if self.kernel is not None:
            return tuple(v for instr in self.kernel for v in instr.writes())
        if self.is_system():
            # SYNC observes and FREE releases; neither modifies element data.
            return ()
        out = self.out
        return (out,) if out is not None else ()

    def bases_read(self):
        """Base arrays read by this instruction."""
        return tuple(view.base for view in self.reads())

    def bases_written(self):
        """Base arrays written by this instruction."""
        return tuple(view.base for view in self.writes())

    # ------------------------------------------------------------------ #
    # Rewriting helpers
    # ------------------------------------------------------------------ #

    def replace(
        self,
        opcode: Optional[OpCode] = None,
        operands: Optional[Sequence] = None,
        kernel: Optional[Sequence["Instruction"]] = None,
        tag: Optional[str] = None,
    ) -> "Instruction":
        """Return a copy of this instruction with selected fields replaced."""
        return Instruction(
            opcode if opcode is not None else self.opcode,
            operands if operands is not None else self.operands,
            kernel=kernel if kernel is not None else self.kernel,
            tag=tag if tag is not None else self.tag,
        )

    def with_constant(self, value) -> "Instruction":
        """Return a copy with its (single) constant input replaced by ``value``.

        Raises ``ValueError`` when the instruction does not have exactly one
        constant input.
        """
        consts = self.constants
        if len(consts) != 1:
            raise ValueError(f"instruction has {len(consts)} constants, expected exactly 1")
        new_constant = Constant(value, consts[0].dtype)
        operands: List[Operand] = []
        replaced = False
        for op in self.operands:
            if is_constant(op) and not replaced:
                operands.append(new_constant)
                replaced = True
            else:
                operands.append(op)
        return self.replace(operands=operands)

    # ------------------------------------------------------------------ #
    # Equality and representation
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instruction):
            return NotImplemented
        return (
            self.opcode is other.opcode
            and self.operands == other.operands
            and self.kernel == other.kernel
        )

    def __hash__(self) -> int:
        return hash((self.opcode, self.operands, self.kernel))

    def __repr__(self) -> str:
        from repro.bytecode.printer import format_instruction

        return f"Instruction({format_instruction(self)!r})"
