"""The byte-code op-code set and its static metadata.

Op-codes follow Bohrium's ``BH_*`` naming.  Each op-code carries metadata
(:class:`OpCodeInfo`) that the validator, the interpreter, the cost model
and — most importantly — the transformation passes consult:

* ``num_inputs`` / ``has_output`` — operand arity.
* ``elementwise`` — the instruction maps each output element from the
  corresponding input elements; element-wise instructions are what the
  fusion pass may contract into a single kernel.
* ``commutative`` / ``associative`` — the algebraic properties that justify
  the constant-merge rewrite (Listing 2 -> Listing 3 in the paper).
* ``reduction`` — folds one axis of the input.
* ``system`` — runtime directives (``BH_SYNC``, ``BH_FREE``, ``BH_NONE``)
  that move no data.
* ``extension`` — compound operations registered as extension methods in
  Bohrium (``BH_MATMUL``, ``BH_MATRIX_INVERSE``, ...); these are the
  op-codes the context-aware linear-solve rewrite (Equation 2) targets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional


class OpCode(enum.Enum):
    """Enumeration of every byte-code op-code understood by the runtime."""

    # Data movement / initialisation
    BH_IDENTITY = "BH_IDENTITY"

    # Element-wise arithmetic
    BH_ADD = "BH_ADD"
    BH_SUBTRACT = "BH_SUBTRACT"
    BH_MULTIPLY = "BH_MULTIPLY"
    BH_DIVIDE = "BH_DIVIDE"
    BH_POWER = "BH_POWER"
    BH_MOD = "BH_MOD"
    BH_NEGATIVE = "BH_NEGATIVE"
    BH_ABSOLUTE = "BH_ABSOLUTE"
    BH_RECIPROCAL = "BH_RECIPROCAL"

    # Element-wise transcendental
    BH_SQRT = "BH_SQRT"
    BH_EXP = "BH_EXP"
    BH_LOG = "BH_LOG"
    BH_SIN = "BH_SIN"
    BH_COS = "BH_COS"
    BH_TAN = "BH_TAN"
    BH_ARCSIN = "BH_ARCSIN"
    BH_ARCCOS = "BH_ARCCOS"
    BH_ARCTAN = "BH_ARCTAN"
    BH_ERF = "BH_ERF"

    # Element-wise extrema / comparison / logical
    BH_MAXIMUM = "BH_MAXIMUM"
    BH_MINIMUM = "BH_MINIMUM"
    BH_GREATER = "BH_GREATER"
    BH_GREATER_EQUAL = "BH_GREATER_EQUAL"
    BH_LESS = "BH_LESS"
    BH_LESS_EQUAL = "BH_LESS_EQUAL"
    BH_EQUAL = "BH_EQUAL"
    BH_NOT_EQUAL = "BH_NOT_EQUAL"
    BH_LOGICAL_AND = "BH_LOGICAL_AND"
    BH_LOGICAL_OR = "BH_LOGICAL_OR"
    BH_LOGICAL_NOT = "BH_LOGICAL_NOT"

    # Reductions (input view, axis constant)
    BH_ADD_REDUCE = "BH_ADD_REDUCE"
    BH_MULTIPLY_REDUCE = "BH_MULTIPLY_REDUCE"
    BH_MAXIMUM_REDUCE = "BH_MAXIMUM_REDUCE"
    BH_MINIMUM_REDUCE = "BH_MINIMUM_REDUCE"

    # Generators
    BH_RANGE = "BH_RANGE"
    BH_RANDOM = "BH_RANDOM"

    # Extension methods (compound linear-algebra operations)
    BH_MATMUL = "BH_MATMUL"
    BH_MATRIX_INVERSE = "BH_MATRIX_INVERSE"
    BH_LU = "BH_LU"
    BH_LU_SOLVE = "BH_LU_SOLVE"
    BH_TRANSPOSE = "BH_TRANSPOSE"

    # Fused kernel produced by the fusion pass (carries a sub-program)
    BH_FUSED = "BH_FUSED"

    # System op-codes
    BH_SYNC = "BH_SYNC"
    BH_FREE = "BH_FREE"
    BH_NONE = "BH_NONE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class OpCodeInfo:
    """Static metadata describing one op-code.

    Attributes
    ----------
    opcode:
        The op-code this record describes.
    num_inputs:
        Number of input operands (views or constants) the instruction takes.
    has_output:
        Whether the first operand is a result view.
    elementwise:
        True for map-style operations (one output element per input element).
    commutative / associative:
        Algebraic properties of the binary operation, used by the
        constant-merge and reassociation rewrites.
    reduction:
        True for axis reductions.
    system:
        True for runtime directives that move no data.
    extension:
        True for compound extension methods (dense linear algebra).
    numpy_name:
        Name of the NumPy callable implementing the op, if any.  Used by the
        reference interpreter.
    identity_value:
        The algebraic identity element for binary ops (0 for add, 1 for
        multiply); ``None`` when not applicable.  Used by the
        identity-simplification pass.
    """

    opcode: OpCode
    num_inputs: int
    has_output: bool = True
    elementwise: bool = False
    commutative: bool = False
    associative: bool = False
    reduction: bool = False
    system: bool = False
    extension: bool = False
    numpy_name: Optional[str] = None
    identity_value: Optional[float] = None

    @property
    def num_operands(self) -> int:
        """Total operand count (output slot plus inputs)."""
        return self.num_inputs + (1 if self.has_output else 0)


def _info(**kwargs) -> OpCodeInfo:
    return OpCodeInfo(**kwargs)


OPCODE_INFO: Dict[OpCode, OpCodeInfo] = {
    OpCode.BH_IDENTITY: _info(
        opcode=OpCode.BH_IDENTITY, num_inputs=1, elementwise=True, numpy_name="copyto"
    ),
    # Binary arithmetic
    OpCode.BH_ADD: _info(
        opcode=OpCode.BH_ADD,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        associative=True,
        numpy_name="add",
        identity_value=0,
    ),
    OpCode.BH_SUBTRACT: _info(
        opcode=OpCode.BH_SUBTRACT,
        num_inputs=2,
        elementwise=True,
        numpy_name="subtract",
        identity_value=0,
    ),
    OpCode.BH_MULTIPLY: _info(
        opcode=OpCode.BH_MULTIPLY,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        associative=True,
        numpy_name="multiply",
        identity_value=1,
    ),
    OpCode.BH_DIVIDE: _info(
        opcode=OpCode.BH_DIVIDE,
        num_inputs=2,
        elementwise=True,
        numpy_name="divide",
        identity_value=1,
    ),
    OpCode.BH_POWER: _info(
        opcode=OpCode.BH_POWER, num_inputs=2, elementwise=True, numpy_name="power"
    ),
    OpCode.BH_MOD: _info(opcode=OpCode.BH_MOD, num_inputs=2, elementwise=True, numpy_name="mod"),
    OpCode.BH_NEGATIVE: _info(
        opcode=OpCode.BH_NEGATIVE, num_inputs=1, elementwise=True, numpy_name="negative"
    ),
    OpCode.BH_ABSOLUTE: _info(
        opcode=OpCode.BH_ABSOLUTE, num_inputs=1, elementwise=True, numpy_name="absolute"
    ),
    OpCode.BH_RECIPROCAL: _info(
        opcode=OpCode.BH_RECIPROCAL, num_inputs=1, elementwise=True, numpy_name="reciprocal"
    ),
    # Transcendental
    OpCode.BH_SQRT: _info(
        opcode=OpCode.BH_SQRT, num_inputs=1, elementwise=True, numpy_name="sqrt"
    ),
    OpCode.BH_EXP: _info(opcode=OpCode.BH_EXP, num_inputs=1, elementwise=True, numpy_name="exp"),
    OpCode.BH_LOG: _info(opcode=OpCode.BH_LOG, num_inputs=1, elementwise=True, numpy_name="log"),
    OpCode.BH_SIN: _info(opcode=OpCode.BH_SIN, num_inputs=1, elementwise=True, numpy_name="sin"),
    OpCode.BH_COS: _info(opcode=OpCode.BH_COS, num_inputs=1, elementwise=True, numpy_name="cos"),
    OpCode.BH_TAN: _info(opcode=OpCode.BH_TAN, num_inputs=1, elementwise=True, numpy_name="tan"),
    OpCode.BH_ARCSIN: _info(
        opcode=OpCode.BH_ARCSIN, num_inputs=1, elementwise=True, numpy_name="arcsin"
    ),
    OpCode.BH_ARCCOS: _info(
        opcode=OpCode.BH_ARCCOS, num_inputs=1, elementwise=True, numpy_name="arccos"
    ),
    OpCode.BH_ARCTAN: _info(
        opcode=OpCode.BH_ARCTAN, num_inputs=1, elementwise=True, numpy_name="arctan"
    ),
    OpCode.BH_ERF: _info(opcode=OpCode.BH_ERF, num_inputs=1, elementwise=True, numpy_name=None),
    # Extrema / comparison / logical
    OpCode.BH_MAXIMUM: _info(
        opcode=OpCode.BH_MAXIMUM,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        associative=True,
        numpy_name="maximum",
    ),
    OpCode.BH_MINIMUM: _info(
        opcode=OpCode.BH_MINIMUM,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        associative=True,
        numpy_name="minimum",
    ),
    OpCode.BH_GREATER: _info(
        opcode=OpCode.BH_GREATER, num_inputs=2, elementwise=True, numpy_name="greater"
    ),
    OpCode.BH_GREATER_EQUAL: _info(
        opcode=OpCode.BH_GREATER_EQUAL,
        num_inputs=2,
        elementwise=True,
        numpy_name="greater_equal",
    ),
    OpCode.BH_LESS: _info(
        opcode=OpCode.BH_LESS, num_inputs=2, elementwise=True, numpy_name="less"
    ),
    OpCode.BH_LESS_EQUAL: _info(
        opcode=OpCode.BH_LESS_EQUAL, num_inputs=2, elementwise=True, numpy_name="less_equal"
    ),
    OpCode.BH_EQUAL: _info(
        opcode=OpCode.BH_EQUAL, num_inputs=2, elementwise=True, commutative=True, numpy_name="equal"
    ),
    OpCode.BH_NOT_EQUAL: _info(
        opcode=OpCode.BH_NOT_EQUAL,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        numpy_name="not_equal",
    ),
    OpCode.BH_LOGICAL_AND: _info(
        opcode=OpCode.BH_LOGICAL_AND,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        associative=True,
        numpy_name="logical_and",
    ),
    OpCode.BH_LOGICAL_OR: _info(
        opcode=OpCode.BH_LOGICAL_OR,
        num_inputs=2,
        elementwise=True,
        commutative=True,
        associative=True,
        numpy_name="logical_or",
    ),
    OpCode.BH_LOGICAL_NOT: _info(
        opcode=OpCode.BH_LOGICAL_NOT, num_inputs=1, elementwise=True, numpy_name="logical_not"
    ),
    # Reductions
    OpCode.BH_ADD_REDUCE: _info(
        opcode=OpCode.BH_ADD_REDUCE, num_inputs=2, reduction=True, numpy_name="add"
    ),
    OpCode.BH_MULTIPLY_REDUCE: _info(
        opcode=OpCode.BH_MULTIPLY_REDUCE, num_inputs=2, reduction=True, numpy_name="multiply"
    ),
    OpCode.BH_MAXIMUM_REDUCE: _info(
        opcode=OpCode.BH_MAXIMUM_REDUCE, num_inputs=2, reduction=True, numpy_name="maximum"
    ),
    OpCode.BH_MINIMUM_REDUCE: _info(
        opcode=OpCode.BH_MINIMUM_REDUCE, num_inputs=2, reduction=True, numpy_name="minimum"
    ),
    # Generators
    OpCode.BH_RANGE: _info(opcode=OpCode.BH_RANGE, num_inputs=0, elementwise=False),
    OpCode.BH_RANDOM: _info(opcode=OpCode.BH_RANDOM, num_inputs=1, elementwise=False),
    # Extension methods
    OpCode.BH_MATMUL: _info(opcode=OpCode.BH_MATMUL, num_inputs=2, extension=True),
    OpCode.BH_MATRIX_INVERSE: _info(
        opcode=OpCode.BH_MATRIX_INVERSE, num_inputs=1, extension=True
    ),
    OpCode.BH_LU: _info(opcode=OpCode.BH_LU, num_inputs=1, extension=True),
    OpCode.BH_LU_SOLVE: _info(opcode=OpCode.BH_LU_SOLVE, num_inputs=2, extension=True),
    OpCode.BH_TRANSPOSE: _info(opcode=OpCode.BH_TRANSPOSE, num_inputs=1, extension=True),
    # Fused kernel
    OpCode.BH_FUSED: _info(opcode=OpCode.BH_FUSED, num_inputs=0, has_output=False),
    # System
    OpCode.BH_SYNC: _info(
        opcode=OpCode.BH_SYNC, num_inputs=0, has_output=True, system=True
    ),
    OpCode.BH_FREE: _info(
        opcode=OpCode.BH_FREE, num_inputs=0, has_output=True, system=True
    ),
    OpCode.BH_NONE: _info(
        opcode=OpCode.BH_NONE, num_inputs=0, has_output=False, system=True
    ),
}


def opcode_info(opcode: OpCode) -> OpCodeInfo:
    """Return the :class:`OpCodeInfo` metadata record for ``opcode``."""
    return OPCODE_INFO[opcode]


def opcode_from_name(name: str) -> OpCode:
    """Look up an op-code from its ``BH_*`` string name."""
    try:
        return OpCode(name)
    except ValueError:
        raise KeyError(f"unknown op-code name: {name!r}") from None


# Binary element-wise op-codes with an algebraic identity; these are the
# candidates for constant merging and identity simplification.
MERGEABLE_OPCODES = (
    OpCode.BH_ADD,
    OpCode.BH_SUBTRACT,
    OpCode.BH_MULTIPLY,
    OpCode.BH_DIVIDE,
)

# Reduction op-code -> the element-wise op-code it folds with.
REDUCE_TO_ELEMENTWISE = {
    OpCode.BH_ADD_REDUCE: OpCode.BH_ADD,
    OpCode.BH_MULTIPLY_REDUCE: OpCode.BH_MULTIPLY,
    OpCode.BH_MAXIMUM_REDUCE: OpCode.BH_MAXIMUM,
    OpCode.BH_MINIMUM_REDUCE: OpCode.BH_MINIMUM,
}
