"""Instruction operands: views or scalar constants."""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.bytecode import dtypes
from repro.bytecode.dtypes import DType
from repro.bytecode.view import View


class Constant:
    """A scalar literal operand.

    Constants appear only in input positions; the validator rejects programs
    with a constant in an output slot.  Equality is value + dtype equality so
    that the constant-merge pass can compare and combine them.
    """

    __slots__ = ("value", "dtype")

    def __init__(self, value, dtype: DType = None) -> None:
        if isinstance(value, Constant):
            value, dtype = value.value, dtype or value.dtype
        if dtype is None:
            dtype = dtypes.from_python(value)
        if dtype.is_bool:
            value = bool(value)
        elif dtype.is_integer:
            value = int(value)
        else:
            value = float(value)
        self.value = value
        self.dtype = dtype

    def as_numpy(self):
        """Return the constant as a NumPy scalar of its dtype."""
        return self.dtype.np_dtype.type(self.value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Constant):
            return self.value == other.value and self.dtype == other.dtype
        if isinstance(other, (bool, int, float, np.generic)):
            return self.value == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.dtype.name))

    def __repr__(self) -> str:
        return f"Constant({self.value!r}, {self.dtype.name})"


Operand = Union[View, Constant]


def is_constant(operand: Operand) -> bool:
    """True when ``operand`` is a scalar constant."""
    return isinstance(operand, Constant)


def is_view(operand: Operand) -> bool:
    """True when ``operand`` is a view over a base array."""
    return isinstance(operand, View)


def as_operand(value) -> Operand:
    """Coerce a Python scalar, Constant or View into an operand."""
    if isinstance(value, (View, Constant)):
        return value
    if isinstance(value, (bool, int, float, np.generic)):
        return Constant(value)
    raise TypeError(f"cannot use {type(value)!r} as an instruction operand")


def operand_dtype(operand: Operand) -> DType:
    """Return the element type of any operand."""
    return operand.dtype
