"""Parser for the textual byte-code format produced by the printer.

The grammar is line-oriented::

    line      := opcode operand* comment?
    opcode    := "BH_" NAME
    operand   := view | constant | register
    view      := register "[" start ":" stop ":" step "]"
               | register "[" offset ";" shape ";" strides "]"
    register  := NAME
    constant  := integer | float | "true" | "false"
    comment   := "#" anything

Bare register names (the abbreviated listings of the paper) are interpreted
as the full contiguous view over that register.  Register sizes are inferred
from the largest view extent seen anywhere in the text, or from
``default_nelem`` when a register is only ever used bare.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import DType, float64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode, opcode_from_name
from repro.bytecode.operand import Constant
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.utils.errors import ParseError

_SLICE_VIEW_RE = re.compile(r"^(?P<name>[A-Za-z_]\w*)\[(?P<start>\d+):(?P<stop>\d+):(?P<step>\d+)\]$")
_GENERAL_VIEW_RE = re.compile(
    r"^(?P<name>[A-Za-z_]\w*)\[(?P<offset>\d+);(?P<shape>[\d,]+);(?P<strides>[-\d,]+)\]$"
)
_REGISTER_RE = re.compile(r"^[A-Za-z_]\w*$")
_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")


def _strip_comment(line: str) -> str:
    hash_index = line.find("#")
    if hash_index >= 0:
        return line[:hash_index]
    return line


def _tokenize(line: str) -> List[str]:
    return line.split()


class _RegisterTable:
    """Tracks register names and the extents required of each base array."""

    def __init__(self, dtype: DType, default_nelem: int) -> None:
        self.dtype = dtype
        self.default_nelem = default_nelem
        self.required_nelem: Dict[str, int] = {}
        self.bases: Dict[str, BaseArray] = {}

    def require(self, name: str, nelem: int) -> None:
        current = self.required_nelem.get(name, 0)
        self.required_nelem[name] = max(current, nelem)

    def base_for(self, name: str) -> BaseArray:
        if name not in self.bases:
            nelem = self.required_nelem.get(name, 0) or self.default_nelem
            self.bases[name] = BaseArray(nelem, self.dtype, name=name)
        return self.bases[name]


def _scan_extents(lines: Sequence[str], table: _RegisterTable) -> None:
    """First pass: record the largest element index needed per register."""
    for line in lines:
        for token in _tokenize(_strip_comment(line)):
            match = _SLICE_VIEW_RE.match(token)
            if match:
                stop = int(match.group("stop"))
                table.require(match.group("name"), stop)
                continue
            match = _GENERAL_VIEW_RE.match(token)
            if match:
                offset = int(match.group("offset"))
                shape = [int(v) for v in match.group("shape").split(",") if v]
                strides = [int(v) for v in match.group("strides").split(",") if v]
                extent = offset + 1
                for dim, stride in zip(shape, strides):
                    if dim > 0:
                        extent += (dim - 1) * abs(stride)
                table.require(match.group("name"), extent)


def _parse_operand(token: str, table: _RegisterTable):
    match = _SLICE_VIEW_RE.match(token)
    if match:
        base = table.base_for(match.group("name"))
        return View.from_slice(
            base, int(match.group("start")), int(match.group("stop")), int(match.group("step"))
        )
    match = _GENERAL_VIEW_RE.match(token)
    if match:
        base = table.base_for(match.group("name"))
        shape = tuple(int(v) for v in match.group("shape").split(",") if v)
        strides = tuple(int(v) for v in match.group("strides").split(",") if v)
        return View(base, int(match.group("offset")), shape, strides)
    if token == "true":
        return Constant(True)
    if token == "false":
        return Constant(False)
    if _INT_RE.match(token):
        return Constant(int(token))
    if _FLOAT_RE.match(token):
        return Constant(float(token))
    if token.startswith("BH_"):
        raise ParseError(f"unexpected op-code {token!r} in operand position")
    if _REGISTER_RE.match(token):
        base = table.base_for(token)
        return View.full(base)
    raise ParseError(f"cannot parse operand {token!r}")


def parse_instruction(
    line: str,
    registers: Optional[Dict[str, BaseArray]] = None,
    dtype: DType = float64,
    default_nelem: int = 1,
) -> Instruction:
    """Parse a single instruction line.

    ``registers`` may carry pre-existing base arrays keyed by name; parsed
    registers are added to it so successive calls share bases.
    """
    table = _RegisterTable(dtype, default_nelem)
    if registers:
        table.bases.update(registers)
    _scan_extents([line], table)
    instruction = _parse_line(line, table)
    if instruction is None:
        raise ParseError(f"line is empty or a comment: {line!r}")
    if registers is not None:
        registers.update(table.bases)
    return instruction


def _parse_line(line: str, table: _RegisterTable) -> Optional[Instruction]:
    stripped = _strip_comment(line).strip()
    if not stripped:
        return None
    tokens = _tokenize(stripped)
    opcode_name = tokens[0]
    try:
        opcode = opcode_from_name(opcode_name)
    except KeyError as exc:
        raise ParseError(str(exc)) from None
    operands = [_parse_operand(token, table) for token in tokens[1:]]
    return Instruction(opcode, operands)


def parse_program(
    text: str,
    dtype: DType = float64,
    default_nelem: int = 1,
    registers: Optional[Dict[str, BaseArray]] = None,
) -> Program:
    """Parse a multi-line byte-code listing into a :class:`Program`.

    Parameters
    ----------
    text:
        The listing text.  Blank lines and ``#`` comments are ignored.
    dtype:
        Element type given to every register created by the parser.
    default_nelem:
        Size used for registers that never appear with an explicit view.
    registers:
        Optional pre-populated register table (name -> BaseArray); also used
        to return the registers created while parsing.
    """
    lines = text.splitlines()
    table = _RegisterTable(dtype, default_nelem)
    if registers:
        table.bases.update(registers)
    _scan_extents(lines, table)
    program = Program()
    for line_number, line in enumerate(lines, start=1):
        try:
            instruction = _parse_line(line, table)
        except ParseError as exc:
            raise ParseError(f"line {line_number}: {exc}") from None
        if instruction is not None:
            program.append(instruction)
    if registers is not None:
        registers.update(table.bases)
    return program
