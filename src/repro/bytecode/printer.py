"""Textual rendering of byte-code, matching the paper's listing syntax.

Example output (Listing 2 of the paper)::

    BH_IDENTITY a0[0:10:1] 0
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_SYNC a0[0:10:1]

Contiguous 1-D views are printed in the ``name[start:stop:step]`` form; other
views fall back to an explicit ``name[offset;shape;strides]`` form that the
parser also understands.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.bytecode.instruction import Instruction
from repro.bytecode.operand import Constant, Operand, is_constant, is_view
from repro.bytecode.view import View


def format_view(view: View) -> str:
    """Render a view operand."""
    if view.ndim == 1:
        start = view.offset
        step = view.strides[0] if view.strides else 1
        if step > 0:
            stop = start + view.shape[0] * step
            return f"{view.base.name}[{start}:{stop}:{step}]"
    shape = ",".join(str(dim) for dim in view.shape)
    strides = ",".join(str(stride) for stride in view.strides)
    return f"{view.base.name}[{view.offset};{shape};{strides}]"


def format_constant(constant: Constant) -> str:
    """Render a constant operand."""
    value = constant.value
    if constant.dtype.is_bool:
        return "true" if value else "false"
    if constant.dtype.is_integer:
        return str(int(value))
    text = repr(float(value))
    return text


def format_operand(operand: Operand) -> str:
    """Render any operand (view or constant)."""
    if is_view(operand):
        return format_view(operand)
    if is_constant(operand):
        return format_constant(operand)
    raise TypeError(f"cannot format operand of type {type(operand)!r}")


def format_instruction(instruction: Instruction, include_views: bool = True) -> str:
    """Render a single instruction on one line.

    When ``include_views`` is false, view operands are printed as their bare
    register names, matching the abbreviated listings later in the paper
    ("I assume the view is the same for all registers").
    """
    parts: List[str] = [instruction.opcode.value]
    for operand in instruction.operands:
        if is_view(operand) and not include_views:
            parts.append(operand.base.name)
        else:
            parts.append(format_operand(operand))
    line = " ".join(parts)
    if instruction.kernel is not None:
        inner = "; ".join(
            format_instruction(inner_instr, include_views=include_views)
            for inner_instr in instruction.kernel
        )
        line = f"{line} {{ {inner} }}".strip()
    if instruction.tag:
        line = f"{line}  # {instruction.tag}"
    return line


def format_program(program: Iterable[Instruction], include_views: bool = True) -> str:
    """Render a whole program, one instruction per line."""
    return "\n".join(format_instruction(instr, include_views=include_views) for instr in program)
