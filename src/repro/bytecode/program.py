"""Programs: ordered sequences of byte-code instructions.

A :class:`Program` is the unit that the optimizer transforms and that the
backends execute.  It is a thin, list-like container with helpers the passes
need repeatedly: op-code histograms, the set of base arrays involved, work
estimates, and structural equality.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode


class Program:
    """An ordered sequence of :class:`Instruction` objects.

    Programs are mutable (passes replace their instruction list) but the
    instructions themselves are treated as immutable values.
    """

    def __init__(self, instructions: Optional[Iterable[Instruction]] = None) -> None:
        self._instructions: List[Instruction] = list(instructions or [])
        for instr in self._instructions:
            if not isinstance(instr, Instruction):
                raise TypeError(f"expected Instruction, got {type(instr)!r}")

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __getitem__(self, index):
        result = self._instructions[index]
        if isinstance(index, slice):
            return Program(result)
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return self._instructions == other._instructions

    def __repr__(self) -> str:
        return f"Program({len(self._instructions)} instructions)"

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #

    def append(self, instruction: Instruction) -> None:
        """Append one instruction at the end of the program."""
        if not isinstance(instruction, Instruction):
            raise TypeError(f"expected Instruction, got {type(instruction)!r}")
        self._instructions.append(instruction)

    def extend(self, instructions: Iterable[Instruction]) -> None:
        """Append several instructions at the end of the program."""
        for instruction in instructions:
            self.append(instruction)

    def replace_instructions(self, instructions: Iterable[Instruction]) -> None:
        """Replace the whole instruction list (used by passes)."""
        new_list = list(instructions)
        for instr in new_list:
            if not isinstance(instr, Instruction):
                raise TypeError(f"expected Instruction, got {type(instr)!r}")
        self._instructions = new_list

    def copy(self) -> "Program":
        """Return a shallow copy (instructions are shared, list is new)."""
        return Program(self._instructions)

    # ------------------------------------------------------------------ #
    # Introspection used by passes, cost model and tests
    # ------------------------------------------------------------------ #

    @property
    def instructions(self) -> Tuple[Instruction, ...]:
        """The instructions as an immutable tuple."""
        return tuple(self._instructions)

    def opcode_histogram(self) -> Dict[OpCode, int]:
        """Count instructions per op-code (fused payloads are not expanded)."""
        return dict(Counter(instr.opcode for instr in self._instructions))

    def count(self, opcode: OpCode, include_fused: bool = True) -> int:
        """Number of instructions with ``opcode``.

        When ``include_fused`` is true, instructions folded inside
        ``BH_FUSED`` kernels are counted as well.
        """
        total = 0
        for instr in self._instructions:
            if instr.opcode is opcode:
                total += 1
            if include_fused and instr.kernel is not None:
                total += sum(1 for inner in instr.kernel if inner.opcode is opcode)
        return total

    def num_operations(self) -> int:
        """Number of non-system instructions (the "real work" count)."""
        return sum(1 for instr in self._instructions if not instr.is_system())

    def num_kernels(self) -> int:
        """Number of kernel launches a naive backend would perform.

        Every non-system top-level instruction is one launch; a fused
        instruction counts as a single launch regardless of payload size.
        """
        return self.num_operations()

    def element_traversals(self) -> int:
        """Total elements touched by all non-system instructions.

        This is the simple memory-traffic proxy the paper's motivation uses:
        every byte-code traverses its output view once per operand.
        """
        total = 0
        for instr in self._instructions:
            if instr.is_system():
                continue
            for view in instr.views():
                total += view.nelem
        return total

    def bases(self) -> Tuple[BaseArray, ...]:
        """All distinct base arrays referenced, in first-use order."""
        seen: List[BaseArray] = []
        seen_ids = set()
        for instr in self._instructions:
            for view in instr.views():
                if id(view.base) not in seen_ids:
                    seen_ids.add(id(view.base))
                    seen.append(view.base)
        return tuple(seen)

    def synced_views(self):
        """Views that are the target of a ``BH_SYNC`` (the program outputs)."""
        result = []
        for instr in self._instructions:
            if instr.opcode is OpCode.BH_SYNC:
                result.extend(op for op in instr.operands)
        return tuple(result)

    def without_system(self) -> "Program":
        """A copy of the program with system instructions removed."""
        return Program(instr for instr in self._instructions if not instr.is_system())

    def flattened(self) -> "Program":
        """A copy with every fused kernel expanded back to its payload."""
        result: List[Instruction] = []
        for instr in self._instructions:
            if instr.kernel is not None:
                result.extend(instr.kernel)
            else:
                result.append(instr)
        return Program(result)

    def index_of(self, instruction: Instruction) -> int:
        """Position of ``instruction`` (by identity, falling back to equality)."""
        for index, candidate in enumerate(self._instructions):
            if candidate is instruction:
                return index
        return self._instructions.index(instruction)

    def to_text(self) -> str:
        """Render the program in the paper's textual listing format."""
        from repro.bytecode.printer import format_program

        return format_program(self)
