"""Structural validation of instructions and programs.

Validation is purely static: it checks operand counts, operand kinds and
shape compatibility, not runtime values.  The optimizer validates the
program it is given and the program it produces, so a broken rewrite fails
fast with a :class:`~repro.utils.errors.ValidationError` instead of
producing silently wrong results.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import is_constant, is_view
from repro.bytecode.program import Program
from repro.utils.errors import ValidationError


def broadcast_shapes(left: Sequence[int], right: Sequence[int]) -> Tuple[int, ...]:
    """NumPy-style broadcast of two shapes.

    Raises :class:`ValidationError` when the shapes are incompatible.
    """
    result = []
    left_rev = list(reversed(tuple(left)))
    right_rev = list(reversed(tuple(right)))
    for dims in (left_rev, right_rev):
        if any(dim < 0 for dim in dims):
            raise ValidationError(
                f"shapes {tuple(left)} and {tuple(right)} contain a negative dimension"
            )
    for axis in range(max(len(left_rev), len(right_rev))):
        dim_left = left_rev[axis] if axis < len(left_rev) else 1
        dim_right = right_rev[axis] if axis < len(right_rev) else 1
        # NumPy semantics: a dimension of 1 stretches to the other side's
        # size — including 0.  ``max(dim_left, dim_right)`` would turn
        # (0,) broadcast (1,) into 1 and silently grow an empty array.
        if dim_left == dim_right:
            result.append(dim_left)
        elif dim_left == 1:
            result.append(dim_right)
        elif dim_right == 1:
            result.append(dim_left)
        else:
            raise ValidationError(
                f"shapes {tuple(left)} and {tuple(right)} are not broadcast-compatible"
            )
    return tuple(reversed(result))


def _validate_elementwise(instruction: Instruction) -> None:
    out = instruction.out
    if out is None:
        raise ValidationError(f"{instruction.opcode} requires a view output")
    broadcast = out.shape
    for operand in instruction.inputs:
        if is_view(operand):
            broadcast = broadcast_shapes(broadcast, operand.shape)
    if tuple(broadcast) != tuple(out.shape):
        raise ValidationError(
            f"{instruction.opcode}: inputs broadcast to {broadcast} "
            f"but output shape is {out.shape}"
        )


def _validate_reduction(instruction: Instruction) -> None:
    out = instruction.out
    if out is None:
        raise ValidationError(f"{instruction.opcode} requires a view output")
    inputs = instruction.inputs
    if len(inputs) != 2:
        raise ValidationError(f"{instruction.opcode} expects an input view and an axis constant")
    source, axis = inputs
    if not is_view(source):
        raise ValidationError(f"{instruction.opcode}: first input must be a view")
    if not is_constant(axis) or not axis.dtype.is_integer:
        raise ValidationError(f"{instruction.opcode}: axis must be an integer constant")
    axis_value = int(axis.value)
    if axis_value < 0 or axis_value >= source.ndim:
        raise ValidationError(
            f"{instruction.opcode}: axis {axis_value} out of range for rank {source.ndim}"
        )
    expected = tuple(dim for index, dim in enumerate(source.shape) if index != axis_value)
    if expected == ():
        expected = (1,)
    if tuple(out.shape) != expected:
        raise ValidationError(
            f"{instruction.opcode}: reducing axis {axis_value} of {source.shape} "
            f"yields {expected}, output has {out.shape}"
        )


def _validate_extension(instruction: Instruction) -> None:
    out = instruction.out
    if out is None:
        raise ValidationError(f"{instruction.opcode} requires a view output")
    views = instruction.input_views
    if instruction.opcode is OpCode.BH_MATMUL:
        if len(views) != 2:
            raise ValidationError("BH_MATMUL requires two view inputs")
        a, b = views
        if a.ndim != 2 or b.ndim not in (1, 2):
            raise ValidationError("BH_MATMUL expects a matrix and a matrix/vector")
        if a.shape[1] != b.shape[0]:
            raise ValidationError(
                f"BH_MATMUL inner dimensions disagree: {a.shape} @ {b.shape}"
            )
    elif instruction.opcode is OpCode.BH_MATRIX_INVERSE:
        if len(views) != 1 or views[0].ndim != 2 or views[0].shape[0] != views[0].shape[1]:
            raise ValidationError("BH_MATRIX_INVERSE expects one square matrix view")
    elif instruction.opcode is OpCode.BH_LU:
        if len(views) != 1 or views[0].ndim != 2 or views[0].shape[0] != views[0].shape[1]:
            raise ValidationError("BH_LU expects one square matrix view")
    elif instruction.opcode is OpCode.BH_LU_SOLVE:
        if len(views) != 2:
            raise ValidationError("BH_LU_SOLVE requires a matrix view and a right-hand side view")
        a, b = views
        if a.ndim != 2 or a.shape[0] != a.shape[1]:
            raise ValidationError("BH_LU_SOLVE expects a square matrix as first input")
        if b.shape[0] != a.shape[0]:
            raise ValidationError(
                f"BH_LU_SOLVE right-hand side has {b.shape[0]} rows, matrix has {a.shape[0]}"
            )
    elif instruction.opcode is OpCode.BH_TRANSPOSE:
        if len(views) != 1 or views[0].ndim != 2:
            raise ValidationError("BH_TRANSPOSE expects one matrix view")


def validate_instruction(instruction: Instruction) -> None:
    """Validate one instruction; raises :class:`ValidationError` on problems."""
    info = instruction.info
    if info.has_output:
        if not instruction.operands:
            raise ValidationError(f"{instruction.opcode} is missing its output operand")
        if not is_view(instruction.operands[0]):
            raise ValidationError(
                f"{instruction.opcode}: output operand must be a view, "
                f"got {type(instruction.operands[0]).__name__}"
            )
    if instruction.opcode is OpCode.BH_FUSED:
        if instruction.kernel is None or len(instruction.kernel) == 0:
            raise ValidationError("BH_FUSED requires a non-empty kernel payload")
        for inner in instruction.kernel:
            if not inner.is_elementwise():
                raise ValidationError(
                    f"BH_FUSED payload may only contain element-wise instructions, "
                    f"found {inner.opcode}"
                )
            validate_instruction(inner)
        return
    if info.system:
        if info.has_output and len(instruction.operands) != 1:
            raise ValidationError(f"{instruction.opcode} takes exactly one view operand")
        return
    expected = info.num_operands
    if len(instruction.operands) != expected:
        raise ValidationError(
            f"{instruction.opcode} expects {expected} operands, got {len(instruction.operands)}"
        )
    if info.elementwise:
        _validate_elementwise(instruction)
    elif info.reduction:
        _validate_reduction(instruction)
    elif info.extension:
        _validate_extension(instruction)
    elif instruction.opcode is OpCode.BH_RANDOM:
        if not instruction.constants:
            raise ValidationError("BH_RANDOM requires a seed constant")


def validate_program(program: Program) -> None:
    """Validate every instruction of ``program`` plus cross-instruction rules.

    Cross-instruction checks: no instruction may read or write a base after
    it has been freed with ``BH_FREE``.
    """
    freed = set()
    for position, instruction in enumerate(program):
        try:
            validate_instruction(instruction)
        except ValidationError as exc:
            raise ValidationError(f"instruction {position}: {exc}") from None
        touched = {id(view.base): view.base for view in instruction.views()}
        used_after_free = sorted(
            base.name for base_id, base in touched.items() if base_id in freed
        )
        if used_after_free:
            raise ValidationError(
                f"instruction {position} ({instruction.opcode}) uses base "
                f"array(s) {', '.join(repr(name) for name in used_after_free)} "
                f"after BH_FREE"
            )
        if instruction.opcode is OpCode.BH_FREE:
            for operand in instruction.operands:
                if is_view(operand):
                    freed.add(id(operand.base))
