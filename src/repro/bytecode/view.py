"""Views: offset/shape/stride windows onto base arrays.

The paper writes views as ``a0[0:10:1]`` — a start, stop and step over the
base allocation.  Internally Bohrium views are n-dimensional: an element
offset into the base plus a shape and per-dimension strides (in elements).
We implement the n-dimensional form and print the 1-D slice notation for
contiguous vector views to match the listings.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import DType


def _as_tuple(values: Iterable[int]) -> Tuple[int, ...]:
    return tuple(int(v) for v in values)


def contiguous_strides(shape: Sequence[int]) -> Tuple[int, ...]:
    """Return C-contiguous (row-major) strides, in elements, for ``shape``."""
    strides = []
    acc = 1
    for dim in reversed(tuple(shape)):
        strides.append(acc)
        acc *= int(dim)
    return tuple(reversed(strides))


class View:
    """A strided window over a :class:`BaseArray`.

    Parameters
    ----------
    base:
        The base array this view reads from / writes to.
    offset:
        Element offset of the view's first element within the base.
    shape:
        Extent of the view in each dimension.
    strides:
        Stride, in *elements*, for each dimension.  Defaults to C-contiguous
        strides for ``shape``.

    Notes
    -----
    Views are immutable value objects: equality compares base identity,
    offset, shape and strides.  This is exactly the "same view" notion the
    transformations need (two byte-codes writing ``a0[0:10:1]`` touch the
    same elements).
    """

    __slots__ = ("base", "offset", "shape", "strides")

    def __init__(
        self,
        base: BaseArray,
        offset: int = 0,
        shape: Optional[Sequence[int]] = None,
        strides: Optional[Sequence[int]] = None,
    ) -> None:
        if not isinstance(base, BaseArray):
            raise TypeError(f"base must be a BaseArray, got {type(base)!r}")
        self.base = base
        self.offset = int(offset)
        if shape is None:
            shape = (base.nelem,)
        self.shape = _as_tuple(shape)
        if any(dim < 0 for dim in self.shape):
            raise ValueError(f"negative dimension in shape {self.shape}")
        if strides is None:
            strides = contiguous_strides(self.shape)
        self.strides = _as_tuple(strides)
        if len(self.strides) != len(self.shape):
            raise ValueError(
                f"strides {self.strides} and shape {self.shape} have different ranks"
            )
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.nelem > 0:
            if self._min_index() < 0:
                raise ValueError(
                    f"view extends before its base: min element index {self._min_index()} < 0"
                )
            if self._max_index() >= base.nelem:
                raise ValueError(
                    f"view extends beyond its base: max element index {self._max_index()} "
                    f">= base nelem {base.nelem}"
                )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def full(cls, base: BaseArray, shape: Optional[Sequence[int]] = None) -> "View":
        """A contiguous view covering the whole base, optionally reshaped."""
        if shape is None:
            shape = (base.nelem,)
        nelem = 1
        for dim in shape:
            nelem *= int(dim)
        if nelem != base.nelem:
            raise ValueError(
                f"shape {tuple(shape)} has {nelem} elements, base has {base.nelem}"
            )
        return cls(base, 0, shape)

    @classmethod
    def from_slice(cls, base: BaseArray, start: int, stop: int, step: int = 1) -> "View":
        """Build the 1-D ``base[start:stop:step]`` view used in the listings."""
        if step <= 0:
            raise ValueError("step must be positive")
        if start < 0 or stop < start:
            raise ValueError(f"invalid slice [{start}:{stop}:{step}]")
        length = max(0, (stop - start + step - 1) // step)
        return cls(base, start, (length,), (step,))

    # ------------------------------------------------------------------ #
    # Geometry
    # ------------------------------------------------------------------ #

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def nelem(self) -> int:
        """Number of elements addressed by the view."""
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def dtype(self) -> DType:
        """The element type, inherited from the base."""
        return self.base.dtype

    @property
    def nbytes(self) -> int:
        """Bytes addressed by the view (elements times item size)."""
        return self.nelem * self.base.dtype.itemsize

    def is_contiguous(self) -> bool:
        """True when the view is C-contiguous over its shape."""
        return self.strides == contiguous_strides(self.shape)

    def covers_base(self) -> bool:
        """True when the view addresses every element of its base exactly once."""
        return self.offset == 0 and self.is_contiguous() and self.nelem == self.base.nelem

    def _max_index(self) -> int:
        """Largest element index into the base touched by this view.

        Negative strides walk *down* from the offset, so only positive
        strides advance the maximum.
        """
        index = self.offset
        for dim, stride in zip(self.shape, self.strides):
            if dim > 0 and stride > 0:
                index += (dim - 1) * stride
        return index

    def _min_index(self) -> int:
        """Smallest element index into the base touched by this view."""
        index = self.offset
        for dim, stride in zip(self.shape, self.strides):
            if dim > 0 and stride < 0:
                index += (dim - 1) * stride
        return index

    def element_indices(self) -> Tuple[int, ...]:
        """All base element indices touched, in view order.

        Only intended for small views (tests and overlap analysis); the
        runtime never materializes this for large arrays.
        """
        if self.nelem == 0:
            return ()
        return tuple(self._indices_recursive(0, self.offset))

    def _indices_recursive(self, axis: int, base_offset: int):
        if axis == self.ndim:
            yield base_offset
            return
        for i in range(self.shape[axis]):
            yield from self._indices_recursive(axis + 1, base_offset + i * self.strides[axis])

    # ------------------------------------------------------------------ #
    # Relations between views
    # ------------------------------------------------------------------ #

    def same_view(self, other: "View") -> bool:
        """True when both views address the same elements in the same order."""
        return (
            self.base is other.base
            and self.offset == other.offset
            and self.shape == other.shape
            and self.strides == other.strides
        )

    def same_base(self, other: "View") -> bool:
        """True when both views are windows over the same base array."""
        return self.base is other.base

    def overlaps(self, other: "View") -> bool:
        """Conservative overlap test between two views.

        Returns ``False`` only when the views provably touch disjoint
        elements.  Views on different bases never overlap.  For views on the
        same base we first compare bounding index ranges; if those intersect
        and either view is small we fall back to exact element-set
        intersection, otherwise we conservatively report an overlap.
        """
        if self.base is not other.base:
            return False
        if self.nelem == 0 or other.nelem == 0:
            return False
        lo_a, hi_a = self._min_index(), self._max_index()
        lo_b, hi_b = other._min_index(), other._max_index()
        if hi_a < lo_b or hi_b < lo_a:
            return False
        exact_limit = 4096
        if self.nelem <= exact_limit and other.nelem <= exact_limit:
            return bool(set(self.element_indices()) & set(other.element_indices()))
        return True

    def reshape(self, shape: Sequence[int]) -> "View":
        """Return a contiguous view of the same base with a new shape.

        Only valid for contiguous views whose element count matches the new
        shape.
        """
        if not self.is_contiguous():
            raise ValueError("cannot reshape a non-contiguous view")
        nelem = 1
        for dim in shape:
            nelem *= int(dim)
        if nelem != self.nelem:
            raise ValueError(f"cannot reshape {self.nelem} elements to shape {tuple(shape)}")
        return View(self.base, self.offset, shape)

    # ------------------------------------------------------------------ #
    # Dunder protocol
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, View):
            return NotImplemented
        return self.same_view(other)

    def __hash__(self) -> int:
        return hash((id(self.base), self.offset, self.shape, self.strides))

    def __repr__(self) -> str:
        return (
            f"View(base={self.base.name}, offset={self.offset}, "
            f"shape={self.shape}, strides={self.strides})"
        )
