"""Static checking layer: machine-checked invariants for programs and plans.

Three analyzers, all purely static (no program is ever executed):

* :mod:`repro.checks.ircheck` — flow-sensitive program invariant checker
  run by the optimization pipeline *between passes* under the ``check_ir``
  config knob; a broken rewrite is rejected naming the offending pass and
  instruction instead of producing silently wrong results downstream.
* :mod:`repro.checks.plancheck` — independent soundness checks for
  plan-time artifacts (memory plan, fusion schedule, tiling decomposition)
  run by ``Backend.prepare_plan`` under the same knob, so a corrupted
  cached plan can never execute.
* :mod:`repro.checks.lockcheck` — an AST lint over ``src/repro/**`` that
  extracts static lock-acquisition nesting and fails on any edge pointing
  *upward* in the documented lock hierarchy, or on forbidden work (host
  allocation, compiler invocation, disk IO) under a leaf lock.  Runnable
  as ``python -m repro.checks.lockcheck`` and as a pytest.

The module-level :class:`CheckCounters` singleton aggregates how often the
runtime checkers actually fired; the engine snapshots it into
``cache_stats()`` and the CLI's ``--stats-json`` ``checks`` block so test
suites can assert non-vacuity (checks genuinely ran, not silently skipped).
"""

from __future__ import annotations

import threading
from typing import Dict


class CheckCounters:
    """Thread-safe counters for the runtime (ir/plan) checkers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.ir_checks_run = 0
        self.ir_check_failures = 0
        self.plan_checks_run = 0
        self.plan_check_failures = 0

    def note_ir_check(self, count: int = 1) -> None:
        with self._lock:
            self.ir_checks_run += count

    def note_ir_failure(self) -> None:
        with self._lock:
            self.ir_check_failures += 1

    def note_plan_check(self, count: int = 1) -> None:
        with self._lock:
            self.plan_checks_run += count

    def note_plan_failure(self) -> None:
        with self._lock:
            self.plan_check_failures += 1

    def snapshot(self) -> Dict[str, int]:
        """Point-in-time copy of all counters."""
        with self._lock:
            return {
                "ir_checks_run": self.ir_checks_run,
                "ir_check_failures": self.ir_check_failures,
                "plan_checks_run": self.plan_checks_run,
                "plan_check_failures": self.plan_check_failures,
            }

    def reset(self) -> None:
        """Zero all counters (test isolation)."""
        with self._lock:
            self.ir_checks_run = 0
            self.ir_check_failures = 0
            self.plan_checks_run = 0
            self.plan_check_failures = 0


#: Process-wide counters; reset by the test suite's ``clean_global_state``.
COUNTERS = CheckCounters()

__all__ = ["CheckCounters", "COUNTERS"]
