"""Flow-sensitive program invariant checker (the between-pass IR verifier).

The checker never interprets a program: it walks the byte-code list once,
tracking which regions of each base array have been written, and verifies
the flow-sensitive invariants every legal optimization preserves:

* every read of an in-program-defined (temporary) value is preceded by an
  overlapping write — a DCE mutation that drops a live store fails here;
* every ``BH_SYNC`` targets a base the program actually wrote (when the
  pass's input wrote it);
* no instruction touches a base after its ``BH_FREE`` (deferred frees must
  still come last);
* no base is freed twice;
* every view (including fused-kernel payload views) stays inside the
  bounds of its base;
* per-instruction structural validity (operand arity, dtype/shape
  agreement between def and use) via :func:`validate_instruction`.

The subtlety is that "temporary" is not decidable from a broken program
alone — an uninitialised read looks exactly like a legal read of a base
defined by an *earlier flush*.  The pipeline therefore hands the checker
:func:`reference_facts` computed from the pass's **input** program: any
base whose reads were all write-preceded before the pass must keep that
property after it.  Passes rewrite instructions but share the same
:class:`~repro.bytecode.base.BaseArray` objects, so bases are matched by
identity across the pass boundary.

Violations raise :class:`~repro.utils.errors.IRCheckError` carrying the
offending instruction index; the pipeline decorates it with the first
offending pass name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.validate import validate_instruction
from repro.bytecode.view import View
from repro.checks import COUNTERS
from repro.utils.errors import IRCheckError, ValidationError

__all__ = ["IRCheckError", "ProgramFacts", "reference_facts", "check_program"]


@dataclass
class _BaseFacts:
    """What one linear scan learned about a single base array."""

    base: BaseArray
    written: bool = False
    #: Every read had an earlier overlapping write (vacuously true with no
    #: reads).  This is the def-before-use property the checker defends.
    reads_satisfied: bool = True
    synced: bool = False
    free_count: int = 0


@dataclass
class ProgramFacts:
    """Per-base facts of a (trusted) reference program, keyed by ``id(base)``."""

    facts: Dict[int, _BaseFacts] = field(default_factory=dict)

    def get(self, base: BaseArray) -> Optional[_BaseFacts]:
        return self.facts.get(id(base))

    def synced_bases(self) -> Tuple[BaseArray, ...]:
        return tuple(f.base for f in self.facts.values() if f.synced)


@dataclass
class _Event:
    """One violation candidate found by the scan (gated against reference)."""

    kind: str  # "unsatisfied_read" | "use_after_free" | "double_free" | "sync_unwritten"
    index: int
    base: BaseArray


def _scan(program: Program) -> Tuple[ProgramFacts, List[_Event]]:
    """One linear walk: collect per-base facts and violation candidates.

    Fused kernels are walked in payload order, so a temporary written by an
    earlier payload instruction satisfies a later payload read at the same
    program index.
    """
    facts = ProgramFacts()
    events: List[_Event] = []
    written: Dict[int, List[View]] = {}
    freed: Dict[int, int] = {}

    def fact_of(base: BaseArray) -> _BaseFacts:
        entry = facts.facts.get(id(base))
        if entry is None:
            entry = _BaseFacts(base=base)
            facts.facts[id(base)] = entry
        return entry

    def note_read(view: View, index: int) -> None:
        entry = fact_of(view.base)
        if id(view.base) in freed:
            events.append(_Event("use_after_free", index, view.base))
        if view.nelem == 0:
            return
        for prior in written.get(id(view.base), ()):
            if prior.overlaps(view):
                return
        entry.reads_satisfied = False
        events.append(_Event("unsatisfied_read", index, view.base))

    def note_write(view: View, index: int) -> None:
        entry = fact_of(view.base)
        if id(view.base) in freed:
            events.append(_Event("use_after_free", index, view.base))
        entry.written = True
        written.setdefault(id(view.base), []).append(view)

    for index, instruction in enumerate(program):
        if instruction.opcode is OpCode.BH_SYNC:
            for view in instruction.views():
                entry = fact_of(view.base)
                entry.synced = True
                if id(view.base) in freed:
                    events.append(_Event("use_after_free", index, view.base))
                if not entry.written:
                    events.append(_Event("sync_unwritten", index, view.base))
            continue
        if instruction.opcode is OpCode.BH_FREE:
            for view in instruction.views():
                entry = fact_of(view.base)
                entry.free_count += 1
                if id(view.base) in freed:
                    events.append(_Event("double_free", index, view.base))
                freed[id(view.base)] = index
            continue
        if instruction.opcode is OpCode.BH_FUSED and instruction.kernel is not None:
            for inner in instruction.kernel:
                for view in inner.reads():
                    note_read(view, index)
                for view in inner.writes():
                    note_write(view, index)
            continue
        for view in instruction.reads():
            note_read(view, index)
        for view in instruction.writes():
            note_write(view, index)
    return facts, events


def reference_facts(program: Program) -> ProgramFacts:
    """Per-base facts of a trusted program (the pipeline's pass input)."""
    facts, _ = _scan(program)
    return facts


def _check_view_bounds(view: View, index: int) -> None:
    if len(view.shape) != len(view.strides):
        raise IRCheckError(
            f"instruction {index}: view of {view.base.name!r} has "
            f"{len(view.shape)} dims but {len(view.strides)} strides",
            index=index,
        )
    if any(dim < 0 for dim in view.shape):
        raise IRCheckError(
            f"instruction {index}: view of {view.base.name!r} has negative "
            f"shape {tuple(view.shape)}",
            index=index,
        )
    if view.nelem == 0:
        return
    if view._min_index() < 0 or view._max_index() >= view.base.nelem:
        raise IRCheckError(
            f"instruction {index}: view [offset={view.offset}, "
            f"shape={tuple(view.shape)}, strides={tuple(view.strides)}] "
            f"escapes base {view.base.name!r} of {view.base.nelem} element(s)",
            index=index,
        )


def check_program(
    program: Program, reference: Optional[ProgramFacts] = None
) -> None:
    """Verify ``program``'s flow-sensitive invariants; raise on violation.

    Parameters
    ----------
    program:
        The program to check (typically a pass's output).
    reference:
        :func:`reference_facts` of a trusted earlier form of the same
        program (the pass's input).  Gates the checks that are undecidable
        on a single program: def-before-use regressions, dropped SYNCs and
        SYNC targets the reference proved written.  Without it only the
        unconditional checks run (structure, view bounds, use-after-free,
        double-free).

    Raises
    ------
    IRCheckError
        Naming the first offending instruction.
    """
    COUNTERS.note_ir_check()
    try:
        _check_program(program, reference)
    except IRCheckError:
        COUNTERS.note_ir_failure()
        raise


def _check_program(program: Program, reference: Optional[ProgramFacts]) -> None:
    for index, instruction in enumerate(program):
        try:
            validate_instruction(instruction)
        except ValidationError as exc:
            raise IRCheckError(f"instruction {index}: {exc}", index=index) from None
        for view in instruction.views():
            _check_view_bounds(view, index)

    facts, events = _scan(program)

    for event in events:
        name = event.base.name
        if event.kind == "use_after_free":
            raise IRCheckError(
                f"instruction {event.index} uses base {name!r} after its BH_FREE",
                index=event.index,
            )
        if event.kind == "double_free":
            ref = reference.get(event.base) if reference is not None else None
            if ref is not None and ref.free_count > 1:
                continue  # the trusted input already double-freed it
            raise IRCheckError(
                f"instruction {event.index} frees base {name!r} twice",
                index=event.index,
            )
        if event.kind == "unsatisfied_read":
            if reference is None:
                continue  # cannot distinguish a temp from an earlier-flush input
            ref = reference.get(event.base)
            if ref is not None and not (ref.written and ref.reads_satisfied):
                continue  # the base was an input (or already broken) before the pass
            raise IRCheckError(
                f"instruction {event.index} reads base {name!r} with no "
                f"preceding overlapping write (def-before-use regressed)",
                index=event.index,
            )
        if event.kind == "sync_unwritten":
            if reference is None:
                continue
            ref = reference.get(event.base)
            if ref is None or not ref.written:
                continue  # the reference never wrote it either
            raise IRCheckError(
                f"instruction {event.index} syncs base {name!r} but no "
                f"instruction writes it (store dropped before SYNC)",
                index=event.index,
            )

    if reference is not None:
        synced_now = {id(f.base) for f in facts.facts.values() if f.synced}
        for base in reference.synced_bases():
            if id(base) not in synced_now:
                raise IRCheckError(
                    f"BH_SYNC of base {base.name!r} was dropped "
                    f"(observable output lost)",
                )
