"""AST lint enforcing the documented lock hierarchy (architecture.md §9).

The multi-tenant service stays deadlock-free because every thread acquires
locks strictly *downward* through one hierarchy:

====  =======================================  ==============================
rank  lock                                     where
====  =======================================  ==============================
0     admission condition variable             ``AdmissionController._cond``
1     engine in-flight latch                   ``ExecutionEngine._inflight_lock``
2     plan-cache lock                          ``PlanCache._lock``
2     plan lock                                ``ExecutionPlan.lock``
2     backend cache lock                       ``*._cache_lock``
2     engine backend-resolution lock           ``ExecutionEngine._backend_lock``
3     buffer-pool lock (leaf)                  ``BufferPool._lock``
3     codegen module lock + digest latch       ``repro.codegen.cache._lock``
====  =======================================  ==============================

This module machine-checks that discipline instead of trusting prose.  It
parses every file under ``src/repro``, extracts the static lock-acquisition
nesting graph (``with`` statements over recognised lock expressions,
``.acquire()`` calls, plus one level of interprocedural summary
propagation for same-class/same-module calls), and reports:

* **upward edges** — acquiring a lock of *smaller* rank while holding a
  larger one (sibling, equal-rank nesting is allowed; the hierarchy only
  forbids pointing back up);
* **forbidden work under a leaf lock** — leaf locks are held for dict
  surgery only, never across a host allocation (``np.empty``), a compiler
  invocation, disk IO or a sleep.

Unrecognised locks (``threading.Lock`` instances outside the table) are
recorded but unranked: they produce no edges and no violations, so the
lint cannot false-positive on helper locks like
:class:`~repro.utils.locking.SingleOwner`'s internal mutex.

Runnable as ``python -m repro.checks.lockcheck [paths...]`` (exit status 1
on violations) and as a pytest via :func:`run_lockcheck`.
"""

from __future__ import annotations

import ast
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["LockCheckReport", "Violation", "run_lockcheck", "main"]

#: Leaf rank: locks at this rank may protect dict surgery only.
LEAF_RANK = 3

#: ``self.<attr>`` lock attributes with a class-independent rank.
ATTRIBUTE_RANKS: Dict[str, Tuple[str, int]] = {
    "_cond": ("admission", 0),
    "_inflight_lock": ("engine-latch", 1),
    "_backend_lock": ("engine-backend", 2),
    "_cache_lock": ("backend-cache", 2),
}

#: ``self._lock`` is rank-ambiguous: the class decides.
CLASS_LOCK_RANKS: Dict[str, Tuple[str, int]] = {
    "PlanCache": ("plan-cache", 2),
    "BufferPool": ("buffer-pool", LEAF_RANK),
}

#: Cross-module calls whose lock footprint the summaries cannot see.
KNOWN_CALL_RANKS: Dict[str, Tuple[str, int]] = {
    # self.plan_cache.get/put/peek/... -> the plan-cache lock
    "plan_cache": ("plan-cache", 2),
    # codegen artifact lookup -> module lock + per-digest latch
    "get_compiled_kernel": ("codegen-module", LEAF_RANK),
}

#: Callee names that must never run under a leaf lock: host allocation,
#: compiler/loader invocation, disk IO, sleeps.
FORBIDDEN_UNDER_LEAF: Set[str] = {
    "empty",
    "zeros",
    "ones",
    "empty_like",
    "zeros_like",
    "ones_like",
    "open",
    "replace",
    "unlink",
    "makedirs",
    "rmtree",
    "CDLL",
    "cdll",
    "sleep",
    "check_call",
    "check_output",
    "Popen",
    "compile_shared_library",
}


@dataclass(frozen=True)
class _Lock:
    kind: str
    rank: Optional[int]  # None = recognised as a lock but unranked


@dataclass
class Violation:
    """One lock-discipline violation."""

    kind: str  # "upward-edge" | "forbidden-call"
    file: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.file}:{self.line}: [{self.kind}] {self.message}"


@dataclass
class _FunctionSummary:
    """What one function does lock-wise, for interprocedural propagation."""

    acquires: Set[Tuple[str, int]] = field(default_factory=set)
    forbidden: Set[str] = field(default_factory=set)
    #: Unresolved same-class / same-module call references.
    calls: Set[Tuple[str, str]] = field(default_factory=set)  # ("self"|"module", name)


@dataclass
class _DeferredCall:
    """A call made while holding ranked locks, resolved after summaries."""

    file: str
    line: int
    ref: Tuple[str, str]
    held: Tuple[Tuple[str, int], ...]


@dataclass
class LockCheckReport:
    """The result of one lint run."""

    files_scanned: int = 0
    ranked_acquisitions: int = 0
    nesting_edges: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        lines = [
            f"lockcheck: {self.files_scanned} file(s), "
            f"{self.ranked_acquisitions} ranked acquisition(s), "
            f"{self.nesting_edges} nesting edge(s), "
            f"{len(self.violations)} violation(s)"
        ]
        lines.extend(str(violation) for violation in self.violations)
        return "\n".join(lines)


def _classify_lock(expr: ast.expr, class_name: Optional[str]) -> Optional[_Lock]:
    """Recognise a ``with``-context / ``.acquire()`` target as a lock."""
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            attr = expr.attr
            if attr in ATTRIBUTE_RANKS:
                kind, rank = ATTRIBUTE_RANKS[attr]
                return _Lock(kind, rank)
            if attr == "_lock":
                entry = CLASS_LOCK_RANKS.get(class_name or "")
                if entry is not None:
                    return _Lock(entry[0], entry[1])
                return _Lock(f"{class_name or '?'}._lock", None)
        if expr.attr == "lock":
            # plan.lock / self.plan.lock / anything.lock: the shared-plan
            # mutation lock every ExecutionPlan carries.
            return _Lock("plan", 2)
        if expr.attr in ("_lock", "_cond"):
            # Some other object's private lock: recognised, unranked.
            return _Lock(f"?.{expr.attr}", None)
    if isinstance(expr, ast.Name) and expr.id == "_lock":
        # The only module-level `_lock` in the tree is the codegen memo lock.
        return _Lock("codegen-module", LEAF_RANK)
    return None


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _known_call_rank(func: ast.expr) -> Optional[_Lock]:
    """Cross-module calls with a known lock footprint (see table above)."""
    name = _call_name(func)
    if name in KNOWN_CALL_RANKS and isinstance(func, ast.Name):
        kind, rank = KNOWN_CALL_RANKS[name]
        return _Lock(kind, rank)
    if isinstance(func, ast.Attribute):
        node = func.value
        while isinstance(node, ast.Attribute):
            if node.attr in KNOWN_CALL_RANKS:
                kind, rank = KNOWN_CALL_RANKS[node.attr]
                return _Lock(kind, rank)
            node = node.value
        if name in KNOWN_CALL_RANKS:
            kind, rank = KNOWN_CALL_RANKS[name]
            return _Lock(kind, rank)
    return None


class _FileAnalyzer:
    """Per-file walk collecting acquisitions, edges and call references."""

    def __init__(self, path: str, report: LockCheckReport) -> None:
        self.path = path
        self.report = report
        self.summaries: Dict[Tuple[Optional[str], str], _FunctionSummary] = {}
        self.deferred: List[Tuple[Optional[str], _DeferredCall]] = []

    def analyze(self, tree: ast.Module) -> None:
        for node in tree.body:
            self._visit_scope(node, class_name=None)

    def _visit_scope(self, node: ast.AST, class_name: Optional[str]) -> None:
        if isinstance(node, ast.ClassDef):
            for child in node.body:
                self._visit_scope(child, class_name=node.name)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            summary = _FunctionSummary()
            self.summaries[(class_name, node.name)] = summary
            for child in node.body:
                self._walk(child, class_name, summary, held=())
            return
        # Module-level code: treat as an anonymous function scope.
        summary = self.summaries.setdefault(
            (class_name, "<module>"), _FunctionSummary()
        )
        self._walk(node, class_name, summary, held=())

    # ------------------------------------------------------------------ #

    def _note_acquisition(
        self,
        lock: _Lock,
        held: Tuple[Tuple[str, int], ...],
        line: int,
        summary: _FunctionSummary,
    ) -> None:
        if lock.rank is None:
            return
        self.report.ranked_acquisitions += 1
        summary.acquires.add((lock.kind, lock.rank))
        for held_kind, held_rank in held:
            self.report.nesting_edges += 1
            if lock.rank < held_rank:
                self.report.violations.append(
                    Violation(
                        kind="upward-edge",
                        file=self.path,
                        line=line,
                        message=(
                            f"acquires {lock.kind!r} (rank {lock.rank}) while "
                            f"holding {held_kind!r} (rank {held_rank}) — the "
                            f"hierarchy only allows downward acquisition"
                        ),
                    )
                )

    def _handle_call(
        self,
        node: ast.Call,
        class_name: Optional[str],
        summary: _FunctionSummary,
        held: Tuple[Tuple[str, int], ...],
    ) -> None:
        func = node.func
        name = _call_name(func)
        # lock.acquire() on a recognised lock expression
        if name == "acquire" and isinstance(func, ast.Attribute):
            lock = _classify_lock(func.value, class_name)
            if lock is not None:
                self._note_acquisition(lock, held, node.lineno, summary)
                return
        known = _known_call_rank(func)
        if known is not None:
            self._note_acquisition(known, held, node.lineno, summary)
        if name in FORBIDDEN_UNDER_LEAF:
            summary.forbidden.add(name)
            leaf = next(
                ((k, r) for k, r in held if r == LEAF_RANK), None
            )
            if leaf is not None:
                self.report.violations.append(
                    Violation(
                        kind="forbidden-call",
                        file=self.path,
                        line=node.lineno,
                        message=(
                            f"calls {name!r} while holding leaf lock "
                            f"{leaf[0]!r} — leaf locks protect dict surgery "
                            f"only, never allocation, compilation or IO"
                        ),
                    )
                )
        # Interprocedural references: self.method() and module-level func()
        ref: Optional[Tuple[str, str]] = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            ref = ("self", func.attr)
        elif isinstance(func, ast.Name):
            ref = ("module", func.id)
        if ref is not None:
            summary.calls.add(ref)
            if held:
                self.deferred.append(
                    (
                        class_name,
                        _DeferredCall(
                            file=self.path,
                            line=node.lineno,
                            ref=ref,
                            held=held,
                        ),
                    )
                )

    def _walk(
        self,
        node: ast.AST,
        class_name: Optional[str],
        summary: _FunctionSummary,
        held: Tuple[Tuple[str, int], ...],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            # A nested definition runs later, not under the current locks.
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = self.summaries.setdefault(
                    (class_name, node.name), _FunctionSummary()
                )
                for child in node.body:
                    self._walk(child, class_name, inner, held=())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            new_held = held
            for item in node.items:
                lock = _classify_lock(item.context_expr, class_name)
                if lock is not None:
                    self._note_acquisition(lock, new_held, node.lineno, summary)
                    if lock.rank is not None:
                        new_held = new_held + ((lock.kind, lock.rank),)
                else:
                    self._walk(item.context_expr, class_name, summary, held)
            for child in node.body:
                self._walk(child, class_name, summary, new_held)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, class_name, summary, held)
        for child in ast.iter_child_nodes(node):
            self._walk(child, class_name, summary, held)


def _resolve_summaries(
    analyzers: Sequence[_FileAnalyzer], report: LockCheckReport
) -> None:
    """Fixpoint-propagate summaries, then judge the deferred calls."""
    for analyzer in analyzers:
        changed = True
        rounds = 0
        while changed and rounds < 10:
            changed = False
            rounds += 1
            for (class_name, _), summary in analyzer.summaries.items():
                for scope, callee in summary.calls:
                    target = None
                    if scope == "self":
                        target = analyzer.summaries.get((class_name, callee))
                    if target is None:
                        target = analyzer.summaries.get((None, callee))
                    if target is None or target is summary:
                        continue
                    if not (
                        target.acquires <= summary.acquires
                        and target.forbidden <= summary.forbidden
                    ):
                        summary.acquires |= target.acquires
                        summary.forbidden |= target.forbidden
                        changed = True
        for class_name, call in analyzer.deferred:
            scope, callee = call.ref
            target = None
            if scope == "self":
                target = analyzer.summaries.get((class_name, callee))
            if target is None:
                target = analyzer.summaries.get((None, callee))
            if target is None:
                continue
            for kind, rank in sorted(target.acquires):
                for held_kind, held_rank in call.held:
                    if rank < held_rank:
                        report.violations.append(
                            Violation(
                                kind="upward-edge",
                                file=call.file,
                                line=call.line,
                                message=(
                                    f"calls {callee!r} (which acquires "
                                    f"{kind!r}, rank {rank}) while holding "
                                    f"{held_kind!r} (rank {held_rank})"
                                ),
                            )
                        )
            if target.forbidden and any(
                rank == LEAF_RANK for _, rank in call.held
            ):
                names = ", ".join(sorted(target.forbidden))
                report.violations.append(
                    Violation(
                        kind="forbidden-call",
                        file=call.file,
                        line=call.line,
                        message=(
                            f"calls {callee!r} (which reaches {names}) "
                            f"while holding a leaf lock"
                        ),
                    )
                )


def _default_root() -> str:
    """The installed ``repro`` package directory (``src/repro``)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _python_files(paths: Sequence[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
            continue
        for dirpath, _, filenames in os.walk(path):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    files.append(os.path.join(dirpath, filename))
    return files


def run_lockcheck(paths: Optional[Sequence[str]] = None) -> LockCheckReport:
    """Lint ``paths`` (default: the installed ``repro`` package tree)."""
    if not paths:
        paths = [_default_root()]
    report = LockCheckReport()
    analyzers: List[_FileAnalyzer] = []
    for filename in _python_files(paths):
        with open(filename, "r", encoding="utf-8") as handle:
            source = handle.read()
        try:
            tree = ast.parse(source, filename=filename)
        except SyntaxError as exc:
            report.violations.append(
                Violation(
                    kind="parse-error",
                    file=filename,
                    line=exc.lineno or 0,
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        report.files_scanned += 1
        analyzer = _FileAnalyzer(filename, report)
        analyzer.analyze(tree)
        analyzers.append(analyzer)
    _resolve_summaries(analyzers, report)
    report.violations.sort(key=lambda v: (v.file, v.line))
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: lint and print; exit 1 on any violation."""
    argv = list(sys.argv[1:] if argv is None else argv)
    report = run_lockcheck(argv)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
