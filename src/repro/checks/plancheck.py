"""Independent soundness checks for plan-time artifacts.

A cached :class:`~repro.runtime.plan.ExecutionPlan` carries three derived
artifacts whose corruption would execute silently wrong: the memory plan
(slot aliasing and zero-fill waivers), the fusion schedule (a reordering of
the byte-codes), and the tile decomposition (the parallel split).  Each was
computed by its own analysis; this module *re-derives the safety conditions
from the program with separate code* and cross-checks the artifact against
them:

* **memory plan** — a shared slot's occupants must be genuine temporaries
  with pairwise-disjoint liveness intervals, the slot must be big enough
  for each, and a zero-fill may be waived only for a base that is fully
  written before any read (:func:`check_memory_plan`);
* **fusion schedule** — the scheduled order must be a permutation of the
  program that respects every dependency-DAG edge, and every multi-element
  cluster must contain only element-wise byte-codes
  (:func:`check_schedule`, invoked from
  :func:`~repro.core.schedule.compute_schedule` under ``check_ir``);
* **tiling** — a tiled step must be hazard-free under an independent
  recomputation (same-shape operands, no overlapping windows of one base)
  and its spans must exactly partition the tiled axis
  (:func:`check_tiling`).

``Backend.prepare_plan`` and ``Backend.execute_plan`` call
:func:`maybe_check_plan` under the ``check_ir`` knob, so a corrupted plan —
whether freshly computed or replayed from the cache — can never execute.
Violations raise :class:`~repro.utils.errors.PlanCheckError`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.bytecode.operand import is_view
from repro.bytecode.program import Program
from repro.checks import COUNTERS
from repro.core.analysis import BaseInterval, live_intervals
from repro.utils.config import Config, get_config
from repro.utils.errors import PlanCheckError

__all__ = [
    "PlanCheckError",
    "check_memory_plan",
    "check_schedule",
    "check_tiling",
    "check_plan",
    "maybe_check_plan",
    "maybe_check_schedule",
]


# --------------------------------------------------------------------------- #
# Memory plan
# --------------------------------------------------------------------------- #


def check_memory_plan(program: Program, memory_plan) -> None:
    """Cross-check ``memory_plan`` against freshly recomputed liveness."""
    from repro.runtime.plan import program_base_order

    order = program_base_order(program)
    intervals = {
        id(interval.base): interval for interval in live_intervals(program)
    }
    interval_of: Dict[int, BaseInterval] = {}
    for position, base in enumerate(order):
        interval = intervals.get(id(base))
        if interval is not None:
            interval_of[position] = interval

    occupants_by_slot: Dict[int, List[Tuple[BaseInterval, int]]] = {}
    for position, directive in memory_plan.directives.items():
        if position < 0 or position >= len(order):
            raise PlanCheckError(
                f"memory plan addresses base position {position} but the "
                f"program only has {len(order)} base(s)"
            )
        interval = interval_of.get(position)
        if interval is None:
            raise PlanCheckError(
                f"memory plan has a directive for base position {position} "
                f"({order[position].name!r}) which the program never accesses"
            )
        if not directive.zero_fill and not interval.fully_defined_before_read:
            raise PlanCheckError(
                f"memory plan waives the zero fill of base "
                f"{interval.base.name!r} (position {position}) but the base "
                f"is not fully written before its first read"
            )
        if directive.slot is None:
            continue
        if not interval.is_temporary:
            raise PlanCheckError(
                f"memory plan aliases base {interval.base.name!r} (position "
                f"{position}) onto shared slot {directive.slot}, but the "
                f"base is observable (synced, not freed, or defined outside "
                f"the program)"
            )
        if directive.slot_nbytes < interval.base.nbytes:
            raise PlanCheckError(
                f"shared slot {directive.slot} holds {directive.slot_nbytes} "
                f"byte(s) but occupant {interval.base.name!r} needs "
                f"{interval.base.nbytes}"
            )
        occupants_by_slot.setdefault(directive.slot, []).append(
            (interval, position)
        )

    for slot, occupants in occupants_by_slot.items():
        occupants.sort(key=lambda item: item[0].start)
        for (prev, prev_pos), (nxt, nxt_pos) in zip(occupants, occupants[1:]):
            # The planner releases a slot after its occupant's last *use*
            # (the trailing deferred BH_FREE does not extend occupancy), so
            # disjointness means the next lifetime starts strictly later.
            if nxt.start <= prev.last_use:
                raise PlanCheckError(
                    f"shared slot {slot} aliases overlapping lifetimes: "
                    f"{prev.base.name!r} (position {prev_pos}) is live "
                    f"through instruction {prev.last_use} but "
                    f"{nxt.base.name!r} (position {nxt_pos}) starts at "
                    f"instruction {nxt.start}"
                )


# --------------------------------------------------------------------------- #
# Fusion schedule
# --------------------------------------------------------------------------- #


def check_schedule(program: Program, schedule) -> None:
    """Cross-check a fusion schedule against the program's dependency DAG."""
    from repro.core.schedule import dependency_graph

    order = schedule.order
    n = len(program)
    if sorted(order) != list(range(n)):
        raise PlanCheckError(
            f"fusion schedule is not a permutation of the {n} byte-code(s): "
            f"scheduled order {order}"
        )
    position = {index: pos for pos, index in enumerate(order)}
    successors, _ = dependency_graph(program)
    for earlier, later_set in enumerate(successors):
        for later in later_set:
            if position[later] <= position[earlier]:
                raise PlanCheckError(
                    f"fusion schedule violates the dependency edge "
                    f"{earlier} -> {later}: instruction {later} is "
                    f"scheduled at position {position[later]}, before "
                    f"instruction {earlier} at position {position[earlier]}"
                )
    for item in schedule.items:
        if len(item) < 2:
            continue
        for index in item:
            if not program[index].is_elementwise():
                raise PlanCheckError(
                    f"fusion schedule clusters instruction {index} "
                    f"({program[index].opcode}) into a kernel, but only "
                    f"element-wise byte-codes may fuse"
                )


# --------------------------------------------------------------------------- #
# Tiling
# --------------------------------------------------------------------------- #


def _check_spans(spans, rows: int, what: str) -> None:
    """``spans`` must exactly partition ``rows`` contiguous rows."""
    expected_start = 0
    for span in spans:
        if span.count <= 0:
            raise PlanCheckError(f"{what}: tile span {span} is empty")
        if span.start != expected_start:
            raise PlanCheckError(
                f"{what}: tile spans do not partition the axis — expected "
                f"a span starting at row {expected_start}, got {span}"
            )
        expected_start += span.count
    if expected_start != rows:
        raise PlanCheckError(
            f"{what}: tile spans cover {expected_start} row(s) of {rows}"
        )


def check_tiling(program: Program, tiling) -> None:
    """Cross-check a tile decomposition against recomputed overlap hazards."""
    from repro.runtime.tiling import SerialStep, TiledMapStep, TiledReduceStep

    for step in tiling.steps:
        if isinstance(step, SerialStep):
            continue  # running whole on one thread is always sound
        if step.index < 0 or step.index >= len(program):
            raise PlanCheckError(
                f"tiling addresses instruction {step.index} but the program "
                f"only has {len(program)} byte-code(s)"
            )
        instruction = program[step.index]
        what = f"tiled step at instruction {step.index} ({instruction.opcode})"
        if isinstance(step, TiledMapStep):
            if not (instruction.is_elementwise() or instruction.is_fused()):
                raise PlanCheckError(
                    f"{what}: row-tiled as a map but it is not element-wise"
                )
            inner = (
                instruction.kernel if instruction.is_fused() else (instruction,)
            )
            shape = next(
                (i.out.shape for i in inner if i.out is not None), None
            )
            if shape is None or len(shape) == 0:
                raise PlanCheckError(f"{what}: no output iteration space")
            views = [
                operand
                for i in inner
                for operand in i.operands
                if is_view(operand)
            ]
            for view in views:
                if view.shape != shape:
                    raise PlanCheckError(
                        f"{what}: operand view of {view.base.name!r} has "
                        f"shape {tuple(view.shape)}, kernel iterates "
                        f"{tuple(shape)} — rows would not be independent"
                    )
            for i in inner:
                for write in i.writes():
                    for other in views:
                        if other is write or other.same_view(write):
                            continue
                        if write.overlaps(other):
                            raise PlanCheckError(
                                f"{what}: written view of "
                                f"{write.base.name!r} overlaps a shifted "
                                f"window of the same base — tiles would "
                                f"leak across rows"
                            )
            _check_spans(step.spans, shape[0], what)
        elif isinstance(step, TiledReduceStep):
            if not instruction.is_reduction():
                raise PlanCheckError(
                    f"{what}: tiled as a reduction but it is not one"
                )
            source = instruction.inputs[0]
            out = instruction.out
            if not is_view(source) or out is None:
                raise PlanCheckError(f"{what}: malformed reduction operands")
            axis = int(instruction.constants[0].value)
            if out.base is source.base and out.overlaps(source):
                raise PlanCheckError(
                    f"{what}: output aliases the reduction input"
                )
            if step.combine:
                if source.ndim != 1 or out.nelem != 1:
                    raise PlanCheckError(
                        f"{what}: partial-combine tiling requires a full 1-D "
                        f"reduction (source rank {source.ndim}, output "
                        f"{out.nelem} element(s))"
                    )
                _check_spans(step.spans, source.shape[0], what)
            else:
                if step.tile_axis == axis:
                    raise PlanCheckError(
                        f"{what}: tiled along the reduced axis {axis} "
                        f"without combining — tiles would not own disjoint "
                        f"output slices"
                    )
                if step.tile_axis < 0 or step.tile_axis >= source.ndim:
                    raise PlanCheckError(
                        f"{what}: tile axis {step.tile_axis} out of range "
                        f"for rank {source.ndim}"
                    )
                rows = source.shape[step.tile_axis]
                if len(out.shape) == 0 or out.shape[0] != rows:
                    raise PlanCheckError(
                        f"{what}: output has {out.shape} but the tiled axis "
                        f"holds {rows} row(s) — output is not sliceable"
                    )
                _check_spans(step.spans, rows, what)
        else:
            raise PlanCheckError(f"{what}: unknown tiling step {type(step)!r}")


# --------------------------------------------------------------------------- #
# Plan-level entry points
# --------------------------------------------------------------------------- #


def check_plan(plan, config: Optional[Config] = None) -> int:
    """Check every artifact attached to ``plan``; returns artifacts checked.

    Raises :class:`PlanCheckError` on the first violation.
    """
    checked = 0
    try:
        memory_plan = getattr(plan, "memory_plan", None)
        if memory_plan is not None:
            COUNTERS.note_plan_check()
            checked += 1
            check_memory_plan(plan.optimized, memory_plan)
        tiling = getattr(plan, "tiling", None)
        if tiling is not None:
            COUNTERS.note_plan_check()
            checked += 1
            check_tiling(plan.optimized, tiling)
    except PlanCheckError:
        COUNTERS.note_plan_failure()
        raise
    return checked


def maybe_check_plan(plan, config: Optional[Config] = None) -> None:
    """Run :func:`check_plan` when the ``check_ir`` knob is on.

    The per-plan ``plan_checks_run`` counter feeds the engine's per-flush
    statistics; it is bumped under the plan lock because cached plans are
    shared across sessions.
    """
    config = config if config is not None else get_config()
    if not config.check_ir:
        return
    checked = check_plan(plan, config)
    if checked:
        with plan.lock:
            plan.plan_checks_run += checked


def maybe_check_schedule(program: Program, schedule, config: Optional[Config] = None) -> None:
    """Run :func:`check_schedule` when the ``check_ir`` knob is on.

    Called from :func:`~repro.core.schedule.compute_schedule` — the one seam
    every schedule consumer (fusion pass, JIT, parallel backend) goes
    through, and the only place the schedule's indices still refer to the
    program they were computed from.
    """
    config = config if config is not None else get_config()
    if not config.check_ir:
        return
    COUNTERS.note_plan_check()
    try:
        check_schedule(program, schedule)
    except PlanCheckError:
        COUNTERS.note_plan_failure()
        raise
