"""Simulated partitioned (cluster / multicore) execution.

Bohrium's motivation includes running unchanged NumPy code "on multicore
CPUs, clusters, or GPUs".  We cannot run a real cluster here, so this
package provides a *simulated* data-parallel executor: arrays are
partitioned across workers along their first axis, element-wise byte-codes
run worker-locally, reductions and extension methods pay an explicit
communication cost (latency + bytes / bandwidth), and ``BH_SYNC`` gathers
data to the master.

The executor reuses the NumPy interpreter for correctness, so results are
exact; what changes with the worker count is the *simulated* time, which is
what the scaling benchmark (E8) reports.  The interesting interaction with
the paper's optimizer: every byte-code removed by a transformation also
removes a round of per-worker kernel launches, and every fused kernel
removes synchronisation points.
"""

from repro.cluster.comm import CommunicationModel
from repro.cluster.partition import partition_length, partition_view
from repro.cluster.executor import ClusterExecutor, ClusterStats

__all__ = [
    "CommunicationModel",
    "partition_length",
    "partition_view",
    "ClusterExecutor",
    "ClusterStats",
]
