"""Communication cost model for the simulated cluster executor.

Besides the alpha-beta :class:`CommunicationModel` this module owns the two
pieces that keep the model honest now that a real distributed backend exists:

* :func:`measured_comm_model` — a one-shot, per-process-cached calibration
  probe that derives latency and bandwidth from actual shared-memory copy
  timings instead of hardcoded constants.  The distributed backend moves
  halo rows by copying between ``multiprocessing.shared_memory`` segments,
  so a memory-copy probe is the right proxy for its transport.
* :data:`COMM_METER` — a process-wide accumulator of *priced* (model
  prediction) versus *measured* (worker-timed) communication seconds,
  surfaced through ``ClusterExecutor.cache_stats()`` so the cost model's
  drift from reality is observable.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class CommunicationModel:
    """Latency/bandwidth (alpha-beta) model of the interconnect.

    Attributes
    ----------
    latency_s:
        Fixed per-message latency (alpha).
    bytes_per_second:
        Point-to-point bandwidth (1/beta).

    The class defaults are a documented fallback (5 µs / 10 GB/s, a
    plausible commodity interconnect); executors should prefer
    :meth:`calibrated`, which replaces them with numbers measured on the
    host the model is about to price work for.
    """

    latency_s: float = 5e-6
    bytes_per_second: float = 10e9

    @classmethod
    def calibrated(cls) -> "CommunicationModel":
        """A model whose constants come from the shared-memory copy probe.

        The probe runs once per process and is cached; constructing
        calibrated models afterwards is free.
        """
        return measured_comm_model()

    def point_to_point(self, nbytes: float) -> float:
        """Seconds to send one message of ``nbytes``."""
        return self.latency_s + nbytes / self.bytes_per_second

    def gather(self, num_workers: int, nbytes_per_worker: float) -> float:
        """Gather one block from every worker to the master (serialised receives)."""
        if num_workers <= 1:
            return 0.0
        return (num_workers - 1) * self.point_to_point(nbytes_per_worker)

    def scatter(self, num_workers: int, nbytes_per_worker: float) -> float:
        """Scatter one block from the master to every worker."""
        return self.gather(num_workers, nbytes_per_worker)

    def broadcast(self, num_workers: int, nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` to every worker."""
        if num_workers <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_workers))
        return rounds * self.point_to_point(nbytes)

    def allreduce(self, num_workers: int, nbytes: float) -> float:
        """Reduce-then-broadcast estimate for an all-reduce of ``nbytes``."""
        if num_workers <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_workers))
        return 2 * rounds * self.point_to_point(nbytes)


# --------------------------------------------------------------------------- #
# Calibration probe
# --------------------------------------------------------------------------- #

#: Probe sizes: the small copy is latency-dominated, the large one
#: bandwidth-dominated.  Both complete in well under a millisecond.
_PROBE_SMALL_BYTES = 64
_PROBE_LARGE_BYTES = 1 << 20
_PROBE_REPEATS = 5

_calibrated_model: Optional[CommunicationModel] = None
_calibration_lock = threading.Lock()


def _best_copy_seconds(nbytes: int, repeats: int = _PROBE_REPEATS) -> float:
    """Minimum observed wall time to copy ``nbytes`` between two buffers."""
    source = np.zeros(nbytes, dtype=np.uint8)
    sink = np.empty_like(source)
    best = math.inf
    for _ in range(repeats):
        begin = time.perf_counter()
        np.copyto(sink, source)
        best = min(best, time.perf_counter() - begin)
    return best


def measured_comm_model() -> CommunicationModel:
    """Calibrate a :class:`CommunicationModel` from shared-memory copy timings.

    Bandwidth comes from a 1 MiB copy; latency is the fixed cost left over
    in a 64-byte copy after subtracting its bandwidth share.  The result is
    cached for the lifetime of the process — calibration is a one-shot
    probe, not a per-estimate cost.
    """
    global _calibrated_model
    with _calibration_lock:
        if _calibrated_model is None:
            large = _best_copy_seconds(_PROBE_LARGE_BYTES)
            small = _best_copy_seconds(_PROBE_SMALL_BYTES)
            bytes_per_second = _PROBE_LARGE_BYTES / max(large, 1e-9)
            latency = max(small - _PROBE_SMALL_BYTES / bytes_per_second, 1e-9)
            _calibrated_model = CommunicationModel(
                latency_s=latency, bytes_per_second=bytes_per_second
            )
        return _calibrated_model


# --------------------------------------------------------------------------- #
# Priced-vs-measured meter
# --------------------------------------------------------------------------- #


class CommMeter:
    """Process-wide accumulator of priced vs measured communication time.

    The distributed backend *prices* every halo exchange with the
    communication model at launch time and reports the *measured* copy
    seconds its workers actually spent.  Keeping both on one meter makes
    the cost model auditable: a growing gap means the alpha-beta constants
    no longer describe the machine.
    """

    def __init__(self) -> None:
        self._meter_lock = threading.Lock()
        self._priced_seconds = 0.0
        self._measured_seconds = 0.0

    def add_priced(self, seconds: float) -> None:
        with self._meter_lock:
            self._priced_seconds += seconds

    def add_measured(self, seconds: float) -> None:
        with self._meter_lock:
            self._measured_seconds += seconds

    def snapshot_us(self) -> Dict[str, int]:
        """Both accumulators in integer microseconds (cache_stats is int-valued)."""
        with self._meter_lock:
            return {
                "comm_priced_us": int(self._priced_seconds * 1e6),
                "comm_measured_us": int(self._measured_seconds * 1e6),
            }

    def reset(self) -> None:
        with self._meter_lock:
            self._priced_seconds = 0.0
            self._measured_seconds = 0.0


#: The process-wide meter; fed by the distributed backend, read by
#: ``ClusterExecutor.cache_stats()`` and the distributed backend's own stats.
COMM_METER = CommMeter()
