"""Communication cost model for the simulated cluster executor."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CommunicationModel:
    """Latency/bandwidth (alpha-beta) model of the interconnect.

    Attributes
    ----------
    latency_s:
        Fixed per-message latency (alpha).
    bytes_per_second:
        Point-to-point bandwidth (1/beta).
    """

    latency_s: float = 5e-6
    bytes_per_second: float = 10e9

    def point_to_point(self, nbytes: float) -> float:
        """Seconds to send one message of ``nbytes``."""
        return self.latency_s + nbytes / self.bytes_per_second

    def gather(self, num_workers: int, nbytes_per_worker: float) -> float:
        """Gather one block from every worker to the master (serialised receives)."""
        if num_workers <= 1:
            return 0.0
        return (num_workers - 1) * self.point_to_point(nbytes_per_worker)

    def scatter(self, num_workers: int, nbytes_per_worker: float) -> float:
        """Scatter one block from the master to every worker."""
        return self.gather(num_workers, nbytes_per_worker)

    def broadcast(self, num_workers: int, nbytes: float) -> float:
        """Binomial-tree broadcast of ``nbytes`` to every worker."""
        if num_workers <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_workers))
        return rounds * self.point_to_point(nbytes)

    def allreduce(self, num_workers: int, nbytes: float) -> float:
        """Reduce-then-broadcast estimate for an all-reduce of ``nbytes``."""
        if num_workers <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_workers))
        return 2 * rounds * self.point_to_point(nbytes)
