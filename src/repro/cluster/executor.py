"""The simulated cluster executor."""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import is_view
from repro.bytecode.program import Program
from repro.cluster.comm import COMM_METER, CommunicationModel
from repro.cluster.partition import partition_length
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.runtime.plan import program_fingerprint
from repro.runtime.simulator import (
    DEVICE_PROFILES,
    DeviceProfile,
    instruction_bytes,
    instruction_flops,
)
from repro.utils.config import get_config
from repro.utils.errors import ClusterError


@dataclass
class ClusterStats:
    """Per-phase breakdown of simulated cluster time."""

    num_workers: int
    compute_seconds: float = 0.0
    communication_seconds: float = 0.0
    launch_seconds: float = 0.0
    sync_rounds: int = 0
    serial_instructions: int = 0
    parallel_instructions: int = 0

    @property
    def total_seconds(self) -> float:
        """Total simulated wall-clock seconds."""
        return self.compute_seconds + self.communication_seconds + self.launch_seconds

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for benchmark tables."""
        return {
            "workers": self.num_workers,
            "compute_s": self.compute_seconds,
            "communication_s": self.communication_seconds,
            "launch_s": self.launch_seconds,
            "total_s": self.total_seconds,
            "sync_rounds": self.sync_rounds,
        }


class ClusterExecutor(Backend):
    """Data-parallel execution simulator.

    Element-wise byte-codes (and fused kernels) are assumed perfectly
    partitionable along the first axis: every worker processes its block, so
    the per-instruction time is the single-device roofline time divided by
    the number of workers — plus one kernel launch per worker round.

    Reductions compute worker-local partials and pay a gather of the partial
    results.  Extension methods (dense linear algebra) are executed on the
    master only, paying a gather of their inputs first — which is exactly
    why removing a ``BH_MATRIX_INVERSE`` via the paper's Equation 2 rewrite
    helps even more in the distributed setting.  ``BH_SYNC`` gathers the
    synced view to the master.
    """

    name = "cluster"

    def __init__(
        self,
        num_workers: int = 4,
        profile: Union[str, DeviceProfile] = "single_core",
        comm: Optional[CommunicationModel] = None,
    ) -> None:
        if num_workers < 1:
            raise ClusterError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        if isinstance(profile, DeviceProfile):
            self.profile = profile
        else:
            try:
                self.profile = DEVICE_PROFILES[profile]
            except KeyError:
                raise ClusterError(
                    f"unknown device profile {profile!r}; available: {tuple(DEVICE_PROFILES)}"
                ) from None
        # Default to the calibrated model: constants measured once per
        # process from real shared-memory copies, not hardcoded guesses.
        self.comm = comm if comm is not None else CommunicationModel.calibrated()
        self._interpreter = NumPyInterpreter()
        self.last_cluster_stats: Optional[ClusterStats] = None
        # Per-partition pricing plans, keyed by (program fingerprint, worker
        # count): iterative workloads re-price the same partitioned program
        # every round, and scaling curves re-price it per worker count —
        # both reuse the cached breakdown instead of re-walking the program.
        # Bounded LRU, like the engine's plan cache: executors live as long
        # as their engine, which keeps the backend instance across flushes.
        self._pricing_plans: "OrderedDict[Tuple[str, int], ClusterStats]" = OrderedDict()
        self._pricing_plan_capacity = max(1, get_config().plan_cache_size)
        self.pricing_plan_hits = 0
        self.pricing_plan_misses = 0

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        # Correctness: run the whole program on the reference interpreter.
        result = self._interpreter.execute(program, memory)
        result.stats.backend_name = self.name
        # Performance: price the program under the partitioned model.
        cluster_stats = self.estimate(program)
        self.last_cluster_stats = cluster_stats
        result.stats.simulated_time_seconds = cluster_stats.total_seconds
        return result

    def estimate(self, program: Program, num_workers: Optional[int] = None) -> ClusterStats:
        """Price ``program`` under the partitioned execution model.

        Breakdowns are cached per (program fingerprint, worker count) — a
        *per-partition pricing plan* — so iterative workloads that re-submit
        a structurally identical program every round, and scaling curves
        that re-price it for several worker counts, pay the instruction walk
        once.  Callers must treat the returned stats as read-only.
        """
        workers = num_workers if num_workers is not None else self.num_workers
        if workers < 1:
            raise ClusterError(f"need at least one worker, got {workers}")
        key = (program_fingerprint(program), workers)
        cached = self._pricing_plans.get(key)
        if cached is not None:
            self._pricing_plans.move_to_end(key)
            self.pricing_plan_hits += 1
            return cached
        self.pricing_plan_misses += 1
        stats = ClusterStats(num_workers=workers)
        for instruction in program:
            self._price_instruction(instruction, stats, workers)
        self._pricing_plans[key] = stats
        while len(self._pricing_plans) > self._pricing_plan_capacity:
            self._pricing_plans.popitem(last=False)
        return stats

    def cache_stats(self) -> Dict[str, int]:
        """Pricing-plan cache counters for this executor.

        Deliberately *not* named ``plan_cache_*``: the execution engine
        merges backend counters into its own plan-cache statistics, and the
        pricing cache is a different cache.
        """
        stats = {
            "pricing_plan_hits": self.pricing_plan_hits,
            "pricing_plan_misses": self.pricing_plan_misses,
            "pricing_plan_size": len(self._pricing_plans),
        }
        # Priced-vs-measured communication time: the distributed backend
        # feeds the process-wide meter (model prediction at launch, worker
        # timings at completion); exposing both here makes cost-model drift
        # visible wherever cluster statistics are already collected.
        stats.update(COMM_METER.snapshot_us())
        return stats

    # ------------------------------------------------------------------ #
    # Per-instruction pricing
    # ------------------------------------------------------------------ #

    def _price_instruction(
        self, instruction: Instruction, stats: ClusterStats, workers: int
    ) -> None:
        opcode = instruction.opcode
        if opcode is OpCode.BH_NONE or opcode is OpCode.BH_FREE:
            return
        if opcode is OpCode.BH_SYNC:
            synced_bytes = sum(view.nbytes for view in instruction.views())
            per_worker = synced_bytes / workers
            stats.communication_seconds += self.comm.gather(workers, per_worker)
            stats.sync_rounds += 1
            return

        flops = instruction_flops(instruction)
        bytes_moved = instruction_bytes(instruction)

        if instruction.is_elementwise() or instruction.is_fused():
            stats.parallel_instructions += 1
            stats.launch_seconds += self.profile.kernel_launch_overhead_s
            stats.compute_seconds += self.profile.roofline_time(
                flops / workers, bytes_moved / workers
            )
            return

        if instruction.is_reduction():
            stats.parallel_instructions += 1
            stats.launch_seconds += self.profile.kernel_launch_overhead_s
            stats.compute_seconds += self.profile.roofline_time(
                flops / workers, bytes_moved / workers
            )
            # Partial results (one block of the output per worker) are
            # gathered and combined on the master.
            out = instruction.out
            partial_bytes = out.nbytes if out is not None else 0
            stats.communication_seconds += self.comm.gather(workers, partial_bytes)
            stats.sync_rounds += 1
            return

        # Extension methods and generators run serially on the master.
        stats.serial_instructions += 1
        stats.launch_seconds += self.profile.kernel_launch_overhead_s
        stats.compute_seconds += self.profile.roofline_time(flops, bytes_moved)
        if instruction.is_extension():
            input_bytes = sum(view.nbytes for view in instruction.input_views)
            per_worker = input_bytes / workers
            stats.communication_seconds += self.comm.gather(workers, per_worker)
            stats.sync_rounds += 1

    # ------------------------------------------------------------------ #
    # Scaling helpers used by the benchmark harness
    # ------------------------------------------------------------------ #

    def scaling_curve(self, program: Program, worker_counts) -> Dict[int, float]:
        """Simulated total seconds for each worker count in ``worker_counts``.

        The program is fingerprinted once; each worker count reuses the
        pricing-plan cache across rounds (benchmark sweeps call this with
        overlapping counts).
        """
        return {
            workers: self.estimate(program, num_workers=workers).total_seconds
            for workers in worker_counts
        }

    def parallel_efficiency(self, program: Program, workers: int) -> float:
        """Speedup over one worker divided by the worker count."""
        single = self.estimate(program, num_workers=1).total_seconds
        multi = self.estimate(program, num_workers=workers).total_seconds
        if multi == 0:
            return float("inf")
        return (single / multi) / workers
