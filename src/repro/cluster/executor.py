"""The simulated cluster executor."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import is_view
from repro.bytecode.program import Program
from repro.cluster.comm import CommunicationModel
from repro.cluster.partition import partition_length
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.runtime.simulator import (
    DEVICE_PROFILES,
    DeviceProfile,
    instruction_bytes,
    instruction_flops,
)
from repro.utils.errors import ClusterError


@dataclass
class ClusterStats:
    """Per-phase breakdown of simulated cluster time."""

    num_workers: int
    compute_seconds: float = 0.0
    communication_seconds: float = 0.0
    launch_seconds: float = 0.0
    sync_rounds: int = 0
    serial_instructions: int = 0
    parallel_instructions: int = 0

    @property
    def total_seconds(self) -> float:
        """Total simulated wall-clock seconds."""
        return self.compute_seconds + self.communication_seconds + self.launch_seconds

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for benchmark tables."""
        return {
            "workers": self.num_workers,
            "compute_s": self.compute_seconds,
            "communication_s": self.communication_seconds,
            "launch_s": self.launch_seconds,
            "total_s": self.total_seconds,
            "sync_rounds": self.sync_rounds,
        }


class ClusterExecutor(Backend):
    """Data-parallel execution simulator.

    Element-wise byte-codes (and fused kernels) are assumed perfectly
    partitionable along the first axis: every worker processes its block, so
    the per-instruction time is the single-device roofline time divided by
    the number of workers — plus one kernel launch per worker round.

    Reductions compute worker-local partials and pay a gather of the partial
    results.  Extension methods (dense linear algebra) are executed on the
    master only, paying a gather of their inputs first — which is exactly
    why removing a ``BH_MATRIX_INVERSE`` via the paper's Equation 2 rewrite
    helps even more in the distributed setting.  ``BH_SYNC`` gathers the
    synced view to the master.
    """

    name = "cluster"

    def __init__(
        self,
        num_workers: int = 4,
        profile: Union[str, DeviceProfile] = "single_core",
        comm: Optional[CommunicationModel] = None,
    ) -> None:
        if num_workers < 1:
            raise ClusterError(f"need at least one worker, got {num_workers}")
        self.num_workers = num_workers
        if isinstance(profile, DeviceProfile):
            self.profile = profile
        else:
            try:
                self.profile = DEVICE_PROFILES[profile]
            except KeyError:
                raise ClusterError(
                    f"unknown device profile {profile!r}; available: {tuple(DEVICE_PROFILES)}"
                ) from None
        self.comm = comm if comm is not None else CommunicationModel()
        self._interpreter = NumPyInterpreter()
        self.last_cluster_stats: Optional[ClusterStats] = None

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        # Correctness: run the whole program on the reference interpreter.
        result = self._interpreter.execute(program, memory)
        result.stats.backend_name = self.name
        # Performance: price the program under the partitioned model.
        cluster_stats = self.estimate(program)
        self.last_cluster_stats = cluster_stats
        result.stats.simulated_time_seconds = cluster_stats.total_seconds
        return result

    def estimate(self, program: Program) -> ClusterStats:
        """Price ``program`` under the partitioned execution model."""
        stats = ClusterStats(num_workers=self.num_workers)
        for instruction in program:
            self._price_instruction(instruction, stats)
        return stats

    # ------------------------------------------------------------------ #
    # Per-instruction pricing
    # ------------------------------------------------------------------ #

    def _price_instruction(self, instruction: Instruction, stats: ClusterStats) -> None:
        opcode = instruction.opcode
        if opcode is OpCode.BH_NONE or opcode is OpCode.BH_FREE:
            return
        if opcode is OpCode.BH_SYNC:
            synced_bytes = sum(view.nbytes for view in instruction.views())
            per_worker = synced_bytes / self.num_workers
            stats.communication_seconds += self.comm.gather(self.num_workers, per_worker)
            stats.sync_rounds += 1
            return

        flops = instruction_flops(instruction)
        bytes_moved = instruction_bytes(instruction)

        if instruction.is_elementwise() or instruction.is_fused():
            stats.parallel_instructions += 1
            stats.launch_seconds += self.profile.kernel_launch_overhead_s
            stats.compute_seconds += self.profile.roofline_time(
                flops / self.num_workers, bytes_moved / self.num_workers
            )
            return

        if instruction.is_reduction():
            stats.parallel_instructions += 1
            stats.launch_seconds += self.profile.kernel_launch_overhead_s
            stats.compute_seconds += self.profile.roofline_time(
                flops / self.num_workers, bytes_moved / self.num_workers
            )
            # Partial results (one block of the output per worker) are
            # gathered and combined on the master.
            out = instruction.out
            partial_bytes = out.nbytes if out is not None else 0
            stats.communication_seconds += self.comm.gather(self.num_workers, partial_bytes)
            stats.sync_rounds += 1
            return

        # Extension methods and generators run serially on the master.
        stats.serial_instructions += 1
        stats.launch_seconds += self.profile.kernel_launch_overhead_s
        stats.compute_seconds += self.profile.roofline_time(flops, bytes_moved)
        if instruction.is_extension():
            input_bytes = sum(view.nbytes for view in instruction.input_views)
            per_worker = input_bytes / self.num_workers
            stats.communication_seconds += self.comm.gather(self.num_workers, per_worker)
            stats.sync_rounds += 1

    # ------------------------------------------------------------------ #
    # Scaling helpers used by the benchmark harness
    # ------------------------------------------------------------------ #

    def scaling_curve(self, program: Program, worker_counts) -> Dict[int, float]:
        """Simulated total seconds for each worker count in ``worker_counts``."""
        curve: Dict[int, float] = {}
        for workers in worker_counts:
            executor = ClusterExecutor(workers, self.profile, self.comm)
            curve[workers] = executor.estimate(program).total_seconds
        return curve

    def parallel_efficiency(self, program: Program, workers: int) -> float:
        """Speedup over one worker divided by the worker count."""
        single = ClusterExecutor(1, self.profile, self.comm).estimate(program).total_seconds
        multi = ClusterExecutor(workers, self.profile, self.comm).estimate(program).total_seconds
        if multi == 0:
            return float("inf")
        return (single / multi) / workers
