"""Partitioning of views across simulated workers."""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.view import View
from repro.utils.errors import ClusterError


def partition_length(length: int, num_workers: int) -> List[Tuple[int, int]]:
    """Split ``length`` elements into contiguous (start, count) chunks.

    The chunk count is clamped to ``min(num_workers, length)`` so every
    returned chunk is non-empty — consumers that launch real work per chunk
    (the distributed backend ships one shard per chunk to a worker process)
    must never be handed a zero-length shard.  A ``length`` of zero therefore
    yields no chunks at all.  Within the clamped count the first
    ``length % parts`` chunks get one extra element, the standard block
    distribution.
    """
    if num_workers < 1:
        raise ClusterError(f"need at least one worker, got {num_workers}")
    parts = min(num_workers, length)
    if parts == 0:
        return []
    base = length // parts
    remainder = length % parts
    chunks: List[Tuple[int, int]] = []
    start = 0
    for worker in range(parts):
        count = base + (1 if worker < remainder else 0)
        chunks.append((start, count))
        start += count
    return chunks


def partition_view(view: View, num_workers: int) -> List[View]:
    """Split ``view`` along its first axis into per-worker sub-views.

    Workers beyond the clamped chunk count (more workers than rows) get
    ``None`` placeholders so the caller can keep worker indices aligned.
    """
    chunks = partition_length(view.shape[0], num_workers)
    parts: List[View] = []
    for start, count in chunks:
        offset = view.offset + start * view.strides[0]
        shape = (count,) + view.shape[1:]
        parts.append(View(view.base, offset, shape, view.strides))
    parts.extend([None] * (num_workers - len(parts)))
    return parts
