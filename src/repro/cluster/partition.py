"""Partitioning of views across simulated workers."""

from __future__ import annotations

from typing import List, Tuple

from repro.bytecode.view import View
from repro.utils.errors import ClusterError


def partition_length(length: int, num_workers: int) -> List[Tuple[int, int]]:
    """Split ``length`` elements into ``num_workers`` contiguous (start, count) chunks.

    The first ``length % num_workers`` workers get one extra element, the
    standard block distribution.  Workers beyond ``length`` get empty chunks.
    """
    if num_workers < 1:
        raise ClusterError(f"need at least one worker, got {num_workers}")
    base = length // num_workers
    remainder = length % num_workers
    chunks: List[Tuple[int, int]] = []
    start = 0
    for worker in range(num_workers):
        count = base + (1 if worker < remainder else 0)
        chunks.append((start, count))
        start += count
    return chunks


def partition_view(view: View, num_workers: int) -> List[View]:
    """Split ``view`` along its first axis into per-worker sub-views.

    Empty chunks (more workers than rows) are returned as ``None`` place-
    holders so the caller can keep worker indices aligned.
    """
    chunks = partition_length(view.shape[0], num_workers)
    parts: List[View] = []
    for start, count in chunks:
        if count == 0:
            parts.append(None)
            continue
        offset = view.offset + start * view.strides[0]
        shape = (count,) + view.shape[1:]
        parts.append(View(view.base, offset, shape, view.strides))
    return parts
