"""Native code generation: loop-nest IR, C emission and compiled-artifact caching.

The package lowers a fused kernel's element-wise byte-codes into a small
loop-nest IR (:mod:`repro.codegen.loopir`), emits portable C99 from it
(:mod:`repro.codegen.emit_c`), compiles the result with the host C
compiler (:mod:`repro.codegen.compiler`) and caches one shared library per
*canonical kernel form* both in-process and on disk
(:mod:`repro.codegen.cache`).  The :class:`~repro.runtime.native.NativeBackend`
drives it; everything here is backend-agnostic and free of runtime state.
"""

from repro.codegen.loopir import LoweringError, lower_kernel
from repro.codegen.emit_c import emit_kernel_source
from repro.codegen.compiler import CodegenError, CompilerUnavailable, find_c_compiler
from repro.codegen.cache import (
    artifact_digest,
    clear_memory_cache,
    get_compiled_kernel,
    resolve_cache_dir,
)

__all__ = [
    "LoweringError",
    "lower_kernel",
    "emit_kernel_source",
    "CodegenError",
    "CompilerUnavailable",
    "find_c_compiler",
    "artifact_digest",
    "clear_memory_cache",
    "get_compiled_kernel",
    "resolve_cache_dir",
]
