"""Two-level compiled-artifact cache: in-process memo plus on-disk store.

Artifacts are keyed by a content digest over the *generated source*, the
compiler flags and the host ABI — never by file names or timestamps — so a
cache directory can be shared between processes, CI runs and machines of
the same architecture without coherence protocols:

* **In-process**: ``digest → CompiledKernel`` in a lock-protected module
  dict.  Every backend instance in the process shares it, so the
  differential harness's fresh-engine-per-execution pattern compiles each
  kernel form once.  Concurrent resolvers of the *same* digest dedupe to
  one compile through a per-digest in-flight latch (losers wait, then read
  the published kernel from the memo); resolvers of *distinct* digests
  compile fully in parallel, because the module lock is only ever held for
  dict surgery — never across disk IO or a compiler invocation.
* **On disk**: ``<digest>.so`` plus ``<digest>.c`` (for debugging) and a
  ``<digest>.json`` sidecar holding the SHA-256 of the shared library.
  Writers compile to a process-unique temp name and ``os.replace`` into
  place, so concurrent writers race benignly (last atomic rename wins and
  every intermediate state is either absent or complete).  Readers verify
  the sidecar hash before loading; a truncated, tampered or unloadable
  artifact is discarded and recompiled — corruption can cost a compile,
  never correctness.

A warm disk cache therefore serves a cold process with **zero compiler
invocations**, which is the property the E15 benchmark asserts.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import shutil
import sys
import tempfile
import threading
from typing import Dict, Optional, Tuple

from repro.codegen.compiler import (
    CodegenError,
    CompiledKernel,
    CompilerUnavailable,
    compile_flags,
    compile_shared_library,
    find_c_compiler,
)

#: Bump to invalidate every cached artifact when the ABI of generated
#: kernels changes (argument layout, symbol name, helper semantics).
#: Schema 2: every artifact additionally exports ``repro_kernel_mt`` (the
#: chunked entry point with a runtime ``nthreads`` argument) and may embed
#: a persistent pthread worker pool; reduction artifacts join the store.
ARTIFACT_SCHEMA = 2

_memory_cache: Dict[str, CompiledKernel] = {}
_lock = threading.Lock()
#: Per-digest latches for compiles currently in flight; guarded by _lock.
_inflight: Dict[str, threading.Event] = {}
_temp_counter = itertools.count()


def resolve_cache_dir(configured: Optional[str] = None) -> str:
    """The on-disk cache directory: config knob > env var > user cache dir."""
    if configured:
        return os.path.expanduser(configured)
    env = os.environ.get("REPRO_CODEGEN_CACHE")
    if env:
        return os.path.expanduser(env)
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-codegen")


def artifact_digest(source: str, opt_level: int, mt_mode: str = "serial") -> str:
    """Content digest identifying one compiled artifact.

    Covers the generated source, the compiler flags (including the
    threading mode's ``-pthread``/``-fopenmp``) and the host ABI (platform
    + machine + pointer width), so a shared cache directory can never serve
    an artifact compiled for a different target or under different
    semantics-relevant flags.  The runtime thread *count* is deliberately
    absent: ``nthreads`` is an argument of ``repro_kernel_mt``, so one
    artifact serves every thread count.
    """
    hasher = hashlib.blake2b(digest_size=20)
    abi = (
        ARTIFACT_SCHEMA,
        sys.platform,
        platform.machine(),
        64 if sys.maxsize > 2**32 else 32,
        compile_flags(opt_level, mt_mode),
    )
    hasher.update(repr(abi).encode("utf-8"))
    hasher.update(source.encode("utf-8"))
    return hasher.hexdigest()


def clear_memory_cache() -> None:
    """Drop every in-process loaded kernel (tests and cold-start simulation)."""
    with _lock:
        _memory_cache.clear()


def memory_cache_size() -> int:
    """Number of kernels currently loaded in the in-process cache."""
    with _lock:
        return len(_memory_cache)


def _artifact_paths(cache_dir: str, digest: str) -> Tuple[str, str, str]:
    return (
        os.path.join(cache_dir, f"{digest}.so"),
        os.path.join(cache_dir, f"{digest}.json"),
        os.path.join(cache_dir, f"{digest}.c"),
    )


def _discard_artifact(cache_dir: str, digest: str) -> None:
    for path in _artifact_paths(cache_dir, digest):
        try:
            os.unlink(path)
        except OSError:
            pass


def _sha256_file(path: str) -> str:
    hasher = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 16), b""):
            hasher.update(chunk)
    return hasher.hexdigest()


def _load_from_disk(cache_dir: str, digest: str) -> Optional[CompiledKernel]:
    """Load a verified artifact, or ``None`` (discarding anything corrupt)."""
    so_path, meta_path, _ = _artifact_paths(cache_dir, digest)
    if not (os.path.isfile(so_path) and os.path.isfile(meta_path)):
        return None
    try:
        with open(meta_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        expected = meta["sha256"]
        schema = meta["schema"]
    except (OSError, ValueError, KeyError):
        _discard_artifact(cache_dir, digest)
        return None
    if schema != ARTIFACT_SCHEMA:
        _discard_artifact(cache_dir, digest)
        return None
    try:
        actual = _sha256_file(so_path)
    except OSError:
        _discard_artifact(cache_dir, digest)
        return None
    if actual != expected:
        _discard_artifact(cache_dir, digest)
        return None
    try:
        return CompiledKernel(so_path)
    except CodegenError:
        _discard_artifact(cache_dir, digest)
        return None


def _atomic_write(path: str, data: bytes, temp_tag: str) -> None:
    temp_path = f"{path}.{temp_tag}.tmp"
    with open(temp_path, "wb") as handle:
        handle.write(data)
    os.replace(temp_path, path)


def _compile_to_disk(
    cache_dir: str, digest: str, source: str, opt_level: int, mt_mode: str = "serial"
) -> CompiledKernel:
    os.makedirs(cache_dir, exist_ok=True)
    so_path, meta_path, c_path = _artifact_paths(cache_dir, digest)
    tag = f"{os.getpid()}.{next(_temp_counter)}"
    temp_c = f"{c_path}.{tag}.tmp.c"  # must end in .c for the compiler driver
    temp_so = f"{so_path}.{tag}.tmp"
    try:
        with open(temp_c, "w", encoding="utf-8") as handle:
            handle.write(source)
        compile_shared_library(temp_c, temp_so, opt_level, mt_mode=mt_mode)
        sha = _sha256_file(temp_so)
        # Publication order matters for racing readers: the library first,
        # its checksum last — a reader that sees a sidecar always sees a
        # fully written .so (possibly a *different* racer's, in which case
        # the checksum mismatch triggers a clean recompile).
        os.replace(temp_so, so_path)
        os.replace(temp_c, c_path)
        _atomic_write(
            meta_path,
            json.dumps(
                {"schema": ARTIFACT_SCHEMA, "sha256": sha, "opt_level": int(opt_level)}
            ).encode("utf-8"),
            tag,
        )
    finally:
        for leftover in (temp_c, temp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return CompiledKernel(so_path)


def _compile_in_memory(
    source: str, opt_level: int, mt_mode: str = "serial"
) -> CompiledKernel:
    """Compile without touching the cache dir (``codegen_disk_cache_enabled=False``)."""
    workdir = tempfile.mkdtemp(prefix="repro-codegen-")
    try:
        c_path = os.path.join(workdir, "kernel.c")
        so_path = os.path.join(workdir, "kernel.so")
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(source)
        compile_shared_library(c_path, so_path, opt_level, mt_mode=mt_mode)
        return CompiledKernel(so_path)
    finally:
        # The dynamic loader keeps the mapping alive after unlink (POSIX),
        # so the working directory can go away immediately.
        shutil.rmtree(workdir, ignore_errors=True)


def get_compiled_kernel(
    source: str,
    opt_level: int = 2,
    cache_dir: Optional[str] = None,
    use_disk: bool = True,
    mt_mode: str = "serial",
) -> Tuple[CompiledKernel, str]:
    """Resolve source to a loaded kernel: memory → disk → compile.

    Returns ``(kernel, outcome)`` with ``outcome`` one of ``"memory"``,
    ``"disk"`` or ``"compiled"`` so callers can maintain honest counters.

    Raises
    ------
    CompilerUnavailable
        When compilation is needed but the host has no C compiler.
    CodegenError
        When the compiler rejects the generated source.
    """
    digest = artifact_digest(source, opt_level, mt_mode)
    directory = resolve_cache_dir(cache_dir)
    # Claim the builder role for this digest, or wait behind whoever holds
    # it.  A waiter that wakes re-checks the memo: served means outcome
    # "memory" (exactly one thread ever reports "compiled" per digest); an
    # empty memo means the builder failed, and the waiter competes to
    # build — a failed compile can therefore never wedge the digest.
    while True:
        with _lock:
            kernel = _memory_cache.get(digest)
            if kernel is not None:
                return kernel, "memory"
            waiting_on = _inflight.get(digest)
            if waiting_on is None:
                latch = threading.Event()
                _inflight[digest] = latch
                break
        waiting_on.wait()
    try:
        kernel = None
        outcome = "compiled"
        if use_disk:
            kernel = _load_from_disk(directory, digest)
            if kernel is not None:
                outcome = "disk"
        if kernel is None:
            if find_c_compiler() is None:
                raise CompilerUnavailable("no C compiler (cc/gcc/clang) found on PATH")
            if use_disk:
                kernel = _compile_to_disk(directory, digest, source, opt_level, mt_mode)
            else:
                kernel = _compile_in_memory(source, opt_level, mt_mode)
        with _lock:
            _memory_cache[digest] = kernel
        return kernel, outcome
    finally:
        with _lock:
            _inflight.pop(digest, None)
        latch.set()
