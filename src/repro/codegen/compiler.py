"""Invoking the host C compiler and loading compiled kernels via ctypes.

The toolchain contract is deliberately small: any ``cc``-compatible driver
that accepts ``-shared -fPIC`` works.  Flags are part of the artifact
digest (see :mod:`repro.codegen.cache`), so changing the optimization
level can never pick up a stale shared library.

``-fwrapv`` is load-bearing for bitwise parity: NumPy's integer arithmetic
wraps, and without the flag C signed overflow is undefined behaviour the
optimizer may exploit.  ``-ffast-math`` is never passed for the same
reason.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
from typing import Optional, Tuple

from repro.codegen.emit_c import KERNEL_SYMBOL


class CodegenError(Exception):
    """Raised when native compilation or artifact loading fails."""


class CompilerUnavailable(CodegenError):
    """Raised when no C compiler can be found on the host."""


_COMPILER_SEARCH = ("cc", "gcc", "clang")
_compiler_cache: Optional[Tuple[bool, Optional[str]]] = None


def find_c_compiler() -> Optional[str]:
    """Locate the C compiler driver, or ``None`` when the host has none.

    ``REPRO_CC`` overrides the search; otherwise the first of ``cc``,
    ``gcc``, ``clang`` found on ``PATH`` wins.  The result is cached for
    the process (compilers do not appear mid-run).
    """
    global _compiler_cache
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    if _compiler_cache is None:
        found = None
        for candidate in _COMPILER_SEARCH:
            found = shutil.which(candidate)
            if found:
                break
        _compiler_cache = (True, found)
    return _compiler_cache[1]


def compile_flags(opt_level: int) -> Tuple[str, ...]:
    """The compiler flags for one artifact; part of the artifact digest."""
    level = min(3, max(0, int(opt_level)))
    return (
        f"-O{level}",
        "-shared",
        "-fPIC",
        "-fwrapv",
        "-fno-strict-aliasing",
    )


def compile_shared_library(
    source_path: str, output_path: str, opt_level: int, compiler: Optional[str] = None
) -> None:
    """Compile one generated C file into a shared library.

    Raises
    ------
    CompilerUnavailable
        When no compiler exists on the host.
    CodegenError
        When the compiler exits non-zero (its stderr is included).
    """
    compiler = compiler if compiler is not None else find_c_compiler()
    if compiler is None:
        raise CompilerUnavailable("no C compiler (cc/gcc/clang) found on PATH")
    command = [compiler, *compile_flags(opt_level), "-o", output_path, source_path, "-lm"]
    proc = subprocess.run(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        raise CodegenError(
            f"{compiler} failed ({proc.returncode}) for {source_path}:\n{proc.stderr}"
        )


class CompiledKernel:
    """A loaded native kernel: the shared library plus its typed entry point.

    ctypes releases the GIL around foreign calls, so tiles of one step
    genuinely overlap when the parallel scaffolding launches compiled
    kernels from worker threads.
    """

    __slots__ = ("path", "_library", "fn")

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._library = ctypes.CDLL(path)
            self.fn = getattr(self._library, KERNEL_SYMBOL)
        except (OSError, AttributeError) as exc:
            raise CodegenError(f"cannot load compiled kernel {path}: {exc}") from None
        self.fn.argtypes = (
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_int64),
        )
        self.fn.restype = None
