"""Invoking the host C compiler and loading compiled kernels via ctypes.

The toolchain contract is deliberately small: any ``cc``-compatible driver
that accepts ``-shared -fPIC`` works.  Flags are part of the artifact
digest (see :mod:`repro.codegen.cache`), so changing the optimization
level can never pick up a stale shared library.

``-fwrapv`` is load-bearing for bitwise parity: NumPy's integer arithmetic
wraps, and without the flag C signed overflow is undefined behaviour the
optimizer may exploit.  ``-ffast-math`` is never passed for the same
reason.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
from typing import Optional, Tuple

from repro.codegen.emit_c import KERNEL_SYMBOL, MT_KERNEL_SYMBOL


class CodegenError(Exception):
    """Raised when native compilation or artifact loading fails."""


class CompilerUnavailable(CodegenError):
    """Raised when no C compiler can be found on the host."""


_COMPILER_SEARCH = ("cc", "gcc", "clang")
_compiler_cache: Optional[Tuple[bool, Optional[str]]] = None


def find_c_compiler() -> Optional[str]:
    """Locate the C compiler driver, or ``None`` when the host has none.

    ``REPRO_CC`` overrides the search; otherwise the first of ``cc``,
    ``gcc``, ``clang`` found on ``PATH`` wins.  The result is cached for
    the process (compilers do not appear mid-run).
    """
    global _compiler_cache
    override = os.environ.get("REPRO_CC")
    if override:
        return override if shutil.which(override) else None
    if _compiler_cache is None:
        found = None
        for candidate in _COMPILER_SEARCH:
            found = shutil.which(candidate)
            if found:
                break
        _compiler_cache = (True, found)
    return _compiler_cache[1]


#: Extra compiler/linker flags per in-kernel threading mode.  ``pthread``
#: compiles the artifact's persistent worker pool; ``openmp`` is the
#: fallback for toolchains without ``-pthread``; ``serial`` threads nothing
#: (the mt entry point still exists and runs the whole nest on the caller).
_MT_FLAGS = {
    "pthread": ("-pthread",),
    "openmp": ("-fopenmp",),
    "serial": (),
}

MT_MODES = tuple(_MT_FLAGS)


def compile_flags(opt_level: int, mt_mode: str = "serial") -> Tuple[str, ...]:
    """The compiler flags for one artifact; part of the artifact digest."""
    level = min(3, max(0, int(opt_level)))
    return (
        f"-O{level}",
        "-shared",
        "-fPIC",
        "-fwrapv",
        "-fno-strict-aliasing",
    ) + _MT_FLAGS[mt_mode]


#: Minimal probe sources: compiling (and linking) one of these as a shared
#: library is exactly the toolchain contract the matching emission mode
#: relies on, so a successful probe cannot produce an uncompilable kernel.
_MT_PROBE_SOURCE = {
    "pthread": (
        "#include <pthread.h>\n"
        "static void *probe_worker(void *arg) { return arg; }\n"
        "int repro_probe(void) {\n"
        "    pthread_t tid;\n"
        "    if (pthread_create(&tid, 0, probe_worker, 0)) return 1;\n"
        "    pthread_join(tid, 0);\n"
        "    return 0;\n"
        "}\n"
    ),
    "openmp": (
        "int repro_probe(void) {\n"
        "    int total = 0;\n"
        "    int index;\n"
        "#pragma omp parallel for reduction(+:total)\n"
        "    for (index = 0; index < 4; ++index) total += index;\n"
        "    return total;\n"
        "}\n"
    ),
}

_mt_mode_cache: Optional[str] = None


def _probe_mt_mode(compiler: str, mode: str) -> bool:
    workdir = tempfile.mkdtemp(prefix="repro-mt-probe-")
    try:
        c_path = os.path.join(workdir, "probe.c")
        so_path = os.path.join(workdir, "probe.so")
        with open(c_path, "w", encoding="utf-8") as handle:
            handle.write(_MT_PROBE_SOURCE[mode])
        try:
            compile_shared_library(c_path, so_path, 0, compiler, mt_mode=mode)
        except CodegenError:
            return False
        return True
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


def select_mt_mode() -> str:
    """The best in-kernel threading mode this host's toolchain supports.

    ``pthread`` when ``-pthread`` compiles and links, else ``openmp`` when
    ``-fopenmp`` does, else ``serial``.  Probed once per process (toolchains
    do not change mid-run); the result changes the emitted source and the
    compile flags, both of which join the artifact digest.
    """
    global _mt_mode_cache
    if _mt_mode_cache is None:
        compiler = find_c_compiler()
        if compiler is None:
            _mt_mode_cache = "serial"
        else:
            for mode in ("pthread", "openmp"):
                if _probe_mt_mode(compiler, mode):
                    _mt_mode_cache = mode
                    break
            else:
                _mt_mode_cache = "serial"
    return _mt_mode_cache


def compile_shared_library(
    source_path: str,
    output_path: str,
    opt_level: int,
    compiler: Optional[str] = None,
    mt_mode: str = "serial",
) -> None:
    """Compile one generated C file into a shared library.

    Raises
    ------
    CompilerUnavailable
        When no compiler exists on the host.
    CodegenError
        When the compiler exits non-zero (its stderr is included).
    """
    compiler = compiler if compiler is not None else find_c_compiler()
    if compiler is None:
        raise CompilerUnavailable("no C compiler (cc/gcc/clang) found on PATH")
    command = [
        compiler,
        *compile_flags(opt_level, mt_mode),
        "-o",
        output_path,
        source_path,
        "-lm",
    ]
    proc = subprocess.run(
        command, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        raise CodegenError(
            f"{compiler} failed ({proc.returncode}) for {source_path}:\n{proc.stderr}"
        )


class CompiledKernel:
    """A loaded native kernel: the shared library plus its typed entry point.

    ctypes releases the GIL around foreign calls, so tiles of one step
    genuinely overlap when the parallel scaffolding launches compiled
    kernels from worker threads.
    """

    __slots__ = ("path", "_library", "fn", "fn_mt")

    def __init__(self, path: str) -> None:
        self.path = path
        try:
            self._library = ctypes.CDLL(path)
            self.fn = getattr(self._library, KERNEL_SYMBOL)
        except (OSError, AttributeError) as exc:
            raise CodegenError(f"cannot load compiled kernel {path}: {exc}") from None
        self.fn.argtypes = (
            ctypes.POINTER(ctypes.c_int64),
            ctypes.POINTER(ctypes.c_void_p),
            ctypes.POINTER(ctypes.c_int64),
        )
        self.fn.restype = None
        # Every schema-2 artifact exports the chunked entry point; hand-fed
        # sources (tests, probes) may not, so its absence merely disables
        # the one-call multi-thread launch path for this kernel.
        self.fn_mt = getattr(self._library, MT_KERNEL_SYMBOL, None)
        if self.fn_mt is not None:
            self.fn_mt.argtypes = (
                ctypes.POINTER(ctypes.c_int64),
                ctypes.POINTER(ctypes.c_void_p),
                ctypes.POINTER(ctypes.c_int64),
                ctypes.c_int32,
            )
            self.fn_mt.restype = None
