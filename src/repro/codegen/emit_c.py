"""C99 emission from the loop-nest IR.

One :class:`~repro.codegen.loopir.LoopNest` becomes one C translation unit
exporting a single symbol::

    void repro_kernel(const int64_t *dims,   /* rank extents          */
                      char **ptrs,          /* one base ptr per slot  */
                      const int64_t *strides /* slot-major, in bytes  */)

Geometry is entirely runtime: the artifact is compiled once per canonical
kernel *form* and launched with whatever extents, pointers and strides the
current tile supplies.  ``ptrs[i]`` already includes the view's element
offset; ``strides[i * rank + d]`` is slot ``i``'s byte stride along loop
dimension ``d``.

Two emission decisions carry the performance win:

* **Store-to-load forwarding with dead-store elision** — every slot gets a
  scalar local; intermediate stores stay in registers and only the *last*
  store per slot writes memory.  This is sound because identical views
  share a slot and lowering rejected every overlapping-window kernel, so
  no other slot can observe an elided intermediate.  Slots liveness proved
  instruction-local (``LoopNest.elided_slots``) go further: they get no
  pointer, no strides and no memory lane at all — their value exists only
  in the scalar local, so a fused chain's temporaries cost zero traffic.
* **A contiguous fast path** — when every slot's innermost stride equals
  its item size the body is re-emitted over typed pointers with unit
  index arithmetic, which the C compiler auto-vectorizes; the strided
  generic body remains the fallback inside the same artifact.

Both bodies are generated from the same statement list, so they cannot
diverge semantically.  Emission is deterministic: equal loop nests produce
byte-identical source, which is what makes content-hashed artifact caching
coherent.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.bytecode import dtypes
from repro.codegen.loopir import Cast, Literal, Load, LoopNest, Op, Store

#: Exported symbol name of every generated kernel.
KERNEL_SYMBOL = "repro_kernel"

_CTYPE = {
    "BH_BOOL": "unsigned char",
    "BH_INT32": "int32_t",
    "BH_INT64": "int64_t",
    "BH_FLOAT32": "float",
    "BH_FLOAT64": "double",
}

#: Fixed helper preamble shared by every artifact.  The float max/min keep
#: NumPy's NaN propagation (fmax/fmin would drop it); the mod helpers
#: replicate npy_divmod's floored remainder, including the signed-zero rule
#: and the integer guards NumPy applies before hitting C's division traps.
_PREAMBLE = """\
#include <stdint.h>
#include <math.h>

static inline double repro_max_f64(double a, double b) { return (a > b || a != a) ? a : b; }
static inline double repro_min_f64(double a, double b) { return (a < b || a != a) ? a : b; }
static inline float repro_max_f32(float a, float b) { return (a > b || a != a) ? a : b; }
static inline float repro_min_f32(float a, float b) { return (a < b || a != a) ? a : b; }

static inline double repro_mod_f64(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0) { if ((b < 0.0) != (r < 0.0)) r += b; }
    else { r = copysign(0.0, b); }
    return r;
}
static inline float repro_mod_f32(float a, float b) {
    float r = fmodf(a, b);
    if (r != 0.0f) { if ((b < 0.0f) != (r < 0.0f)) r += b; }
    else { r = copysignf(0.0f, b); }
    return r;
}
static inline int64_t repro_mod_i64(int64_t a, int64_t b) {
    int64_t r;
    if (b == 0 || b == -1) return 0;
    r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline int32_t repro_mod_i32(int32_t a, int32_t b) {
    int32_t r;
    if (b == 0 || b == -1) return 0;
    r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
"""

_MOD_HELPER = {
    "BH_FLOAT64": "repro_mod_f64",
    "BH_FLOAT32": "repro_mod_f32",
    "BH_INT64": "repro_mod_i64",
    "BH_INT32": "repro_mod_i32",
}

_MINMAX_HELPER = {
    ("max", "BH_FLOAT64"): "repro_max_f64",
    ("max", "BH_FLOAT32"): "repro_max_f32",
    ("min", "BH_FLOAT64"): "repro_min_f64",
    ("min", "BH_FLOAT32"): "repro_min_f32",
}

_BINARY_SYMBOL = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_COMPARE_SYMBOL = {"gt": ">", "ge": ">=", "lt": "<", "le": "<=", "eq": "==", "ne": "!="}


def _float_literal(value: float, suffix: str, ctype: str) -> str:
    if math.isnan(value):
        return f"(({ctype})NAN)"
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"({sign}({ctype})INFINITY)"
    text = float(value).hex()
    if text.startswith("-"):
        return f"(-{text[1:]}{suffix})"
    return f"({text}{suffix})"


def _literal_c(literal: Literal) -> str:
    name = literal.dtype_name
    value = literal.value
    if name == "BH_BOOL":
        return "1" if bool(value) else "0"
    if name == "BH_INT32":
        return f"({int(value)})"
    if name == "BH_INT64":
        ivalue = int(value)
        if ivalue == -(2**63):
            return "(-9223372036854775807LL - 1)"
        return f"({ivalue}LL)"
    if name == "BH_FLOAT32":
        return _float_literal(float(np.float32(value)), "f", "float")
    return _float_literal(float(value), "", "double")


def _cast_c(expr_c: str, dtype_name: str) -> str:
    if dtype_name == "BH_BOOL":
        # NumPy's unsafe cast to bool is a != 0 test, not a value truncation.
        return f"(unsigned char)(({expr_c}) != 0)"
    return f"({_CTYPE[dtype_name]})({expr_c})"


def _expr_c(expr) -> str:
    if isinstance(expr, Load):
        return f"v{expr.slot}"
    if isinstance(expr, Literal):
        return _literal_c(expr)
    if isinstance(expr, Cast):
        return _cast_c(_expr_c(expr.arg), expr.dtype_name)
    if isinstance(expr, Op):
        return _op_c(expr)
    raise TypeError(f"unknown IR expression {expr!r}")


def _op_c(op: Op) -> str:
    args = [_expr_c(arg) for arg in op.args]
    kind = op.kind
    if kind in _BINARY_SYMBOL:
        return f"(({args[0]}) {_BINARY_SYMBOL[kind]} ({args[1]}))"
    if kind in _COMPARE_SYMBOL:
        return f"(({args[0]}) {_COMPARE_SYMBOL[kind]} ({args[1]}))"
    if kind in ("max", "min"):
        helper = _MINMAX_HELPER.get((kind, op.dtype_name))
        if helper is not None:
            return f"{helper}({args[0]}, {args[1]})"
        symbol = ">" if kind == "max" else "<"
        return f"((({args[0]}) {symbol} ({args[1]})) ? ({args[0]}) : ({args[1]}))"
    if kind == "mod":
        return f"{_MOD_HELPER[op.dtype_name]}({args[0]}, {args[1]})"
    if kind == "neg":
        return f"(-({args[0]}))"
    if kind == "abs":
        if op.dtype_name == "BH_FLOAT64":
            return f"fabs({args[0]})"
        if op.dtype_name == "BH_FLOAT32":
            return f"fabsf({args[0]})"
        if op.dtype_name == "BH_BOOL":
            return args[0]
        return f"((({args[0]}) < 0) ? (-({args[0]})) : ({args[0]}))"
    if kind == "sqrt":
        func = "sqrtf" if op.dtype_name == "BH_FLOAT32" else "sqrt"
        return f"{func}({args[0]})"
    if kind == "recip":
        one = "1.0f" if op.dtype_name == "BH_FLOAT32" else "1.0"
        return f"(({one}) / ({args[0]}))"
    if kind == "land":
        return f"((({args[0]}) != 0) && (({args[1]}) != 0))"
    if kind == "lor":
        return f"((({args[0]}) != 0) || (({args[1]}) != 0))"
    if kind == "lnot":
        return f"(({args[0]}) == 0)"
    raise TypeError(f"unknown IR op kind {kind!r}")


def _loads_of(expr, out: List[int]) -> None:
    if isinstance(expr, Load):
        out.append(expr.slot)
    elif isinstance(expr, Cast):
        _loads_of(expr.arg, out)
    elif isinstance(expr, Op):
        for arg in expr.args:
            _loads_of(arg, out)


class _BodyEmitter:
    """Emits one loop-nest body; ``contiguous`` picks the addressing mode."""

    def __init__(self, nest: LoopNest, contiguous: bool) -> None:
        self.nest = nest
        self.contiguous = contiguous
        self.lines: List[str] = []
        self.itemsizes = [dtypes.from_name(n).itemsize for n in nest.slot_dtypes]
        # Statement index of the final store per slot: only these write memory.
        self.last_store: Dict[int, int] = {
            index: position
            for position, statement in enumerate(nest.body)
            for index in (statement.slot,)
        }

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * (depth + 1) + text)

    def _base_ptr(self, slot: int, level: int) -> str:
        return f"p{slot}" if level < 0 else f"b{slot}_{level}"

    def _element(self, slot: int) -> str:
        """Innermost-loop lvalue for one slot's current element."""
        rank = self.nest.rank
        base = self._base_ptr(slot, rank - 2)
        ctype = _CTYPE[self.nest.slot_dtypes[slot]]
        index = f"i{rank - 1}"
        if self.contiguous:
            return f"(({ctype} *){base})[{index}]"
        return f"(*({ctype} *)({base} + {index} * s{slot}_{rank - 1}))"

    def emit(self) -> List[str]:
        rank = self.nest.rank
        num_slots = self.nest.num_slots
        for depth in range(rank - 1):
            self.line(depth, f"for (int64_t i{depth} = 0; i{depth} < n{depth}; ++i{depth}) {{")
            for slot in range(num_slots):
                if slot in self.nest.elided_slots:
                    continue
                prev = self._base_ptr(slot, depth - 1)
                self.line(
                    depth + 1,
                    f"char *b{slot}_{depth} = {prev} + i{depth} * s{slot}_{depth};",
                )
        depth = rank - 1
        self.line(depth, f"for (int64_t i{depth} = 0; i{depth} < n{depth}; ++i{depth}) {{")
        self._emit_statements(depth + 1)
        self.line(depth, "}")
        for depth in range(rank - 2, -1, -1):
            self.line(depth, "}")
        return self.lines

    def _emit_statements(self, depth: int) -> None:
        defined = set()
        for position, statement in enumerate(self.nest.body):
            loads: List[int] = []
            _loads_of(statement.expr, loads)
            for slot in loads:
                if slot in defined:
                    continue
                defined.add(slot)
                ctype = _CTYPE[self.nest.slot_dtypes[slot]]
                self.line(depth, f"{ctype} v{slot} = {self._element(slot)};")
            out_slot = statement.slot
            value = _cast_c(_expr_c(statement.expr), self.nest.slot_dtypes[out_slot])
            if out_slot in defined:
                self.line(depth, f"v{out_slot} = {value};")
            else:
                defined.add(out_slot)
                ctype = _CTYPE[self.nest.slot_dtypes[out_slot]]
                self.line(depth, f"{ctype} v{out_slot} = {value};")
            if (
                self.last_store[out_slot] == position
                and out_slot not in self.nest.elided_slots
            ):
                self.line(depth, f"{self._element(out_slot)} = v{out_slot};")


def emit_kernel_source(nest: LoopNest) -> str:
    """Emit the complete, deterministic C source for one loop nest."""
    rank = nest.rank
    num_slots = nest.num_slots
    itemsizes = [dtypes.from_name(name).itemsize for name in nest.slot_dtypes]
    lines = [
        "/* Generated by repro.codegen; one artifact per canonical kernel form. */",
        _PREAMBLE,
        f"void {KERNEL_SYMBOL}(const int64_t *dims, char **ptrs, const int64_t *strides)",
        "{",
    ]
    for depth in range(rank):
        lines.append(f"    const int64_t n{depth} = dims[{depth}];")
    for slot in range(num_slots):
        if slot in nest.elided_slots:
            continue  # no memory lane: the slot lives in a scalar local only
        lines.append(f"    char * const p{slot} = ptrs[{slot}];")
        for depth in range(rank):
            lines.append(
                f"    const int64_t s{slot}_{depth} = strides[{slot * rank + depth}];"
            )
    unit = " && ".join(
        f"s{slot}_{rank - 1} == {itemsizes[slot]}"
        for slot in range(num_slots)
        if slot not in nest.elided_slots
    ) or "1"
    lines.append(f"    if ({unit}) {{")
    lines.extend("    " + text for text in _BodyEmitter(nest, contiguous=True).emit())
    lines.append("    } else {")
    lines.extend("    " + text for text in _BodyEmitter(nest, contiguous=False).emit())
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"
