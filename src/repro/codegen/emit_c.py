"""C99 emission from the loop-nest IR.

One :class:`~repro.codegen.loopir.LoopNest` becomes one C translation unit
exporting two symbols::

    void repro_kernel(const int64_t *dims,   /* rank extents          */
                      char **ptrs,          /* one base ptr per slot  */
                      const int64_t *strides /* slot-major, in bytes  */)

    void repro_kernel_mt(const int64_t *dims, char **ptrs,
                         const int64_t *strides, int32_t nthreads)

Geometry is entirely runtime: the artifact is compiled once per canonical
kernel *form* and launched with whatever extents, pointers and strides the
current tile supplies.  ``ptrs[i]`` already includes the view's element
offset; ``strides[i * rank + d]`` is slot ``i``'s byte stride along loop
dimension ``d``.

``repro_kernel_mt`` is the chunked entry point: it block-partitions the
outermost loop into up to ``nthreads`` row ranges and runs them on a
persistent in-artifact pthread pool (``mt_mode="pthread"``), an OpenMP
parallel-for (``"openmp"``), or serially on the caller (``"serial"``).
``nthreads`` is a *runtime* argument — it never enters the artifact digest,
so one compiled artifact serves every thread count.  The emission mode
changes the source text (and the compile flags), so it does.
:class:`~repro.codegen.loopir.ReduceNest` forms get their own translation
unit via :func:`emit_reduce_source` with the same two-symbol ABI; threaded
reductions collect per-chunk partials and tree-combine them pairwise in the
tiled parallel backend's fixed order.

Two emission decisions carry the performance win:

* **Store-to-load forwarding with dead-store elision** — every slot gets a
  scalar local; intermediate stores stay in registers and only the *last*
  store per slot writes memory.  This is sound because identical views
  share a slot and lowering rejected every overlapping-window kernel, so
  no other slot can observe an elided intermediate.  Slots liveness proved
  instruction-local (``LoopNest.elided_slots``) go further: they get no
  pointer, no strides and no memory lane at all — their value exists only
  in the scalar local, so a fused chain's temporaries cost zero traffic.
* **A contiguous fast path** — when every slot's innermost stride equals
  its item size the body is re-emitted over typed pointers with unit
  index arithmetic, which the C compiler auto-vectorizes; the strided
  generic body remains the fallback inside the same artifact.

Both bodies are generated from the same statement list, so they cannot
diverge semantically.  Emission is deterministic: equal loop nests produce
byte-identical source, which is what makes content-hashed artifact caching
coherent.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.bytecode import dtypes
from repro.codegen.loopir import Cast, Literal, Load, LoopNest, Op, ReduceNest, Store

#: Exported symbol name of every generated kernel.
KERNEL_SYMBOL = "repro_kernel"

#: Exported chunked entry point: same geometry arguments plus a runtime
#: thread count.  One call covers the whole step; the artifact partitions
#: the outermost splittable loop internally (pthread pool, OpenMP, or a
#: straight serial call, depending on the emission mode).
MT_KERNEL_SYMBOL = "repro_kernel_mt"

#: Hard cap on in-kernel chunks; bounds the pool and the partial arrays.
MT_MAX_PARTS = 64

_CTYPE = {
    "BH_BOOL": "unsigned char",
    "BH_INT32": "int32_t",
    "BH_INT64": "int64_t",
    "BH_FLOAT32": "float",
    "BH_FLOAT64": "double",
}

#: Fixed helper preamble shared by every artifact.  The float max/min keep
#: NumPy's NaN propagation (fmax/fmin would drop it); the mod helpers
#: replicate npy_divmod's floored remainder, including the signed-zero rule
#: and the integer guards NumPy applies before hitting C's division traps.
_PREAMBLE = """\
#include <stdint.h>
#include <math.h>

static inline double repro_max_f64(double a, double b) { return (a > b || a != a) ? a : b; }
static inline double repro_min_f64(double a, double b) { return (a < b || a != a) ? a : b; }
static inline float repro_max_f32(float a, float b) { return (a > b || a != a) ? a : b; }
static inline float repro_min_f32(float a, float b) { return (a < b || a != a) ? a : b; }

static inline double repro_mod_f64(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0) { if ((b < 0.0) != (r < 0.0)) r += b; }
    else { r = copysign(0.0, b); }
    return r;
}
static inline float repro_mod_f32(float a, float b) {
    float r = fmodf(a, b);
    if (r != 0.0f) { if ((b < 0.0f) != (r < 0.0f)) r += b; }
    else { r = copysignf(0.0f, b); }
    return r;
}
static inline int64_t repro_mod_i64(int64_t a, int64_t b) {
    int64_t r;
    if (b == 0 || b == -1) return 0;
    r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
static inline int32_t repro_mod_i32(int32_t a, int32_t b) {
    int32_t r;
    if (b == 0 || b == -1) return 0;
    r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}
"""

_MOD_HELPER = {
    "BH_FLOAT64": "repro_mod_f64",
    "BH_FLOAT32": "repro_mod_f32",
    "BH_INT64": "repro_mod_i64",
    "BH_INT32": "repro_mod_i32",
}

_MINMAX_HELPER = {
    ("max", "BH_FLOAT64"): "repro_max_f64",
    ("max", "BH_FLOAT32"): "repro_max_f32",
    ("min", "BH_FLOAT64"): "repro_min_f64",
    ("min", "BH_FLOAT32"): "repro_min_f32",
}

_BINARY_SYMBOL = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_COMPARE_SYMBOL = {"gt": ">", "ge": ">=", "lt": "<", "le": "<=", "eq": "==", "ne": "!="}


def _float_literal(value: float, suffix: str, ctype: str) -> str:
    if math.isnan(value):
        return f"(({ctype})NAN)"
    if math.isinf(value):
        sign = "-" if value < 0 else ""
        return f"({sign}({ctype})INFINITY)"
    text = float(value).hex()
    if text.startswith("-"):
        return f"(-{text[1:]}{suffix})"
    return f"({text}{suffix})"


def _literal_c(literal: Literal) -> str:
    name = literal.dtype_name
    value = literal.value
    if name == "BH_BOOL":
        return "1" if bool(value) else "0"
    if name == "BH_INT32":
        return f"({int(value)})"
    if name == "BH_INT64":
        ivalue = int(value)
        if ivalue == -(2**63):
            return "(-9223372036854775807LL - 1)"
        return f"({ivalue}LL)"
    if name == "BH_FLOAT32":
        return _float_literal(float(np.float32(value)), "f", "float")
    return _float_literal(float(value), "", "double")


def _cast_c(expr_c: str, dtype_name: str) -> str:
    if dtype_name == "BH_BOOL":
        # NumPy's unsafe cast to bool is a != 0 test, not a value truncation.
        return f"(unsigned char)(({expr_c}) != 0)"
    return f"({_CTYPE[dtype_name]})({expr_c})"


def _expr_c(expr) -> str:
    if isinstance(expr, Load):
        return f"v{expr.slot}"
    if isinstance(expr, Literal):
        return _literal_c(expr)
    if isinstance(expr, Cast):
        return _cast_c(_expr_c(expr.arg), expr.dtype_name)
    if isinstance(expr, Op):
        return _op_c(expr)
    raise TypeError(f"unknown IR expression {expr!r}")


def _op_c(op: Op) -> str:
    args = [_expr_c(arg) for arg in op.args]
    kind = op.kind
    if kind in _BINARY_SYMBOL:
        return f"(({args[0]}) {_BINARY_SYMBOL[kind]} ({args[1]}))"
    if kind in _COMPARE_SYMBOL:
        return f"(({args[0]}) {_COMPARE_SYMBOL[kind]} ({args[1]}))"
    if kind in ("max", "min"):
        helper = _MINMAX_HELPER.get((kind, op.dtype_name))
        if helper is not None:
            return f"{helper}({args[0]}, {args[1]})"
        symbol = ">" if kind == "max" else "<"
        return f"((({args[0]}) {symbol} ({args[1]})) ? ({args[0]}) : ({args[1]}))"
    if kind == "mod":
        return f"{_MOD_HELPER[op.dtype_name]}({args[0]}, {args[1]})"
    if kind == "neg":
        return f"(-({args[0]}))"
    if kind == "abs":
        if op.dtype_name == "BH_FLOAT64":
            return f"fabs({args[0]})"
        if op.dtype_name == "BH_FLOAT32":
            return f"fabsf({args[0]})"
        if op.dtype_name == "BH_BOOL":
            return args[0]
        return f"((({args[0]}) < 0) ? (-({args[0]})) : ({args[0]}))"
    if kind == "sqrt":
        func = "sqrtf" if op.dtype_name == "BH_FLOAT32" else "sqrt"
        return f"{func}({args[0]})"
    if kind == "recip":
        one = "1.0f" if op.dtype_name == "BH_FLOAT32" else "1.0"
        return f"(({one}) / ({args[0]}))"
    if kind == "land":
        return f"((({args[0]}) != 0) && (({args[1]}) != 0))"
    if kind == "lor":
        return f"((({args[0]}) != 0) || (({args[1]}) != 0))"
    if kind == "lnot":
        return f"(({args[0]}) == 0)"
    raise TypeError(f"unknown IR op kind {kind!r}")


def _loads_of(expr, out: List[int]) -> None:
    if isinstance(expr, Load):
        out.append(expr.slot)
    elif isinstance(expr, Cast):
        _loads_of(expr.arg, out)
    elif isinstance(expr, Op):
        for arg in expr.args:
            _loads_of(arg, out)


class _BodyEmitter:
    """Emits one loop-nest body; ``contiguous`` picks the addressing mode."""

    def __init__(self, nest: LoopNest, contiguous: bool) -> None:
        self.nest = nest
        self.contiguous = contiguous
        self.lines: List[str] = []
        self.itemsizes = [dtypes.from_name(n).itemsize for n in nest.slot_dtypes]
        # Statement index of the final store per slot: only these write memory.
        self.last_store: Dict[int, int] = {
            index: position
            for position, statement in enumerate(nest.body)
            for index in (statement.slot,)
        }

    def line(self, depth: int, text: str) -> None:
        self.lines.append("    " * (depth + 1) + text)

    def _base_ptr(self, slot: int, level: int) -> str:
        return f"p{slot}" if level < 0 else f"b{slot}_{level}"

    def _element(self, slot: int) -> str:
        """Innermost-loop lvalue for one slot's current element."""
        rank = self.nest.rank
        base = self._base_ptr(slot, rank - 2)
        ctype = _CTYPE[self.nest.slot_dtypes[slot]]
        index = f"i{rank - 1}"
        if self.contiguous:
            return f"(({ctype} *){base})[{index}]"
        return f"(*({ctype} *)({base} + {index} * s{slot}_{rank - 1}))"

    def _loop_header(self, depth: int) -> str:
        # Depth 0 runs over the caller-supplied row range so the same body
        # serves both the serial entry (0..dims[0]) and one mt chunk.
        low = "row_start" if depth == 0 else "0"
        high = "row_stop" if depth == 0 else f"n{depth}"
        return f"for (int64_t i{depth} = {low}; i{depth} < {high}; ++i{depth}) {{"

    def emit(self) -> List[str]:
        rank = self.nest.rank
        num_slots = self.nest.num_slots
        for depth in range(rank - 1):
            self.line(depth, self._loop_header(depth))
            for slot in range(num_slots):
                if slot in self.nest.elided_slots:
                    continue
                prev = self._base_ptr(slot, depth - 1)
                self.line(
                    depth + 1,
                    f"char *b{slot}_{depth} = {prev} + i{depth} * s{slot}_{depth};",
                )
        depth = rank - 1
        self.line(depth, self._loop_header(depth))
        self._emit_statements(depth + 1)
        self.line(depth, "}")
        for depth in range(rank - 2, -1, -1):
            self.line(depth, "}")
        return self.lines

    def _emit_statements(self, depth: int) -> None:
        defined = set()
        for position, statement in enumerate(self.nest.body):
            loads: List[int] = []
            _loads_of(statement.expr, loads)
            for slot in loads:
                if slot in defined:
                    continue
                defined.add(slot)
                ctype = _CTYPE[self.nest.slot_dtypes[slot]]
                self.line(depth, f"{ctype} v{slot} = {self._element(slot)};")
            out_slot = statement.slot
            value = _cast_c(_expr_c(statement.expr), self.nest.slot_dtypes[out_slot])
            if out_slot in defined:
                self.line(depth, f"v{out_slot} = {value};")
            else:
                defined.add(out_slot)
                ctype = _CTYPE[self.nest.slot_dtypes[out_slot]]
                self.line(depth, f"{ctype} v{out_slot} = {value};")
            if (
                self.last_store[out_slot] == position
                and out_slot not in self.nest.elided_slots
            ):
                self.line(depth, f"{self._element(out_slot)} = v{out_slot};")


# ---------------------------------------------------------------------------
# In-kernel threading scaffolding
# ---------------------------------------------------------------------------

_MT_DEFINE = f"#define REPRO_MT_MAX_PARTS {MT_MAX_PARTS}"

#: Persistent worker pool compiled into every pthread-mode artifact.  The
#: pool's threads are detached and live for the process: launches after the
#: first pay no thread start-up.  ``repro_mt_launch_mu`` serializes whole
#: launches, so concurrent callers of one artifact queue up rather than
#: interleave task generations; the inner mutex + generation counter is the
#: arm/ack handshake with the workers.
_MT_POOL = """\
#include <pthread.h>

typedef struct {
    const int64_t *dims;
    char **ptrs;
    const int64_t *strides;
    int64_t start;
    int64_t stop;
    void *scratch;
} repro_mt_task;

static void repro_mt_run(const repro_mt_task *task);

static pthread_mutex_t repro_mt_launch_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_mutex_t repro_mt_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t repro_mt_wake = PTHREAD_COND_INITIALIZER;
static pthread_cond_t repro_mt_done = PTHREAD_COND_INITIALIZER;
static repro_mt_task repro_mt_tasks[REPRO_MT_MAX_PARTS];
static unsigned long repro_mt_generation = 0;
static int repro_mt_workers = 0;
static int repro_mt_armed = 0;
static int repro_mt_pending = 0;

static void *repro_mt_worker(void *arg)
{
    const int slot = (int)(intptr_t)arg;
    unsigned long seen = 0;
    for (;;) {
        repro_mt_task task;
        int armed;
        pthread_mutex_lock(&repro_mt_mu);
        while (repro_mt_generation == seen)
            pthread_cond_wait(&repro_mt_wake, &repro_mt_mu);
        seen = repro_mt_generation;
        armed = slot < repro_mt_armed;
        if (armed)
            task = repro_mt_tasks[slot];
        pthread_mutex_unlock(&repro_mt_mu);
        if (!armed)
            continue;
        repro_mt_run(&task);
        pthread_mutex_lock(&repro_mt_mu);
        if (--repro_mt_pending == 0)
            pthread_cond_signal(&repro_mt_done);
        pthread_mutex_unlock(&repro_mt_mu);
    }
    return 0;
}

/* Block-partition rows [0, rows) into `parts` chunks -- the first
 * rows % parts chunks get one extra row, matching the middleware's
 * partition_length -- then run chunk 0 on the calling thread and the rest
 * on pool workers.  When scratch is non-null, chunk i receives the address
 * scratch + i * scratch_stride (how reductions collect partials).  Returns
 * the number of chunks actually run: thread creation can fall short on a
 * constrained host, in which case the split shrinks to what exists. */
static int repro_mt_launch(const int64_t *dims, char **ptrs,
                           const int64_t *strides, int64_t rows, int parts,
                           void *scratch, int64_t scratch_stride)
{
    repro_mt_task own;
    int64_t chunk, extra, cursor;
    int index;
    pthread_mutex_lock(&repro_mt_launch_mu);
    pthread_mutex_lock(&repro_mt_mu);
    while (repro_mt_workers < parts - 1) {
        pthread_t tid;
        pthread_attr_t attr;
        if (pthread_attr_init(&attr) != 0)
            break;
        pthread_attr_setdetachstate(&attr, PTHREAD_CREATE_DETACHED);
        if (pthread_create(&tid, &attr, repro_mt_worker,
                           (void *)(intptr_t)repro_mt_workers) != 0) {
            pthread_attr_destroy(&attr);
            break;
        }
        pthread_attr_destroy(&attr);
        repro_mt_workers++;
    }
    if (parts - 1 > repro_mt_workers)
        parts = repro_mt_workers + 1;
    chunk = rows / parts;
    extra = rows % parts;
    cursor = 0;
    for (index = 0; index < parts; ++index) {
        const int64_t count = chunk + (index < extra ? 1 : 0);
        repro_mt_task *task = index == 0 ? &own : &repro_mt_tasks[index - 1];
        task->dims = dims;
        task->ptrs = ptrs;
        task->strides = strides;
        task->start = cursor;
        task->stop = cursor + count;
        task->scratch =
            scratch == 0 ? 0 : (char *)scratch + (int64_t)index * scratch_stride;
        cursor += count;
    }
    repro_mt_armed = parts - 1;
    repro_mt_pending = parts - 1;
    repro_mt_generation++;
    pthread_cond_broadcast(&repro_mt_wake);
    pthread_mutex_unlock(&repro_mt_mu);
    repro_mt_run(&own);
    pthread_mutex_lock(&repro_mt_mu);
    while (repro_mt_pending != 0)
        pthread_cond_wait(&repro_mt_done, &repro_mt_mu);
    pthread_mutex_unlock(&repro_mt_mu);
    pthread_mutex_unlock(&repro_mt_launch_mu);
    return parts;
}
"""


def _mt_clamp_lines(part_dim: int) -> List[str]:
    return [
        f"    const int64_t rows = dims[{part_dim}];",
        "    int parts = (int)nthreads;",
        "    if (parts > REPRO_MT_MAX_PARTS) parts = REPRO_MT_MAX_PARTS;",
        "    if ((int64_t)parts > rows) parts = (int)rows;",
    ]


def _mt_body_entry(mt_mode: str, part_dim: int) -> List[str]:
    """The chunked entry point for a body-style kernel (maps and axis
    reductions): splits ``dims[part_dim]`` into row ranges and hands each to
    ``repro_kernel_body``."""
    head = [
        f"void {MT_KERNEL_SYMBOL}(const int64_t *dims, char **ptrs, const int64_t *strides, int32_t nthreads)",
        "{",
    ]
    if mt_mode == "serial":
        return head + [
            "    (void)nthreads;",
            f"    repro_kernel_body(dims, ptrs, strides, 0, dims[{part_dim}]);",
            "}",
        ]
    clamp = _mt_clamp_lines(part_dim) + [
        "    if (parts <= 1) {",
        "        repro_kernel_body(dims, ptrs, strides, 0, rows);",
        "        return;",
        "    }",
    ]
    if mt_mode == "pthread":
        return [
            "static void repro_mt_run(const repro_mt_task *task)",
            "{",
            "    repro_kernel_body(task->dims, task->ptrs, task->strides, task->start, task->stop);",
            "}",
            "",
        ] + head + clamp + [
            "    repro_mt_launch(dims, ptrs, strides, rows, parts, 0, 0);",
            "}",
        ]
    return head + clamp + [
        "    {",
        "        const int64_t chunk = rows / parts;",
        "        const int64_t extra = rows % parts;",
        "        int index;",
        "#if defined(_OPENMP)",
        "#pragma omp parallel for schedule(static) num_threads(parts)",
        "#endif",
        "        for (index = 0; index < parts; ++index) {",
        "            const int64_t start = (int64_t)index * chunk + (index < extra ? index : extra);",
        "            const int64_t stop = start + chunk + (index < extra ? 1 : 0);",
        "            repro_kernel_body(dims, ptrs, strides, start, stop);",
        "        }",
        "    }",
        "}",
    ]


def emit_kernel_source(nest: LoopNest, mt_mode: str = "serial") -> str:
    """Emit the complete, deterministic C source for one loop nest."""
    rank = nest.rank
    num_slots = nest.num_slots
    itemsizes = [dtypes.from_name(name).itemsize for name in nest.slot_dtypes]
    lines = [
        "/* Generated by repro.codegen; one artifact per canonical kernel form. */",
        _PREAMBLE,
        _MT_DEFINE,
        "",
    ]
    if mt_mode == "pthread":
        lines.append(_MT_POOL)
    lines += [
        "static void repro_kernel_body(const int64_t *dims, char **ptrs, const int64_t *strides, int64_t row_start, int64_t row_stop)",
        "{",
    ]
    if rank == 1:
        lines.append("    (void)dims;")
    for depth in range(1, rank):
        lines.append(f"    const int64_t n{depth} = dims[{depth}];")
    for slot in range(num_slots):
        if slot in nest.elided_slots:
            continue  # no memory lane: the slot lives in a scalar local only
        lines.append(f"    char * const p{slot} = ptrs[{slot}];")
        for depth in range(rank):
            lines.append(
                f"    const int64_t s{slot}_{depth} = strides[{slot * rank + depth}];"
            )
    unit = " && ".join(
        f"s{slot}_{rank - 1} == {itemsizes[slot]}"
        for slot in range(num_slots)
        if slot not in nest.elided_slots
    ) or "1"
    lines.append(f"    if ({unit}) {{")
    lines.extend("    " + text for text in _BodyEmitter(nest, contiguous=True).emit())
    lines.append("    } else {")
    lines.extend("    " + text for text in _BodyEmitter(nest, contiguous=False).emit())
    lines.append("    }")
    lines.append("}")
    lines += [
        "",
        f"void {KERNEL_SYMBOL}(const int64_t *dims, char **ptrs, const int64_t *strides)",
        "{",
        "    repro_kernel_body(dims, ptrs, strides, 0, dims[0]);",
        "}",
        "",
    ]
    lines += _mt_body_entry(mt_mode, 0)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Reduction emission
# ---------------------------------------------------------------------------


def _combine_c(kind: str, dtype_name: str, a: str, b: str) -> str:
    """One scalar combine step; mirrors the element-wise emission exactly so
    compiled reductions and compiled maps agree on every operator corner."""
    if kind == "add":
        return f"(({a}) + ({b}))"
    if kind == "mul":
        return f"(({a}) * ({b}))"
    helper = _MINMAX_HELPER.get((kind, dtype_name))
    if helper is not None:
        return f"{helper}({a}, {b})"
    symbol = ">" if kind == "max" else "<"
    return f"((({a}) {symbol} ({b})) ? ({a}) : ({b}))"


_TREE_COMBINE_COMMENT = (
    "        /* Pairwise tree combine in the tiled backend's fixed order:\n"
    "         * adjacent pairs, halving, odd tail carried -- so a threaded\n"
    "         * native reduction lands inside the exact relaxation contract\n"
    "         * the parallel backend already established. */"
)


def _tree_combine_lines(nest: "ReduceNest") -> List[str]:
    step = _combine_c(nest.kind, nest.acc_dtype, "partials[i]", "partials[i + 1]")
    return [
        _TREE_COMBINE_COMMENT,
        "        while (count > 1) {",
        "            int merged = 0;",
        "            int i;",
        "            for (i = 0; i + 1 < count; i += 2)",
        f"                partials[merged++] = {step};",
        "            if (count % 2)",
        "                partials[merged++] = partials[count - 1];",
        "            count = merged;",
        "        }",
        "        repro_kernel_store(ptrs, partials[0]);",
    ]


def _acc_load(nest: "ReduceNest", address: str) -> str:
    src = _CTYPE[nest.source_dtype]
    load = f"(*({src} *)({address}))"
    if nest.acc_dtype != nest.source_dtype:
        return f"({_CTYPE[nest.acc_dtype]}){load}"
    return load


def _emit_reduce_combine(nest: "ReduceNest", mt_mode: str) -> List[str]:
    """A rank-1 full reduction: serial fold + partials-combining mt entry."""
    acc = _CTYPE[nest.acc_dtype]
    fold_step = _combine_c(
        nest.kind, nest.acc_dtype, "acc", _acc_load(nest, "p0 + i * s0")
    )
    lines = [
        f"static {acc} repro_kernel_fold(const int64_t *dims, char **ptrs, const int64_t *strides, int64_t row_start, int64_t row_stop)",
        "{",
        "    char * const p0 = ptrs[0];",
        "    const int64_t s0 = strides[0];",
        f"    {acc} acc = {_acc_load(nest, 'p0 + row_start * s0')};",
        "    int64_t i;",
        "    (void)dims;",
        "    for (i = row_start + 1; i < row_stop; ++i)",
        f"        acc = {fold_step};",
        "    return acc;",
        "}",
        "",
        f"static void repro_kernel_store(char **ptrs, {acc} value)",
        "{",
        f"    *({_CTYPE[nest.out_dtype]} *)ptrs[1] = {_cast_c('value', nest.out_dtype)};",
        "}",
        "",
        f"void {KERNEL_SYMBOL}(const int64_t *dims, char **ptrs, const int64_t *strides)",
        "{",
        "    repro_kernel_store(ptrs, repro_kernel_fold(dims, ptrs, strides, 0, dims[0]));",
        "}",
        "",
    ]
    if mt_mode == "pthread":
        lines += [
            "static void repro_mt_run(const repro_mt_task *task)",
            "{",
            f"    *({acc} *)task->scratch = repro_kernel_fold(task->dims, task->ptrs, task->strides, task->start, task->stop);",
            "}",
            "",
        ]
    head = [
        f"void {MT_KERNEL_SYMBOL}(const int64_t *dims, char **ptrs, const int64_t *strides, int32_t nthreads)",
        "{",
    ] + _mt_clamp_lines(0) + [
        "    if (parts <= 1) {",
        f"        {KERNEL_SYMBOL}(dims, ptrs, strides);",
        "        return;",
        "    }",
        "    {",
        f"        {acc} partials[REPRO_MT_MAX_PARTS];",
        "        int count;",
    ]
    if mt_mode == "pthread":
        body = [
            f"        count = repro_mt_launch(dims, ptrs, strides, rows, parts, partials, (int64_t)sizeof({acc}));",
        ]
    else:
        body = [
            "        const int64_t chunk = rows / parts;",
            "        const int64_t extra = rows % parts;",
            "        int index;",
        ]
        if mt_mode == "openmp":
            body += [
                "#if defined(_OPENMP)",
                "#pragma omp parallel for schedule(static) num_threads(parts)",
                "#endif",
            ]
        body += [
            "        for (index = 0; index < parts; ++index) {",
            "            const int64_t start = (int64_t)index * chunk + (index < extra ? index : extra);",
            "            const int64_t stop = start + chunk + (index < extra ? 1 : 0);",
            "            partials[index] = repro_kernel_fold(dims, ptrs, strides, start, stop);",
            "        }",
            "        count = parts;",
        ]
    return lines + head + body + _tree_combine_lines(nest) + ["    }", "}"]


def _emit_reduce_body(nest: "ReduceNest") -> List[str]:
    """The n-D axis-reduction body: partition axis outermost (row-ranged),
    remaining kept axes ascending, reduced-axis fold innermost."""
    rank, axis, part = nest.rank, nest.axis, nest.part_axis
    acc = _CTYPE[nest.acc_dtype]
    loop_axes = [part] + [d for d in range(rank) if d not in (part, axis)]
    lines = [
        "static void repro_kernel_body(const int64_t *dims, char **ptrs, const int64_t *strides, int64_t row_start, int64_t row_stop)",
        "{",
    ]
    for d in sorted(set(loop_axes[1:] + [axis])):
        lines.append(f"    const int64_t n{d} = dims[{d}];")
    lines.append("    char * const p0 = ptrs[0];")
    lines.append("    char * const p1 = ptrs[1];")
    for d in range(rank):
        lines.append(f"    const int64_t s0_{d} = strides[{d}];")
    for d in range(rank):
        if d == axis:
            continue  # the reduced axis has no output lane
        lines.append(f"    const int64_t s1_{d} = strides[{rank + d}];")
    indent = "    "
    src_base, out_base = "p0", "p1"
    for position, d in enumerate(loop_axes):
        low = "row_start" if position == 0 else "0"
        high = "row_stop" if position == 0 else f"n{d}"
        lines.append(f"{indent}for (int64_t i{d} = {low}; i{d} < {high}; ++i{d}) {{")
        indent += "    "
        lines.append(f"{indent}char * const q0_{d} = {src_base} + i{d} * s0_{d};")
        lines.append(f"{indent}char * const q1_{d} = {out_base} + i{d} * s1_{d};")
        src_base, out_base = f"q0_{d}", f"q1_{d}"
    fold_step = _combine_c(
        nest.kind, nest.acc_dtype, "acc",
        _acc_load(nest, f"{src_base} + i{axis} * s0_{axis}"),
    )
    lines += [
        f"{indent}{acc} acc = {_acc_load(nest, src_base)};",
        f"{indent}for (int64_t i{axis} = 1; i{axis} < n{axis}; ++i{axis})",
        f"{indent}    acc = {fold_step};",
        f"{indent}*({_CTYPE[nest.out_dtype]} *){out_base} = {_cast_c('acc', nest.out_dtype)};",
    ]
    for _ in loop_axes:
        indent = indent[:-4]
        lines.append(f"{indent}}}")
    lines.append("}")
    return lines


def emit_reduce_source(nest: ReduceNest, mt_mode: str = "serial") -> str:
    """Emit the complete, deterministic C source for one reduction nest.

    ABI: ``dims`` holds the *source* extents (``nest.rank`` entries);
    ``ptrs`` is ``[source, output]``; ``strides`` holds the source's byte
    strides (``rank`` entries) followed by the output's byte strides aligned
    to source axes, with a zero in the reduced axis's lane.
    """
    lines = [
        "/* Generated by repro.codegen; one artifact per canonical reduction form. */",
        _PREAMBLE,
        _MT_DEFINE,
        "",
    ]
    if mt_mode == "pthread":
        lines.append(_MT_POOL)
    if nest.combine:
        lines += _emit_reduce_combine(nest, mt_mode)
    else:
        lines += _emit_reduce_body(nest)
        lines += [
            "",
            f"void {KERNEL_SYMBOL}(const int64_t *dims, char **ptrs, const int64_t *strides)",
            "{",
            f"    repro_kernel_body(dims, ptrs, strides, 0, dims[{nest.part_axis}]);",
            "}",
            "",
        ]
        lines += _mt_body_entry(mt_mode, nest.part_axis)
    return "\n".join(lines) + "\n"
