"""The loop-nest IR and the byte-code → IR lowering rules.

A fused kernel is a straight-line sequence of element-wise byte-codes over
views that all share one iteration space.  Lowering turns that sequence
into a :class:`LoopNest`: a rank-R loop over the common shape whose body is
a list of scalar :class:`Store` statements into per-view *slots* — the same
slot assignment :func:`repro.runtime.kernel._slot_walk` computes, so a
compiled artifact launched with :func:`~repro.runtime.kernel.kernel_slot_views`
binds each slot to the right concrete view.

The IR is deliberately *geometry-generic*: shapes and strides are runtime
arguments of the emitted function, so one compiled artifact serves every
tile of a tiled execution and every structurally identical kernel,
whatever its array sizes.

Lowering is **bitwise-conservative**: an op-code is lowered only when the
emitted C provably reproduces NumPy's result bit-for-bit on the supported
dtypes (bool, int32/64, float32/64).  Everything else — transcendentals
whose libm results differ from NumPy's SIMD kernels, bool arithmetic with
saturating semantics, value-dependent integer ops NumPy guards specially —
raises :class:`LoweringError` and the caller falls back to the interpreted
kernel template.  Compute and result dtypes are not re-derived from a
promotion table: each step is *probed* against NumPy itself on zero-size
operands, so NEP-50 promotion changes can never skew the generated code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.bytecode import dtypes
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import REDUCE_TO_ELEMENTWISE, OpCode, opcode_info
from repro.bytecode.view import View


class LoweringError(Exception):
    """Raised when a kernel cannot be lowered bitwise-safely to native code."""


# --------------------------------------------------------------------------- #
# Expression and statement nodes
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Load:
    """Read the current element of a slot; value dtype is the slot's storage."""

    slot: int
    dtype_name: str


@dataclass(frozen=True)
class Literal:
    """A scalar constant, already converted to its target dtype."""

    value: object  # a NumPy scalar of dtype_name's np_dtype
    dtype_name: str


@dataclass(frozen=True)
class Cast:
    """Convert a value to another dtype (C cast; bool targets compare != 0)."""

    arg: object
    dtype_name: str


@dataclass(frozen=True)
class Op:
    """A primitive operation over already-typed arguments.

    ``kind`` is one of the emitter's primitive kinds (``"add"``, ``"max"``,
    ``"lt"``, ...); ``dtype_name`` is the *value* dtype of the expression
    (the compute dtype for arithmetic, ``BH_BOOL`` for comparisons and
    logicals).
    """

    kind: str
    dtype_name: str
    args: Tuple[object, ...]


@dataclass(frozen=True)
class Store:
    """Assign an expression to the current element of ``slot``.

    The emitted assignment casts the expression's value dtype to the slot's
    storage dtype exactly like the interpreter's
    ``np.copyto(out, result, casting="unsafe")``.
    """

    slot: int
    expr: object


@dataclass(frozen=True)
class LoopNest:
    """A rank-R element-wise loop nest over slot views.

    Attributes
    ----------
    rank:
        Number of loop dimensions (the common view rank).
    slot_dtypes:
        Storage dtype name per slot, in slot order.
    body:
        The :class:`Store` statements, in program order.
    """

    rank: int
    slot_dtypes: Tuple[str, ...]
    body: Tuple[Store, ...]
    #: Slots whose stores never reach memory: liveness proved their base is
    #: instruction-local (see :func:`lower_kernel`'s ``local_slots``), so
    #: the value lives purely in the per-iteration scalar local and the
    #: backend neither allocates nor passes real storage for them.
    elided_slots: frozenset = frozenset()

    @property
    def num_slots(self) -> int:
        return len(self.slot_dtypes)


# --------------------------------------------------------------------------- #
# Supported op-codes
# --------------------------------------------------------------------------- #

#: Binary arithmetic ops whose C emission is bitwise-equal to the NumPy loop
#: on the probed compute dtype.
_ARITH_KINDS = {
    OpCode.BH_ADD: "add",
    OpCode.BH_SUBTRACT: "sub",
    OpCode.BH_MULTIPLY: "mul",
    OpCode.BH_DIVIDE: "div",
    OpCode.BH_MOD: "mod",
    OpCode.BH_MAXIMUM: "max",
    OpCode.BH_MINIMUM: "min",
}

_UNARY_KINDS = {
    OpCode.BH_NEGATIVE: "neg",
    OpCode.BH_ABSOLUTE: "abs",
    OpCode.BH_SQRT: "sqrt",
    OpCode.BH_RECIPROCAL: "recip",
}

_COMPARE_KINDS = {
    OpCode.BH_GREATER: "gt",
    OpCode.BH_GREATER_EQUAL: "ge",
    OpCode.BH_LESS: "lt",
    OpCode.BH_LESS_EQUAL: "le",
    OpCode.BH_EQUAL: "eq",
    OpCode.BH_NOT_EQUAL: "ne",
}

_LOGICAL_KINDS = {
    OpCode.BH_LOGICAL_AND: "land",
    OpCode.BH_LOGICAL_OR: "lor",
    OpCode.BH_LOGICAL_NOT: "lnot",
}

#: Arithmetic kinds whose C emission diverges from NumPy when the compute
#: dtype is bool (NumPy's bool add saturates to logical-or; C ``1 + 1`` is 2).
_BOOL_UNSAFE_KINDS = frozenset({"add", "sub", "div", "mod", "neg"})

#: NumPy dtype → byte-code dtype name, *exact* matches only.  Lowering must
#: reject any probe result outside the supported storage set instead of
#: rounding it to the nearest supported dtype the way
#: :func:`repro.bytecode.dtypes.from_numpy` does.
_EXACT_DTYPE_NAMES = {dt.np_dtype: dt.name for dt in dtypes.all_dtypes()}

#: Loop ranks the emitter generates nests for.
MAX_RANK = 4


def supported_opcodes() -> frozenset:
    """The op-codes :func:`lower_kernel` can lower (given friendly dtypes)."""
    return frozenset(
        {OpCode.BH_IDENTITY}
        | set(_ARITH_KINDS)
        | set(_UNARY_KINDS)
        | set(_COMPARE_KINDS)
        | set(_LOGICAL_KINDS)
    )


# --------------------------------------------------------------------------- #
# Lowering
# --------------------------------------------------------------------------- #


def _exact_dtype_name(np_dtype) -> str:
    name = _EXACT_DTYPE_NAMES.get(np.dtype(np_dtype))
    if name is None:
        raise LoweringError(f"unsupported compute dtype {np_dtype!r}")
    return name


def _write_is_injective(view: View) -> bool:
    """Sufficient condition that a strided view never writes one element twice.

    Sort dimensions by absolute stride; the view is injective when every
    stride strictly exceeds the maximal index span reachable through all
    smaller-stride dimensions (and no extent-over-one dimension has stride
    zero).  Contiguous and sliced views always pass; genuinely self-aliasing
    broadcasts fail and the kernel falls back to the interpreter.
    """
    dims = sorted(
        (abs(stride), extent)
        for stride, extent in zip(view.strides, view.shape)
        if extent > 1
    )
    span = 0
    for stride, extent in dims:
        if stride == 0 or stride <= span:
            return False
        span += stride * (extent - 1)
    return True


def _ref_expr(kind: str, ref, slot_views) -> object:
    if kind == "const":
        return Literal(ref.as_numpy(), ref.dtype.name)
    return Load(ref, slot_views[ref].dtype.name)


def _cast(expr, dtype_name: str):
    """Coerce an expression to ``dtype_name``; literals fold with NumPy casts."""
    if expr.dtype_name == dtype_name:
        return expr
    if isinstance(expr, Literal):
        target = dtypes.from_name(dtype_name).np_dtype
        value = np.asarray(expr.value).astype(target, casting="unsafe")[()]
        return Literal(value, dtype_name)
    return Cast(expr, dtype_name)


def _sample_operands(input_refs, slot_views):
    """Zero-size stand-ins with the operands' exact dtypes, for NumPy probing."""
    samples = []
    for kind, ref in input_refs:
        if kind == "const":
            samples.append(ref.as_numpy())
        else:
            samples.append(np.zeros(0, dtype=slot_views[ref].dtype.np_dtype))
    return samples


def _probe_result_dtype(instruction: Instruction, samples) -> str:
    """Ask NumPy itself what dtype this step produces on these operands."""
    info = opcode_info(instruction.opcode)
    func = getattr(np, info.numpy_name)
    try:
        result = func(*samples)
    except Exception as exc:
        raise LoweringError(
            f"NumPy rejects {instruction.opcode} on these operand dtypes: {exc}"
        ) from None
    return _exact_dtype_name(np.asarray(result).dtype)


def _lower_instruction(instruction: Instruction, refs, slot_views) -> Store:
    opcode = instruction.opcode
    out_kind, out_slot = refs[0]
    if out_kind != "slot":
        raise LoweringError(f"{opcode} writes to a constant operand")
    input_refs = refs[1:]
    args = [_ref_expr(kind, ref, slot_views) for kind, ref in input_refs]

    if opcode is OpCode.BH_IDENTITY:
        # Pure copy; the store-side cast reproduces copyto(..., "unsafe").
        return Store(out_slot, args[0])

    if opcode in _LOGICAL_KINDS:
        # Each operand is tested != 0 in its own storage dtype; no
        # promotion is involved, exactly like NumPy's logical loops.
        return Store(out_slot, Op(_LOGICAL_KINDS[opcode], "BH_BOOL", tuple(args)))

    samples = _sample_operands(input_refs, slot_views)

    if opcode in _COMPARE_KINDS:
        try:
            compute = _exact_dtype_name(np.result_type(*samples))
        except LoweringError:
            raise
        except Exception as exc:
            raise LoweringError(f"cannot promote operands of {opcode}: {exc}") from None
        operands = tuple(_cast(arg, compute) for arg in args)
        return Store(out_slot, Op(_COMPARE_KINDS[opcode], "BH_BOOL", operands))

    kind = _ARITH_KINDS.get(opcode) or _UNARY_KINDS.get(opcode)
    if kind is None:
        raise LoweringError(f"no bitwise-safe lowering for {opcode}")
    compute = _probe_result_dtype(instruction, samples)
    compute_dt = dtypes.from_name(compute)
    if compute_dt.is_bool and kind in _BOOL_UNSAFE_KINDS:
        raise LoweringError(f"{opcode} on bools has NumPy-specific semantics")
    if kind == "recip" and not compute_dt.is_float:
        raise LoweringError("integer reciprocal is NumPy-specific")
    if kind == "div" and not compute_dt.is_float:
        # BH_DIVIDE is true division; NumPy always promotes it to float, so
        # an integer compute dtype here means the probe model broke.
        raise LoweringError("non-float true division cannot be lowered")
    operands = tuple(_cast(arg, compute) for arg in args)
    return Store(out_slot, Op(kind, compute, operands))


def _expr_load_slots(expr, out: list) -> None:
    """Collect the slots an expression loads, left-to-right."""
    if isinstance(expr, Load):
        out.append(expr.slot)
    elif isinstance(expr, Cast):
        _expr_load_slots(expr.arg, out)
    elif isinstance(expr, Op):
        for arg in expr.args:
            _expr_load_slots(arg, out)


def _elidable_slots(body: Sequence[Store], local_slots: frozenset) -> frozenset:
    """Which instruction-local slots can skip memory entirely.

    A local slot's store may be elided when its first reference in
    statement order is a *store*: every later load then forwards from the
    per-iteration scalar local, so memory is never read.  (A local slot
    loaded before any store would have to read its zero-initialised
    storage — such slots keep their memory lane.)
    """
    stored: set = set()
    disqualified: set = set()
    for statement in body:
        loads: list = []
        _expr_load_slots(statement.expr, loads)
        for slot in loads:
            if slot not in stored:
                disqualified.add(slot)
        stored.add(statement.slot)
    return frozenset(local_slots & stored - disqualified)


def lower_kernel(
    instructions: Sequence[Instruction], local_slots: frozenset = frozenset()
) -> LoopNest:
    """Lower a kernel's instruction list to a :class:`LoopNest`.

    ``local_slots`` are slot indices whose base arrays liveness proved to be
    *instruction-local* (written and read only inside this kernel, freed,
    never synced — see :func:`repro.runtime.tiling.decompose`).  Stores to
    such slots stay in scalar locals and are elided from memory, which is
    the codegen backend's main traffic win on long fused chains.

    Raises
    ------
    LoweringError
        When any instruction, dtype or view-aliasing pattern has no
        bitwise-safe native lowering; the caller falls back to the
        interpreted kernel template.
    """
    from repro.runtime.kernel import _slot_walk

    _, slot_views, specs = _slot_walk(instructions)
    if not slot_views:
        raise LoweringError("kernel has no view operands")
    shape = slot_views[0].shape
    rank = len(shape)
    if rank < 1 or rank > MAX_RANK:
        raise LoweringError(f"rank {rank} outside the emitter's 1..{MAX_RANK} range")
    for view in slot_views:
        if view.shape != shape:
            raise LoweringError("slot views disagree on the iteration space")
        if view.dtype.np_dtype not in _EXACT_DTYPE_NAMES:
            raise LoweringError(f"unsupported storage dtype {view.dtype.name}")

    supported = supported_opcodes()
    written = []
    for instruction, refs in specs:
        if instruction.opcode not in supported:
            raise LoweringError(f"unsupported op-code {instruction.opcode}")
        out_kind, out_slot = refs[0]
        if out_kind == "slot":
            written.append(out_slot)

    # A single element-wise C loop interleaves reads and writes per element,
    # so any written view overlapping a *different* slot's view (identical
    # views share a slot by construction) would diverge from the
    # interpreter's read-everything-then-write semantics.  Self-aliasing
    # writes (zero or colliding strides) would additionally make the
    # dead-store elision unsound.
    for out_slot in written:
        out_view = slot_views[out_slot]
        if not _write_is_injective(out_view):
            raise LoweringError("written view may alias itself")
        for index, view in enumerate(slot_views):
            if index != out_slot and view.overlaps(out_view):
                raise LoweringError("written view overlaps another operand window")

    body = tuple(
        _lower_instruction(instruction, refs, slot_views)
        for instruction, refs in specs
    )
    return LoopNest(
        rank=rank,
        slot_dtypes=tuple(view.dtype.name for view in slot_views),
        body=body,
        elided_slots=_elidable_slots(body, frozenset(local_slots)),
    )


# --------------------------------------------------------------------------- #
# Reduction lowering
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ReduceNest:
    """A lowered axis reduction: fold ``kind`` along ``axis`` of the source.

    Like :class:`LoopNest` the form is geometry-generic — extents, pointers
    and strides are runtime arguments — so one artifact serves every shape
    of the same canonical reduction.  ``combine`` mirrors
    :class:`repro.runtime.tiling.TiledReduceStep`: true for rank-1 full
    reductions (threaded launches collect per-chunk partials and
    tree-combine them in the tiled backend's fixed order), false for n-D
    axis reductions (chunks along ``part_axis`` write disjoint output
    slices).  The accumulator dtype is *probed* from NumPy's own
    ``ufunc.reduce`` promotion (``np.add.reduce`` widens int32 sums to the
    platform int, for example) instead of re-derived from a table.
    """

    rank: int
    axis: int
    part_axis: int
    combine: bool
    kind: str  # "add" | "mul" | "max" | "min"
    source_dtype: str
    out_dtype: str
    acc_dtype: str


_REDUCE_KINDS = {
    OpCode.BH_ADD_REDUCE: "add",
    OpCode.BH_MULTIPLY_REDUCE: "mul",
    OpCode.BH_MAXIMUM_REDUCE: "max",
    OpCode.BH_MINIMUM_REDUCE: "min",
}


def lower_reduction(
    instruction: Instruction, combine: bool, part_axis: int
) -> ReduceNest:
    """Lower one reduction byte-code to a :class:`ReduceNest`.

    ``combine`` and ``part_axis`` come from the plan-time tile analysis
    (:func:`repro.runtime.tiling.decompose`): they are structural, so the
    nest — and therefore the compiled artifact — is shared across rebinds.

    Raises
    ------
    LoweringError
        When the op-code, dtypes or geometry have no native lowering within
        the established numeric contract; the caller falls back to the
        tiled interpreted reduction.
    """
    kind = _REDUCE_KINDS.get(instruction.opcode)
    if kind is None:
        raise LoweringError(f"no native lowering for reduction {instruction.opcode}")
    source = instruction.inputs[0]
    out = instruction.out
    if not isinstance(source, View) or out is None:
        raise LoweringError("malformed reduction operands")
    rank = len(source.shape)
    if rank < 1 or rank > MAX_RANK:
        raise LoweringError(f"rank {rank} outside the emitter's 1..{MAX_RANK} range")
    axis = int(instruction.constants[0].value)
    if not 0 <= axis < rank:
        raise LoweringError(f"reduction axis {axis} out of range for rank {rank}")
    if combine:
        if rank != 1 or out.nelem != 1:
            raise LoweringError("combining reductions must be rank-1 to one value")
    else:
        if rank < 2 or part_axis == axis or not 0 <= part_axis < rank:
            raise LoweringError("axis reductions need a distinct partition axis")
        if len(out.shape) != rank - 1:
            raise LoweringError("output rank does not match an axis reduction")
    source_name = _exact_dtype_name(source.dtype.np_dtype)
    out_name = _exact_dtype_name(out.dtype.np_dtype)
    source_dt = dtypes.from_name(source_name)
    if source_dt.is_bool:
        raise LoweringError("bool reductions have NumPy-specific semantics")
    info = opcode_info(REDUCE_TO_ELEMENTWISE[instruction.opcode])
    ufunc = getattr(np, info.numpy_name)
    # Probe the accumulator dtype on a size-1 sample (maximum.reduce raises
    # on empty input) so NEP-50 promotion changes can never skew the C.
    sample = np.zeros(1, dtype=source_dt.np_dtype)
    try:
        acc_name = _exact_dtype_name(np.asarray(ufunc.reduce(sample, axis=0)).dtype)
    except LoweringError:
        raise
    except Exception as exc:
        raise LoweringError(f"NumPy rejects this reduction probe: {exc}") from None
    return ReduceNest(
        rank=rank,
        axis=axis,
        part_axis=0 if combine else part_axis,
        combine=combine,
        kind=kind,
        source_dtype=source_name,
        out_dtype=out_name,
        acc_dtype=acc_name,
    )
