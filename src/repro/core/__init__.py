"""The algebraic byte-code transformation engine — the paper's contribution.

The engine rewrites byte-code :class:`~repro.bytecode.program.Program`
objects into cheaper but semantically equivalent programs.  Its pieces:

* :mod:`repro.core.analysis` — def-use, liveness and safety queries the
  context-aware rules need.
* :mod:`repro.core.rules` — the :class:`Pass` protocol, pass registry and
  result/statistics records.
* :mod:`repro.core.pattern` — declarative instruction patterns used by the
  idiom-detecting rules.
* Concrete passes:

  - :class:`ConstantMergePass` (Listings 1-3): contract repeated
    constant additions/multiplications into one byte-code.
  - :class:`PowerExpansionPass` + :mod:`repro.core.addition_chains`
    (Equation 1, Listings 4-5): rewrite ``BH_POWER`` into multiplication
    chains, including the paper's two-register square-and-multiply form.
  - :class:`LinearSolveRewritePass` (Equation 2): rewrite
    ``inv(A) @ b`` into an LU-based solve when liveness allows.
  - :class:`FusionPass`: loop-fusion-like contraction of element-wise
    chains into ``BH_FUSED`` kernels.
  - :class:`IdentitySimplifyPass`, :class:`CopyPropagationPass`,
    :class:`DeadCodeEliminationPass`: supporting clean-up rules.

* :mod:`repro.core.cost` — the cost model that gates rewrites.
* :mod:`repro.core.pipeline` — the pass manager (ordering, fixed point,
  verification) and the top-level :func:`optimize` entry point.
"""

from repro.core.analysis import (
    BaseInterval,
    DefUse,
    base_read_between,
    base_written_between,
    is_dead_after,
    live_intervals,
    reads_of_base,
    writes_to_base,
)
from repro.core.rules import (
    Pass,
    PassResult,
    PassStats,
    available_passes,
    create_pass,
    register_pass,
)
from repro.core.pattern import InstructionPattern, MatchResult, SequencePattern
from repro.core.constant_merge import ConstantMergePass
from repro.core.addition_chains import (
    AdditionChain,
    binary_chain,
    chain_multiply_count,
    naive_chain,
    optimal_chain,
    power_of_two_chain,
)
from repro.core.power_expansion import PowerExpansionPass, expand_power
from repro.core.linear_solve import LinearSolveRewritePass
from repro.core.fusion import FusionPass
from repro.core.identity_simplify import IdentitySimplifyPass
from repro.core.copy_propagation import CopyPropagationPass
from repro.core.dce import DeadCodeEliminationPass
from repro.core.constant_fold import ScalarConstantFoldingPass
from repro.core.strength_reduction import StrengthReductionPass
from repro.core.cse import CommonSubexpressionEliminationPass
from repro.core.cost import CostModel
from repro.core.schedule import (
    FusionSchedule,
    compute_schedule,
    dependency_graph,
    fusion_schedule_of,
    schedule_signature,
)
from repro.core.verifier import SemanticVerifier, VerificationError
from repro.core.pipeline import (
    OptimizationReport,
    Pipeline,
    default_pipeline,
    optimize,
)

__all__ = [
    "DefUse",
    "BaseInterval",
    "live_intervals",
    "base_read_between",
    "base_written_between",
    "is_dead_after",
    "reads_of_base",
    "writes_to_base",
    "Pass",
    "PassResult",
    "PassStats",
    "available_passes",
    "create_pass",
    "register_pass",
    "InstructionPattern",
    "MatchResult",
    "SequencePattern",
    "ConstantMergePass",
    "AdditionChain",
    "binary_chain",
    "chain_multiply_count",
    "naive_chain",
    "optimal_chain",
    "power_of_two_chain",
    "PowerExpansionPass",
    "expand_power",
    "LinearSolveRewritePass",
    "FusionPass",
    "IdentitySimplifyPass",
    "CopyPropagationPass",
    "DeadCodeEliminationPass",
    "ScalarConstantFoldingPass",
    "StrengthReductionPass",
    "CommonSubexpressionEliminationPass",
    "CostModel",
    "FusionSchedule",
    "compute_schedule",
    "dependency_graph",
    "fusion_schedule_of",
    "schedule_signature",
    "SemanticVerifier",
    "VerificationError",
    "OptimizationReport",
    "Pipeline",
    "default_pipeline",
    "optimize",
]
