"""Addition chains for the power-expansion transformation (Equation 1).

Rewriting ``x**n`` into multiplications is the problem of finding an
*addition chain* for ``n``: a sequence ``1 = c_0, c_1, ..., c_r = n`` where
every element is the sum of two earlier elements; each step is one
``BH_MULTIPLY``.  The paper presents two concrete chains for ``n = 10``:

* the naive chain ``1, 2, 3, ..., 10`` — nine multiplies (Listing 4), and
* a square-then-increment chain ``1, 2, 4, 8, 9, 10`` — five multiplies
  (Listing 5).

This module implements four strategies with increasing quality:

* :func:`naive_chain` — ``n - 1`` multiplies; only ever uses the previous
  element and ``x`` (Listing 4).
* :func:`power_of_two_chain` — square up to the largest power of two below
  ``n``, then multiply by ``x`` for the remainder (Listing 5).
* :func:`binary_chain` — left-to-right square-and-multiply;
  ``floor(log2 n) + popcount(n) - 1`` multiplies.  Like the two chains
  above it only ever needs the origin tensor and the result tensor, which
  is the register constraint the paper highlights.
* :func:`optimal_chain` — shortest addition chain found by iterative-
  deepening search (may require extra temporaries, i.e. relaxes the paper's
  two-register constraint; exposed as an extension and used by the ablation
  benchmark).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class AdditionChain:
    """An addition chain for an exponent.

    Attributes
    ----------
    target:
        The exponent the chain computes.
    values:
        The chain values, starting at 1 and ending at ``target``.
    steps:
        For every value after the first, the pair of *indices into values*
        that sum to it.  ``steps[k]`` produces ``values[k + 1]``.
    strategy:
        Name of the strategy that produced the chain.
    """

    target: int
    values: Tuple[int, ...]
    steps: Tuple[Tuple[int, int], ...]
    strategy: str

    @property
    def num_multiplies(self) -> int:
        """Number of ``BH_MULTIPLY`` byte-codes needed to realise the chain."""
        return len(self.steps)

    def is_valid(self) -> bool:
        """Check the chain really is an addition chain ending at ``target``."""
        if not self.values or self.values[0] != 1:
            return False
        if self.values[-1] != self.target:
            return False
        if len(self.steps) != len(self.values) - 1:
            return False
        for position, (i, j) in enumerate(self.steps):
            if i > position or j > position:
                return False
            if self.values[i] + self.values[j] != self.values[position + 1]:
                return False
        return True

    def max_live_temporaries(self) -> int:
        """How many chain values (besides ``x`` itself) must be alive at once.

        A value is live from the step that produces it until the last step
        that consumes it.  The paper's two-register constraint corresponds
        to chains where this number never exceeds 1 (only the running
        result is kept).
        """
        last_use: Dict[int, int] = {}
        for step_index, (i, j) in enumerate(self.steps):
            last_use[i] = step_index
            last_use[j] = step_index
        live_counts = []
        for step_index in range(len(self.steps)):
            live = 0
            for value_index in range(1, len(self.values)):
                born = value_index - 1  # produced by step value_index - 1
                if born > step_index:
                    continue
                if last_use.get(value_index, -1) >= step_index or value_index == len(self.values) - 1:
                    live += 1
            live_counts.append(live)
        return max(live_counts) if live_counts else 0

    def fits_two_registers(self) -> bool:
        """True when every step only uses ``x`` (index 0) or the previous value.

        This is the structural property of Listings 4 and 5: each multiply
        reads the running result and/or the origin tensor, never an older
        intermediate, so no temporary tensors are required.
        """
        for position, (i, j) in enumerate(self.steps):
            allowed = {0, position}
            if i not in allowed or j not in allowed:
                return False
        return True


def _validate_exponent(exponent: int) -> int:
    exponent = int(exponent)
    if exponent < 1:
        raise ValueError(f"addition chains require a positive exponent, got {exponent}")
    return exponent


def naive_chain(exponent: int) -> AdditionChain:
    """The chain ``1, 2, 3, ..., n``: ``n - 1`` multiplies (paper Listing 4)."""
    exponent = _validate_exponent(exponent)
    values = tuple(range(1, exponent + 1))
    steps = tuple((index, 0) for index in range(exponent - 1))
    return AdditionChain(exponent, values, steps, strategy="naive")


def power_of_two_chain(exponent: int) -> AdditionChain:
    """Square to the largest power of two <= n, then increment (paper Listing 5).

    For ``n = 10`` this produces ``1, 2, 4, 8, 9, 10`` — the exact chain of
    Listing 5 with five multiplies.
    """
    exponent = _validate_exponent(exponent)
    values: List[int] = [1]
    steps: List[Tuple[int, int]] = []
    current = 1
    while current * 2 <= exponent:
        steps.append((len(values) - 1, len(values) - 1))
        current *= 2
        values.append(current)
    while current < exponent:
        steps.append((len(values) - 1, 0))
        current += 1
        values.append(current)
    return AdditionChain(exponent, tuple(values), tuple(steps), strategy="power_of_two")


def binary_chain(exponent: int) -> AdditionChain:
    """Left-to-right square-and-multiply: ``floor(log2 n) + popcount(n) - 1`` steps.

    Still satisfies the paper's constraint of only touching the origin and
    the result tensor, but is never worse (and often better) than the
    square-then-increment chain of Listing 5 — e.g. ``n = 10`` needs four
    multiplies instead of five.
    """
    exponent = _validate_exponent(exponent)
    bits = bin(exponent)[2:]
    values: List[int] = [1]
    steps: List[Tuple[int, int]] = []
    current = 1
    for bit in bits[1:]:
        steps.append((len(values) - 1, len(values) - 1))
        current *= 2
        values.append(current)
        if bit == "1":
            steps.append((len(values) - 1, 0))
            current += 1
            values.append(current)
    return AdditionChain(exponent, tuple(values), tuple(steps), strategy="binary")


@functools.lru_cache(maxsize=4096)
def _optimal_chain_values(exponent: int) -> Tuple[int, ...]:
    """Shortest addition chain values for ``exponent`` via iterative deepening.

    Exponential worst case, but with the standard pruning bound
    (largest reachable value doubles per level) it is fast for the exponent
    range the optimizer handles (<= a few hundred).
    """
    if exponent == 1:
        return (1,)
    lower_bound = max(1, exponent.bit_length() - 1)
    for limit in range(lower_bound, exponent + 1):
        found = _search_chain([1], exponent, limit)
        if found is not None:
            return tuple(found)
    raise RuntimeError(f"no addition chain found for {exponent}")  # pragma: no cover


def _search_chain(chain: List[int], target: int, limit: int) -> Optional[List[int]]:
    current = chain[-1]
    if current == target:
        return list(chain)
    remaining = limit - (len(chain) - 1)
    if remaining <= 0:
        return None
    # Pruning: even doubling every remaining step cannot reach the target.
    if current << remaining < target:
        return None
    # Try larger sums first — reaching big values quickly shortens chains.
    candidates = set()
    for a in chain:
        value = current + a
        if value <= target and value > current:
            candidates.add(value)
    for value in sorted(candidates, reverse=True):
        chain.append(value)
        result = _search_chain(chain, target, limit)
        chain.pop()
        if result is not None:
            return result
    return None


def optimal_chain(exponent: int) -> AdditionChain:
    """Shortest addition chain (may need temporaries beyond two registers)."""
    exponent = _validate_exponent(exponent)
    values = _optimal_chain_values(exponent)
    steps: List[Tuple[int, int]] = []
    for position in range(1, len(values)):
        step = _find_step(values, position)
        steps.append(step)
    return AdditionChain(exponent, values, tuple(steps), strategy="optimal")


def _find_step(values: Sequence[int], position: int) -> Tuple[int, int]:
    target = values[position]
    for i in range(position - 1, -1, -1):
        for j in range(i, -1, -1):
            if values[i] + values[j] == target:
                return (i, j)
    raise ValueError(f"{values[:position]} cannot produce {target}")  # pragma: no cover


_STRATEGIES = {
    "naive": naive_chain,
    "power_of_two": power_of_two_chain,
    "binary": binary_chain,
    "optimal": optimal_chain,
}


def chain_for(exponent: int, strategy: str = "binary") -> AdditionChain:
    """Build a chain for ``exponent`` with the named strategy."""
    try:
        builder = _STRATEGIES[strategy]
    except KeyError:
        raise KeyError(
            f"unknown chain strategy {strategy!r}; available: {tuple(_STRATEGIES)}"
        ) from None
    return builder(exponent)


def available_strategies() -> Tuple[str, ...]:
    """Names of the chain-construction strategies."""
    return tuple(_STRATEGIES)


def chain_multiply_count(exponent: int, strategy: str = "binary") -> int:
    """Number of multiplies the named strategy needs for ``exponent``."""
    return chain_for(exponent, strategy).num_multiplies
