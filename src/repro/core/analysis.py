"""Dataflow analysis over byte-code programs.

The context-aware transformations of the paper are only sound under
conditions like "the inverse tensor is not used for anything else" or "no
other byte-code observes the intermediate sum".  This module provides the
queries the passes use to establish those conditions:

* def-use indexing (which instructions read / write which base arrays),
* "is this value dead after instruction *i*" liveness queries,
* "does anything touch base *b* between *i* and *j*" interference queries.

All queries are expressed at base-array granularity with view-overlap
refinement: two accesses interfere only if their views may overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View


@dataclass
class Access:
    """One read or write of a view by an instruction."""

    index: int
    instruction: Instruction
    view: View
    is_write: bool


@dataclass
class DefUse:
    """Def-use index for a program.

    Maps every base array to the ordered list of accesses (reads and writes)
    made to it, and records which bases are synced (observable program
    outputs) and which are freed.
    """

    program: Program
    accesses: Dict[int, List[Access]] = field(default_factory=dict)
    bases: Dict[int, BaseArray] = field(default_factory=dict)
    synced: Dict[int, List[int]] = field(default_factory=dict)
    freed: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def analyze(cls, program: Program) -> "DefUse":
        """Build the def-use index for ``program``."""
        info = cls(program=program)
        for index, instruction in enumerate(program):
            if instruction.opcode is OpCode.BH_SYNC:
                for view in instruction.views():
                    info._note_base(view.base)
                    info.synced.setdefault(id(view.base), []).append(index)
                    info._add(Access(index, instruction, view, is_write=False))
                continue
            if instruction.opcode is OpCode.BH_FREE:
                for view in instruction.views():
                    info._note_base(view.base)
                    info.freed.setdefault(id(view.base), []).append(index)
                continue
            for view in instruction.reads():
                info._note_base(view.base)
                info._add(Access(index, instruction, view, is_write=False))
            for view in instruction.writes():
                info._note_base(view.base)
                info._add(Access(index, instruction, view, is_write=True))
        return info

    def _note_base(self, base: BaseArray) -> None:
        self.bases.setdefault(id(base), base)

    def _add(self, access: Access) -> None:
        self.accesses.setdefault(id(access.view.base), []).append(access)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def accesses_of(self, base: BaseArray) -> Tuple[Access, ...]:
        """All accesses of ``base`` in program order."""
        return tuple(self.accesses.get(id(base), ()))

    def reads_of(self, base: BaseArray) -> Tuple[Access, ...]:
        """All read accesses of ``base``."""
        return tuple(a for a in self.accesses_of(base) if not a.is_write)

    def writes_of(self, base: BaseArray) -> Tuple[Access, ...]:
        """All write accesses of ``base``."""
        return tuple(a for a in self.accesses_of(base) if a.is_write)

    def is_synced(self, base: BaseArray) -> bool:
        """True when ``base`` is the target of any ``BH_SYNC``."""
        return id(base) in self.synced

    def sync_indices(self, base: BaseArray) -> Tuple[int, ...]:
        """Positions of the ``BH_SYNC`` instructions targeting ``base``."""
        return tuple(self.synced.get(id(base), ()))

    def is_freed(self, base: BaseArray) -> bool:
        """True when ``base`` is explicitly freed."""
        return id(base) in self.freed

    def read_indices_after(self, base: BaseArray, index: int) -> Tuple[int, ...]:
        """Indices of instructions after ``index`` that read ``base``."""
        return tuple(a.index for a in self.reads_of(base) if a.index > index)

    def write_indices_after(self, base: BaseArray, index: int) -> Tuple[int, ...]:
        """Indices of instructions after ``index`` that write ``base``."""
        return tuple(a.index for a in self.writes_of(base) if a.index > index)


# ---------------------------------------------------------------------- #
# Stand-alone query helpers (operate directly on a program)
# ---------------------------------------------------------------------- #


def reads_of_base(program: Program, base: BaseArray) -> List[int]:
    """Indices of instructions that read ``base`` (SYNC counts as a read)."""
    result = []
    for index, instruction in enumerate(program):
        if instruction.opcode is OpCode.BH_SYNC:
            if any(view.base is base for view in instruction.views()):
                result.append(index)
            continue
        if any(view.base is base for view in instruction.reads()):
            result.append(index)
    return result


def writes_to_base(program: Program, base: BaseArray) -> List[int]:
    """Indices of instructions that write ``base``."""
    result = []
    for index, instruction in enumerate(program):
        if any(view.base is base for view in instruction.writes()):
            result.append(index)
    return result


def base_read_between(
    program: Program, base: BaseArray, start: int, stop: int, within: Optional[View] = None
) -> bool:
    """Is ``base`` read by any instruction with index in the open range (start, stop)?

    When ``within`` is given, only reads whose view may overlap ``within``
    count.
    """
    for index in range(start + 1, stop):
        instruction = program[index]
        views = (
            instruction.views()
            if instruction.opcode is OpCode.BH_SYNC
            else instruction.reads()
        )
        for view in views:
            if view.base is not base:
                continue
            if within is None or view.overlaps(within):
                return True
    return False


def base_written_between(
    program: Program, base: BaseArray, start: int, stop: int, within: Optional[View] = None
) -> bool:
    """Is ``base`` written by any instruction with index in the open range (start, stop)?"""
    for index in range(start + 1, stop):
        instruction = program[index]
        for view in instruction.writes():
            if view.base is not base:
                continue
            if within is None or view.overlaps(within):
                return True
    return False


def is_dead_after(
    program: Program,
    index: int,
    view: View,
    observable_at_end: bool = True,
) -> bool:
    """Is the value held by ``view`` unobservable after instruction ``index``?

    The value is *dead* when no later instruction reads the view's base (in a
    possibly-overlapping region) before the base is either completely
    overwritten or freed, and the base is never synced after ``index``.

    This is the safety condition behind both the paper's Equation 2 rewrite
    ("only faster if we do not use the inverse for anything else") and
    dead-code elimination.

    Parameters
    ----------
    observable_at_end:
        How to treat a value that survives to the end of the program without
        being freed.  The front-end may still hold a handle to such a base
        and observe it in a *later* flush, so the default is the
        conservative answer ("still live").  Bohrium frees a base when the
        owning Python object is garbage collected, and our front-end does
        the same, so truly temporary values do end in ``BH_FREE`` and are
        correctly recognised as dead.  Pass ``False`` only for whole-program
        (closed-world) analyses.
    """
    base = view.base
    for later_index in range(index + 1, len(program)):
        instruction = program[later_index]
        if instruction.opcode is OpCode.BH_SYNC:
            if any(v.base is base for v in instruction.views()):
                return False
            continue
        if instruction.opcode is OpCode.BH_FREE:
            if any(v.base is base for v in instruction.views()):
                return True
            continue
        for read_view in instruction.reads():
            if read_view.base is base and read_view.overlaps(view):
                return False
        for write_view in instruction.writes():
            if write_view.base is base and _covers(write_view, view):
                # Completely overwritten before being read: dead.
                return True
    return not observable_at_end


def _covers(writer: View, target: View) -> bool:
    """Does writing ``writer`` definitely overwrite every element of ``target``?"""
    if writer.base is not target.base:
        return False
    if writer.same_view(target):
        return True
    if writer.covers_base():
        return True
    small_limit = 4096
    if writer.nelem <= small_limit and target.nelem <= small_limit:
        return set(target.element_indices()) <= set(writer.element_indices())
    return False


def observable_views(program: Program) -> Tuple[View, ...]:
    """Views whose final contents are observable program outputs.

    A view is observable when it is synced, or when its base is written and
    never freed (the front-end may still hold a reference to it).  This is
    the set the semantic verifier compares between the original and the
    optimized program.
    """
    defuse = DefUse.analyze(program)
    result: List[View] = []
    seen = set()
    for base_id, base in defuse.bases.items():
        if defuse.is_freed(base) and not defuse.is_synced(base):
            continue
        writes = defuse.writes_of(base)
        if not writes and not defuse.is_synced(base):
            continue
        key = base_id
        if key in seen:
            continue
        seen.add(key)
        # Prefer the full view of the base so all written regions compare.
        result.append(View.full(base))
    return tuple(result)
