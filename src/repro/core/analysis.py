"""Dataflow analysis over byte-code programs.

The context-aware transformations of the paper are only sound under
conditions like "the inverse tensor is not used for anything else" or "no
other byte-code observes the intermediate sum".  This module provides the
queries the passes use to establish those conditions:

* def-use indexing (which instructions read / write which base arrays),
* "is this value dead after instruction *i*" liveness queries,
* "does anything touch base *b* between *i* and *j*" interference queries.

All queries are expressed at base-array granularity with view-overlap
refinement: two accesses interfere only if their views may overlap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View


@dataclass
class Access:
    """One read or write of a view by an instruction."""

    index: int
    instruction: Instruction
    view: View
    is_write: bool


@dataclass
class DefUse:
    """Def-use index for a program.

    Maps every base array to the ordered list of accesses (reads and writes)
    made to it, and records which bases are synced (observable program
    outputs) and which are freed.
    """

    program: Program
    accesses: Dict[int, List[Access]] = field(default_factory=dict)
    bases: Dict[int, BaseArray] = field(default_factory=dict)
    synced: Dict[int, List[int]] = field(default_factory=dict)
    freed: Dict[int, List[int]] = field(default_factory=dict)

    @classmethod
    def analyze(cls, program: Program) -> "DefUse":
        """Build the def-use index for ``program``."""
        info = cls(program=program)
        for index, instruction in enumerate(program):
            if instruction.opcode is OpCode.BH_SYNC:
                for view in instruction.views():
                    info._note_base(view.base)
                    info.synced.setdefault(id(view.base), []).append(index)
                    info._add(Access(index, instruction, view, is_write=False))
                continue
            if instruction.opcode is OpCode.BH_FREE:
                for view in instruction.views():
                    info._note_base(view.base)
                    info.freed.setdefault(id(view.base), []).append(index)
                continue
            for view in instruction.reads():
                info._note_base(view.base)
                info._add(Access(index, instruction, view, is_write=False))
            for view in instruction.writes():
                info._note_base(view.base)
                info._add(Access(index, instruction, view, is_write=True))
        return info

    def _note_base(self, base: BaseArray) -> None:
        self.bases.setdefault(id(base), base)

    def _add(self, access: Access) -> None:
        self.accesses.setdefault(id(access.view.base), []).append(access)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def accesses_of(self, base: BaseArray) -> Tuple[Access, ...]:
        """All accesses of ``base`` in program order."""
        return tuple(self.accesses.get(id(base), ()))

    def reads_of(self, base: BaseArray) -> Tuple[Access, ...]:
        """All read accesses of ``base``."""
        return tuple(a for a in self.accesses_of(base) if not a.is_write)

    def writes_of(self, base: BaseArray) -> Tuple[Access, ...]:
        """All write accesses of ``base``."""
        return tuple(a for a in self.accesses_of(base) if a.is_write)

    def is_synced(self, base: BaseArray) -> bool:
        """True when ``base`` is the target of any ``BH_SYNC``."""
        return id(base) in self.synced

    def sync_indices(self, base: BaseArray) -> Tuple[int, ...]:
        """Positions of the ``BH_SYNC`` instructions targeting ``base``."""
        return tuple(self.synced.get(id(base), ()))

    def is_freed(self, base: BaseArray) -> bool:
        """True when ``base`` is explicitly freed."""
        return id(base) in self.freed

    def read_indices_after(self, base: BaseArray, index: int) -> Tuple[int, ...]:
        """Indices of instructions after ``index`` that read ``base``."""
        return tuple(a.index for a in self.reads_of(base) if a.index > index)

    def write_indices_after(self, base: BaseArray, index: int) -> Tuple[int, ...]:
        """Indices of instructions after ``index`` that write ``base``."""
        return tuple(a.index for a in self.writes_of(base) if a.index > index)

    # ------------------------------------------------------------------ #
    # Indexed interference / liveness queries
    #
    # These answer the same questions as the stand-alone helpers below, but
    # against the prebuilt access index: a pass that asks many queries per
    # run builds one DefUse and pays O(accesses of base) per query instead
    # of rescanning the whole program every time.
    # ------------------------------------------------------------------ #

    def written_between(
        self, base: BaseArray, start: int, stop: int, within: Optional[View] = None
    ) -> bool:
        """Is ``base`` written in the open index range (start, stop)?

        When ``within`` is given only writes whose view may overlap it count.
        """
        for access in self.accesses.get(id(base), ()):
            if not access.is_write or not start < access.index < stop:
                continue
            if within is None or access.view.overlaps(within):
                return True
        return False

    def read_between(
        self, base: BaseArray, start: int, stop: int, within: Optional[View] = None
    ) -> bool:
        """Is ``base`` read (SYNC included) in the open index range (start, stop)?"""
        for access in self.accesses.get(id(base), ()):
            if access.is_write or not start < access.index < stop:
                continue
            if within is None or access.view.overlaps(within):
                return True
        return False

    def value_dead_after(
        self, index: int, view: View, observable_at_end: bool = True
    ) -> bool:
        """Index-backed equivalent of :func:`is_dead_after`.

        The value held by ``view`` is dead after instruction ``index`` when
        no later instruction can observe it: every later event on the
        view's base, in program order, is either a complete overwrite or a
        free before any overlapping read or sync.
        """
        base = view.base
        events = []
        for access in self.accesses.get(id(base), ()):
            if access.index > index:
                # Reads sort before writes at the same instruction: inputs
                # are consumed before the output is produced.
                events.append((access.index, 1 if access.is_write else 0, access))
        for free_index in self.freed.get(id(base), ()):
            if free_index > index:
                events.append((free_index, 0, None))
        events.sort(key=lambda item: (item[0], item[1]))
        for _, _, access in events:
            if access is None:
                return True  # freed before any observing read
            if not access.is_write:
                if access.instruction.opcode is OpCode.BH_SYNC:
                    # A sync observes the base conservatively (whatever the
                    # synced window): the value is live, unless a complete
                    # overwrite already replaced it earlier in the walk.
                    return False
                if access.view.overlaps(view):
                    return False
                continue
            if _covers(access.view, view):
                return True
        return not observable_at_end


# ---------------------------------------------------------------------- #
# Interval liveness (consumed by the plan-time memory planner)
# ---------------------------------------------------------------------- #


@dataclass
class BaseInterval:
    """The lifetime of one base array within one program.

    ``start`` is the index of the first access (read, write or sync);
    ``last_use`` the index of the last access; ``end`` additionally covers
    any ``BH_FREE``.  The flags are what the memory planner needs to decide
    whether the base's storage may be aliased onto a shared slot and whether
    a recycled (non-zeroed) buffer can be handed to it safely.
    """

    base: BaseArray
    start: int
    last_use: int
    end: int
    #: First access is a write: the base's prior contents are never read, so
    #: its storage need not survive from before this program.
    defined_in_program: bool
    #: A base-covering write precedes every read: no element can ever be
    #: read uninitialised, so a recycled buffer needs no zero fill.
    fully_defined_before_read: bool
    synced: bool
    freed: bool

    @property
    def is_temporary(self) -> bool:
        """Storage may be aliased: defined here, freed here, never observable.

        ``BH_FREE`` placement does not matter — liveness already proves no
        access after ``last_use``, so the slot can be recycled from then on
        even when the free byte-code trails at the end of the batch (where
        the front-end's deferred garbage-collection frees land).
        """
        return self.defined_in_program and self.freed and not self.synced


def live_intervals(program: Program, defuse: Optional[DefUse] = None) -> List[BaseInterval]:
    """Per-base lifetime intervals for ``program``, in first-access order.

    Bases that are only freed (their values were produced by an earlier
    flush) get a degenerate interval whose ``defined_in_program`` is false.
    """
    defuse = defuse if defuse is not None else DefUse.analyze(program)
    intervals: List[BaseInterval] = []
    for base_id, base in defuse.bases.items():
        accesses = defuse.accesses.get(base_id, ())
        frees = defuse.freed.get(base_id, ())
        indices = [a.index for a in accesses] + list(frees)
        if not indices:
            continue
        start = min(indices)
        last_use = max((a.index for a in accesses), default=start)
        end = max(indices)
        first_access_index = min((a.index for a in accesses), default=None)
        defined = (
            first_access_index is not None
            and all(
                a.is_write for a in accesses if a.index == first_access_index
            )
        )
        fully_defined = defined and _covered_before_reads(base, accesses)
        intervals.append(
            BaseInterval(
                base=base,
                start=start,
                last_use=last_use,
                end=end,
                defined_in_program=defined,
                fully_defined_before_read=fully_defined,
                synced=base_id in defuse.synced,
                freed=base_id in defuse.freed,
            )
        )
    intervals.sort(key=lambda interval: interval.start)
    return intervals


def _covered_before_reads(base: BaseArray, accesses: Sequence[Access]) -> bool:
    """Does a base-covering write precede every read of ``base``?

    Within one instruction inputs are consumed before the output is
    produced, so a read at the same index as the first covering write does
    not count as covered.
    """
    covered_from: Optional[int] = None
    for access in accesses:
        if access.is_write and access.view.covers_base():
            covered_from = access.index
            break
    if covered_from is None:
        return False
    for access in accesses:
        if not access.is_write and access.index <= covered_from:
            return False
    return True


# ---------------------------------------------------------------------- #
# Stand-alone query helpers (operate directly on a program)
#
# Thin wrappers over :class:`DefUse` kept for call sites that ask a single
# question about a program; passes that query repeatedly build one DefUse
# and use its indexed methods instead.
# ---------------------------------------------------------------------- #


def reads_of_base(program: Program, base: BaseArray) -> List[int]:
    """Indices of instructions that read ``base`` (SYNC counts as a read)."""
    indices = []
    for access in DefUse.analyze(program).reads_of(base):
        if not indices or indices[-1] != access.index:
            indices.append(access.index)
    return indices


def writes_to_base(program: Program, base: BaseArray) -> List[int]:
    """Indices of instructions that write ``base``."""
    indices = []
    for access in DefUse.analyze(program).writes_of(base):
        if not indices or indices[-1] != access.index:
            indices.append(access.index)
    return indices


def base_read_between(
    program: Program, base: BaseArray, start: int, stop: int, within: Optional[View] = None
) -> bool:
    """Is ``base`` read by any instruction with index in the open range (start, stop)?

    When ``within`` is given, only reads whose view may overlap ``within``
    count.
    """
    return DefUse.analyze(program).read_between(base, start, stop, within=within)


def base_written_between(
    program: Program, base: BaseArray, start: int, stop: int, within: Optional[View] = None
) -> bool:
    """Is ``base`` written by any instruction with index in the open range (start, stop)?"""
    return DefUse.analyze(program).written_between(base, start, stop, within=within)


def is_dead_after(
    program: Program,
    index: int,
    view: View,
    observable_at_end: bool = True,
) -> bool:
    """Is the value held by ``view`` unobservable after instruction ``index``?

    The value is *dead* when no later instruction reads the view's base (in a
    possibly-overlapping region) before the base is either completely
    overwritten or freed, and the base is never synced after ``index``.

    This is the safety condition behind both the paper's Equation 2 rewrite
    ("only faster if we do not use the inverse for anything else") and
    dead-code elimination.

    Parameters
    ----------
    observable_at_end:
        How to treat a value that survives to the end of the program without
        being freed.  The front-end may still hold a handle to such a base
        and observe it in a *later* flush, so the default is the
        conservative answer ("still live").  Bohrium frees a base when the
        owning Python object is garbage collected, and our front-end does
        the same, so truly temporary values do end in ``BH_FREE`` and are
        correctly recognised as dead.  Pass ``False`` only for whole-program
        (closed-world) analyses.
    """
    return DefUse.analyze(program).value_dead_after(
        index, view, observable_at_end=observable_at_end
    )


def _covers(writer: View, target: View) -> bool:
    """Does writing ``writer`` definitely overwrite every element of ``target``?"""
    if writer.base is not target.base:
        return False
    if writer.same_view(target):
        return True
    if writer.covers_base():
        return True
    small_limit = 4096
    if writer.nelem <= small_limit and target.nelem <= small_limit:
        return set(target.element_indices()) <= set(writer.element_indices())
    return False


def observable_views(program: Program) -> Tuple[View, ...]:
    """Views whose final contents are observable program outputs.

    A view is observable when it is synced, or when its base is written and
    never freed (the front-end may still hold a reference to it).  This is
    the set the semantic verifier compares between the original and the
    optimized program.
    """
    defuse = DefUse.analyze(program)
    result: List[View] = []
    seen = set()
    for base_id, base in defuse.bases.items():
        if defuse.is_freed(base) and not defuse.is_synced(base):
            continue
        writes = defuse.writes_of(base)
        if not writes and not defuse.is_synced(base):
            continue
        key = base_id
        if key in seen:
            continue
        seen.add(key)
        # Prefer the full view of the base so all written regions compare.
        result.append(View.full(base))
    return tuple(result)
