"""Scalar constant folding across whole-view initialisations.

An *extension pass* (not part of the paper's listings, but the natural next
step of its Section 2 "transformations are rewritings" view): when a view is
initialised from a scalar constant and then updated in place with further
constant operands, the whole prefix is pure scalar arithmetic and can be
folded into a single initialisation::

    BH_IDENTITY a0, 2
    BH_ADD      a0, a0, 3        ->   BH_IDENTITY a0, 10
    BH_MULTIPLY a0, a0, 2

This subsumes part of what constant merging does, but is deliberately kept
out of the default pipeline so the default behaviour matches the paper's
Listing 3 exactly (an ``BH_IDENTITY 0`` followed by ``BH_ADD 3``); enable it
via ``default_pipeline(extended=True)`` or by name (``"constant_fold"``).

Safety mirrors the constant-merge pass: the fold only extends across
byte-codes that accumulate into the *same full view* with constant operands,
and stops at anything that reads or writes an overlapping view in between.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.rules import Pass, PassResult

#: Element-wise op-codes the folder can evaluate on scalars.
_FOLDABLE_BINARY = {
    OpCode.BH_ADD: lambda a, b: a + b,
    OpCode.BH_SUBTRACT: lambda a, b: a - b,
    OpCode.BH_MULTIPLY: lambda a, b: a * b,
    OpCode.BH_DIVIDE: lambda a, b: a / b,
    OpCode.BH_POWER: lambda a, b: a ** b,
    OpCode.BH_MAXIMUM: max,
    OpCode.BH_MINIMUM: min,
    OpCode.BH_MOD: lambda a, b: math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else a % b,
}

_FOLDABLE_UNARY = {
    OpCode.BH_NEGATIVE: lambda a: -a,
    OpCode.BH_ABSOLUTE: abs,
    OpCode.BH_SQRT: math.sqrt,
    OpCode.BH_EXP: math.exp,
    OpCode.BH_LOG: math.log,
    OpCode.BH_SIN: math.sin,
    OpCode.BH_COS: math.cos,
    OpCode.BH_TAN: math.tan,
}


class ScalarConstantFoldingPass(Pass):
    """Fold constant-initialised, constant-updated views into one byte-code."""

    name = "constant_fold"

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        instructions = list(program)
        consumed = [False] * len(instructions)
        replacements = {}

        index = 0
        while index < len(instructions):
            if consumed[index]:
                index += 1
                continue
            seed = self._as_seed(instructions[index])
            if seed is None:
                index += 1
                continue
            view, value = seed
            run_indices, folded_value = self._extend(instructions, index, view, value)
            if len(run_indices) >= 2:
                for position in run_indices:
                    consumed[position] = True
                replacements[index] = Instruction(
                    OpCode.BH_IDENTITY, (view, Constant(folded_value)), tag=self.name
                )
                stats.rewrites_applied += 1
                stats.note(
                    f"folded {len(run_indices)} byte-codes on {view.base.name} "
                    f"into BH_IDENTITY {folded_value!r}"
                )
                index = run_indices[-1] + 1
            else:
                index += 1

        result: List[Instruction] = []
        for position, instruction in enumerate(instructions):
            if position in replacements:
                result.append(replacements[position])
            elif not consumed[position]:
                result.append(instruction)
        return self._finish(Program(result), stats)

    # ------------------------------------------------------------------ #
    # Folding machinery
    # ------------------------------------------------------------------ #

    def _as_seed(self, instruction: Instruction):
        """A fold starts at ``BH_IDENTITY view, constant`` over a full view."""
        if instruction.opcode is not OpCode.BH_IDENTITY:
            return None
        out = instruction.out
        inputs = instruction.inputs
        if out is None or len(inputs) != 1 or not is_constant(inputs[0]):
            return None
        return out, inputs[0].value

    def _extend(self, instructions, start, view: View, value):
        """Extend the fold forward as far as safely possible."""
        run = [start]
        current = value
        for index in range(start + 1, len(instructions)):
            instruction = instructions[index]
            folded = self._fold_step(instruction, view, current)
            if folded is not None:
                run.append(index)
                current = folded
                continue
            if self._interferes(instruction, view):
                break
        return run, current

    def _fold_step(self, instruction: Instruction, view: View, current):
        """Fold one in-place update of ``view``; return the new scalar or ``None``."""
        out = instruction.out
        if out is None or not out.same_view(view):
            return None
        inputs = instruction.inputs
        if instruction.opcode in _FOLDABLE_UNARY and len(inputs) == 1:
            source = inputs[0]
            if is_view(source) and source.same_view(view):
                try:
                    return _FOLDABLE_UNARY[instruction.opcode](current)
                except ValueError:
                    return None
            return None
        if instruction.opcode not in _FOLDABLE_BINARY or len(inputs) != 2:
            return None
        left, right = inputs
        info = instruction.info
        if is_view(left) and left.same_view(view) and is_constant(right):
            operands = (current, right.value)
        elif is_view(right) and right.same_view(view) and is_constant(left):
            if not info.commutative and instruction.opcode not in (
                OpCode.BH_SUBTRACT,
                OpCode.BH_DIVIDE,
                OpCode.BH_POWER,
                OpCode.BH_MOD,
            ):
                return None
            operands = (left.value, current)
        else:
            return None
        try:
            return _FOLDABLE_BINARY[instruction.opcode](*operands)
        except (ZeroDivisionError, OverflowError, ValueError):
            return None

    def _interferes(self, instruction: Instruction, view: View) -> bool:
        if instruction.opcode in (OpCode.BH_SYNC, OpCode.BH_FREE):
            return any(v.base is view.base for v in instruction.views())
        for read in instruction.reads():
            if read.base is view.base and read.overlaps(view):
                return True
        for write in instruction.writes():
            if write.base is view.base and write.overlaps(view):
                return True
        return False
