"""Constant-merge transformation (paper Listings 1-3).

The motivating example of the paper: three ``BH_ADD a0, a0, 1`` byte-codes
traverse the (potentially huge) tensor three times, but because addition of
constants is associative the three constants can be summed up front and the
tensor traversed once::

    BH_ADD a0 a0 1          BH_ADD a0 a0 3
    BH_ADD a0 a0 1    =>
    BH_ADD a0 a0 1

The pass generalises the idea to any run of accumulating byte-codes of the
same *algebraic family* on the same view:

* additive family: ``BH_ADD`` / ``BH_SUBTRACT`` with a constant operand —
  merged by summing signed constants;
* multiplicative family: ``BH_MULTIPLY`` / ``BH_DIVIDE`` with a constant
  operand — merged by multiplying/dividing factors.

Safety: between two merged byte-codes nothing may read the accumulated view
(the intermediate value would become observable) and nothing may write to it
(the merge would reorder writes).  Runs therefore tolerate *unrelated*
intervening instructions, not interfering ones.  If the merged constant is
the operation's identity element the whole run disappears.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.bytecode.dtypes import promote
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.rules import Pass, PassResult
from repro.utils.config import get_config

_ADDITIVE = (OpCode.BH_ADD, OpCode.BH_SUBTRACT)
_MULTIPLICATIVE = (OpCode.BH_MULTIPLY, OpCode.BH_DIVIDE)


@dataclass
class _Candidate:
    """One accumulating byte-code eligible for merging."""

    index: int
    instruction: Instruction
    view: View
    constant: Constant
    opcode: OpCode


def _family(opcode: OpCode) -> Optional[str]:
    if opcode in _ADDITIVE:
        return "additive"
    if opcode in _MULTIPLICATIVE:
        return "multiplicative"
    return None


def _as_candidate(index: int, instruction: Instruction) -> Optional[_Candidate]:
    """Recognise ``OP view, view, constant`` accumulating onto the same view."""
    family = _family(instruction.opcode)
    if family is None:
        return None
    out = instruction.out
    if out is None:
        return None
    inputs = instruction.inputs
    if len(inputs) != 2:
        return None
    first, second = inputs
    info = instruction.info
    # Accept "view op constant"; for commutative op-codes also "constant op view".
    if is_view(first) and is_constant(second):
        accumulator, constant = first, second
    elif info.commutative and is_constant(first) and is_view(second):
        accumulator, constant = second, first
    else:
        return None
    if not accumulator.same_view(out):
        return None
    return _Candidate(index, instruction, out, constant, instruction.opcode)


class ConstantMergePass(Pass):
    """Merge runs of constant accumulations into a single byte-code."""

    name = "constant_merge"

    def __init__(self, max_window: Optional[int] = None) -> None:
        self.max_window = (
            max_window if max_window is not None else get_config().max_constant_merge_window
        )

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        instructions = list(program)
        consumed = [False] * len(instructions)
        replacements: dict = {}

        index = 0
        while index < len(instructions):
            if consumed[index]:
                index += 1
                continue
            leader = _as_candidate(index, instructions[index])
            if leader is None:
                index += 1
                continue
            run = self._collect_run(program, instructions, leader)
            if len(run) >= 2:
                merged = self._merge(run)
                for member in run:
                    consumed[member.index] = True
                replacements[leader.index] = merged
                stats.rewrites_applied += 1
                stats.note(
                    f"merged {len(run)} {leader.opcode.value} byte-codes on "
                    f"{leader.view.base.name} into "
                    f"{merged.opcode.value if merged is not None else 'nothing'}"
                )
                index = run[-1].index + 1
            else:
                index += 1

        result: List[Instruction] = []
        for position, instruction in enumerate(instructions):
            if position in replacements:
                merged = replacements[position]
                if merged is not None:
                    result.append(merged)
            elif not consumed[position]:
                result.append(instruction)
        return self._finish(Program(result), stats)

    # ------------------------------------------------------------------ #
    # Run collection and merging
    # ------------------------------------------------------------------ #

    def _collect_run(
        self, program: Program, instructions: List[Instruction], leader: _Candidate
    ) -> List[_Candidate]:
        """Extend the run starting at ``leader`` as far as safely possible."""
        family = _family(leader.opcode)
        run = [leader]
        target_view = leader.view
        integer_target = target_view.dtype.is_integer
        for index in range(leader.index + 1, len(instructions)):
            if len(run) >= self.max_window:
                break
            instruction = instructions[index]
            candidate = _as_candidate(index, instruction)
            if (
                candidate is not None
                and _family(candidate.opcode) == family
                and candidate.view.same_view(target_view)
                and not (integer_target and candidate.opcode is OpCode.BH_DIVIDE)
            ):
                run.append(candidate)
                continue
            if self._interferes(instruction, target_view):
                break
        return run

    def _interferes(self, instruction: Instruction, view: View) -> bool:
        """Would hoisting the accumulation past ``instruction`` be unsafe?"""
        if instruction.opcode is OpCode.BH_SYNC:
            return any(v.base is view.base for v in instruction.views())
        if instruction.opcode is OpCode.BH_FREE:
            return any(v.base is view.base for v in instruction.views())
        for read in instruction.reads():
            if read.base is view.base and read.overlaps(view):
                return True
        for write in instruction.writes():
            if write.base is view.base and write.overlaps(view):
                return True
        return False

    def _merge(self, run: List[_Candidate]) -> Optional[Instruction]:
        """Build the single byte-code replacing ``run`` (or ``None`` to drop it)."""
        family = _family(run[0].opcode)
        view = run[0].view
        dtype = run[0].constant.dtype
        for member in run[1:]:
            dtype = promote(dtype, member.constant.dtype)

        if family == "additive":
            total = 0
            for member in run:
                value = member.constant.value
                total = total + value if member.opcode is OpCode.BH_ADD else total - value
            if total == 0:
                return None
            if total < 0 and not dtype.is_float:
                # Keep integer semantics explicit: subtract the magnitude.
                return Instruction(
                    OpCode.BH_SUBTRACT,
                    (view, view, Constant(-total, dtype)),
                    tag="constant_merge",
                )
            return Instruction(
                OpCode.BH_ADD, (view, view, Constant(total, dtype)), tag="constant_merge"
            )

        # Multiplicative family: accumulate an exact numerator / denominator.
        numerator = 1.0 if dtype.is_float else 1
        denominator = 1.0 if dtype.is_float else 1
        for member in run:
            value = member.constant.value
            if member.opcode is OpCode.BH_MULTIPLY:
                numerator = numerator * value
            else:
                denominator = denominator * value
        if numerator == denominator:
            return None
        if denominator == 1:
            return Instruction(
                OpCode.BH_MULTIPLY,
                (view, view, Constant(numerator, dtype)),
                tag="constant_merge",
            )
        if numerator == 1:
            return Instruction(
                OpCode.BH_DIVIDE,
                (view, view, Constant(denominator, dtype)),
                tag="constant_merge",
            )
        return Instruction(
            OpCode.BH_MULTIPLY,
            (view, view, Constant(numerator / denominator, dtype)),
            tag="constant_merge",
        )
