"""Copy propagation.

``BH_IDENTITY dst, src`` copies a whole view.  When later byte-codes read
``dst`` while neither ``dst`` nor ``src`` has been written in between, they
can read ``src`` directly.  Once every reader has been redirected the copy
itself usually becomes dead and is swept up by DCE — together the two passes
implement the "temporary elimination" side of the paper's fusion-like
contractions.

The pass is deliberately conservative:

* only full-view to full-view copies with identical shapes are propagated;
* propagation stops at the first write to either base, at a ``BH_SYNC`` of
  the destination, and at a ``BH_FREE`` of the source;
* the destination view is only replaced when it appears as a *read* operand
  with exactly the same view as the copy wrote.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.rules import Pass, PassResult


class CopyPropagationPass(Pass):
    """Redirect readers of a copied view to the copy's source."""

    name = "copy_propagation"

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        instructions = list(program)
        for index, instruction in enumerate(instructions):
            copy = self._as_copy(instruction)
            if copy is None:
                continue
            dst, src = copy
            propagated = self._propagate(instructions, index, dst, src)
            if propagated:
                stats.rewrites_applied += 1
                stats.note(
                    f"redirected {propagated} read(s) of {dst.base.name} to {src.base.name}"
                )
        return self._finish(Program(instructions), stats)

    def _as_copy(self, instruction: Instruction) -> Optional[tuple]:
        if instruction.opcode is not OpCode.BH_IDENTITY:
            return None
        out = instruction.out
        inputs = instruction.inputs
        if out is None or len(inputs) != 1 or not is_view(inputs[0]):
            return None
        src = inputs[0]
        if out.shape != src.shape:
            return None
        if out.base is src.base:
            return None
        return out, src

    def _propagate(
        self, instructions: List[Instruction], copy_index: int, dst: View, src: View
    ) -> int:
        """Rewrite readers of ``dst`` after ``copy_index``; returns the count."""
        propagated = 0
        for index in range(copy_index + 1, len(instructions)):
            instruction = instructions[index]
            # Stop conditions first: anything that changes either value, or
            # makes the source unavailable, ends the propagation window.
            if instruction.opcode is OpCode.BH_FREE:
                if any(v.base is src.base or v.base is dst.base for v in instruction.views()):
                    break
                continue
            if instruction.opcode is OpCode.BH_SYNC:
                continue
            writes_dst = any(
                v.base is dst.base and v.overlaps(dst) for v in instruction.writes()
            )
            writes_src = any(
                v.base is src.base and v.overlaps(src) for v in instruction.writes()
            )
            replaced = self._rewrite_reads(instructions, index, dst, src)
            propagated += replaced
            if writes_dst or writes_src:
                break
        return propagated

    def _rewrite_reads(
        self, instructions: List[Instruction], index: int, dst: View, src: View
    ) -> int:
        """Replace read operands equal to ``dst`` with ``src`` in one instruction."""
        instruction = instructions[index]
        if instruction.kernel is not None:
            return 0
        info = instruction.info
        new_operands = list(instruction.operands)
        replaced = 0
        start = 1 if info.has_output else 0
        for position in range(start, len(new_operands)):
            operand = new_operands[position]
            if is_view(operand) and operand.same_view(dst):
                new_operands[position] = src
                replaced += 1
        if replaced:
            instructions[index] = instruction.replace(operands=new_operands, tag=self.name)
        return replaced
