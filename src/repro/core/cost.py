"""Cost model used to gate and evaluate rewrites.

The paper's Section 4 observes that power expansion is only enabled because
"benchmarks have shown that for values close to a power of 2, multiplying
multiple times is faster than doing an actual BH_POWER" — i.e. the rewrite
decision is a *cost* decision, not a purely algebraic one.  The
:class:`CostModel` prices individual byte-codes and whole programs against a
device profile (the same roofline model the simulated accelerator uses), so
passes can ask "is the rewritten sequence actually cheaper on this device?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.bytecode.instruction import Instruction
from repro.bytecode.program import Program
from repro.runtime.simulator import (
    DEVICE_PROFILES,
    DeviceProfile,
    instruction_bytes,
    instruction_flops,
    simulate_program_time,
)
from repro.utils.errors import CostModelError


@dataclass
class CostBreakdown:
    """Itemised cost of a program under one device profile."""

    kernel_launches: int
    flops: float
    bytes_moved: float
    seconds: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for reports and benchmark tables."""
        return {
            "kernel_launches": self.kernel_launches,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "seconds": self.seconds,
        }


class CostModel:
    """Prices byte-codes and programs for one device profile."""

    def __init__(self, profile: Union[str, DeviceProfile] = "gpu") -> None:
        if isinstance(profile, DeviceProfile):
            self.profile = profile
        else:
            try:
                self.profile = DEVICE_PROFILES[profile]
            except KeyError:
                raise CostModelError(
                    f"unknown device profile {profile!r}; available: {tuple(DEVICE_PROFILES)}"
                ) from None

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def instruction_cost(self, instruction: Instruction) -> float:
        """Simulated seconds for one byte-code (launch overhead included)."""
        if instruction.is_system():
            return 0.0
        flops = instruction_flops(instruction)
        bytes_moved = instruction_bytes(instruction)
        return self.profile.kernel_launch_overhead_s + self.profile.roofline_time(
            flops, bytes_moved
        )

    def program_cost(self, program: Program) -> float:
        """Simulated seconds for a whole program."""
        return simulate_program_time(program, self.profile)

    def breakdown(self, program: Program) -> CostBreakdown:
        """Itemised cost of a program."""
        launches = 0
        flops = 0.0
        bytes_moved = 0.0
        for instruction in program:
            if instruction.is_system():
                continue
            launches += 1
            flops += instruction_flops(instruction)
            bytes_moved += instruction_bytes(instruction)
        return CostBreakdown(
            kernel_launches=launches,
            flops=flops,
            bytes_moved=bytes_moved,
            seconds=self.program_cost(program),
        )

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def is_improvement(self, before: Program, after: Program) -> bool:
        """Does ``after`` cost strictly less than ``before`` on this device?"""
        return self.program_cost(after) < self.program_cost(before)

    def speedup(self, before: Program, after: Program) -> float:
        """Predicted speedup factor of ``after`` relative to ``before``."""
        after_cost = self.program_cost(after)
        if after_cost == 0.0:
            return float("inf")
        return self.program_cost(before) / after_cost
