"""Cost model used to gate and evaluate rewrites.

The paper's Section 4 observes that power expansion is only enabled because
"benchmarks have shown that for values close to a power of 2, multiplying
multiple times is faster than doing an actual BH_POWER" — i.e. the rewrite
decision is a *cost* decision, not a purely algebraic one.  The
:class:`CostModel` prices individual byte-codes and whole programs against a
device profile (the same roofline model the simulated accelerator uses), so
passes can ask "is the rewritten sequence actually cheaper on this device?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.bytecode.instruction import Instruction
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.runtime.simulator import (
    DEVICE_PROFILES,
    DeviceProfile,
    instruction_bytes,
    instruction_flops,
    simulate_program_time,
)
from repro.utils.errors import CostModelError


@dataclass
class CostBreakdown:
    """Itemised cost of a program under one device profile."""

    kernel_launches: int
    flops: float
    bytes_moved: float
    seconds: float

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict form for reports and benchmark tables."""
        return {
            "kernel_launches": self.kernel_launches,
            "flops": self.flops,
            "bytes_moved": self.bytes_moved,
            "seconds": self.seconds,
        }


class CostModel:
    """Prices byte-codes and programs for one device profile."""

    def __init__(self, profile: Union[str, DeviceProfile] = "gpu") -> None:
        if isinstance(profile, DeviceProfile):
            self.profile = profile
        else:
            try:
                self.profile = DEVICE_PROFILES[profile]
            except KeyError:
                raise CostModelError(
                    f"unknown device profile {profile!r}; available: {tuple(DEVICE_PROFILES)}"
                ) from None

    # ------------------------------------------------------------------ #
    # Pricing
    # ------------------------------------------------------------------ #

    def instruction_cost(self, instruction: Instruction) -> float:
        """Simulated seconds for one byte-code (launch overhead included)."""
        if instruction.is_system():
            return 0.0
        flops = instruction_flops(instruction)
        bytes_moved = instruction_bytes(instruction)
        return self.profile.kernel_launch_overhead_s + self.profile.roofline_time(
            flops, bytes_moved
        )

    def program_cost(self, program: Program) -> float:
        """Simulated seconds for a whole program."""
        return simulate_program_time(program, self.profile)

    def breakdown(self, program: Program) -> CostBreakdown:
        """Itemised cost of a program."""
        launches = 0
        flops = 0.0
        bytes_moved = 0.0
        for instruction in program:
            if instruction.is_system():
                continue
            launches += 1
            flops += instruction_flops(instruction)
            bytes_moved += instruction_bytes(instruction)
        return CostBreakdown(
            kernel_launches=launches,
            flops=flops,
            bytes_moved=bytes_moved,
            seconds=self.program_cost(program),
        )

    @staticmethod
    def view_key(view: View) -> tuple:
        """Identity of a streamed operand (base plus exact window)."""
        return (id(view.base), view.offset, view.shape, view.strides)

    def fusion_merge_saving(
        self, kernel_views: Iterable[View], instruction: Instruction
    ) -> float:
        """Predicted seconds saved by fusing ``instruction`` into a kernel.

        ``kernel_views`` are the views the kernel already streams (its
        template slot views).  Fusing saves the candidate's own kernel
        launch, plus the memory traffic of every candidate operand the
        kernel streams anyway — a fused kernel reads/writes each distinct
        view once, not once per byte-code.  This is the acceptance criterion
        the dependency-graph fusion scheduler evaluates per merge.
        """
        return self.fusion_merge_saving_for_keys(
            {self.view_key(view) for view in kernel_views}, instruction
        )

    def fusion_merge_saving_for_keys(
        self, streamed_keys, instruction: Instruction
    ) -> float:
        """:meth:`fusion_merge_saving` against a precomputed key set.

        Callers that evaluate many candidates against one growing kernel
        (the dependency-graph scheduler's absorb loop) maintain the set of
        :meth:`view_key` tokens incrementally instead of rebuilding it per
        candidate.
        """
        saving = self.profile.kernel_launch_overhead_s
        if not self.profile.bytes_per_second:
            return saving
        shared_bytes = 0
        seen = set()
        for view in instruction.views():
            key = self.view_key(view)
            if key in streamed_keys and key not in seen:
                seen.add(key)
                shared_bytes += view.nbytes
        return saving + shared_bytes / self.profile.bytes_per_second

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #

    def is_improvement(self, before: Program, after: Program) -> bool:
        """Does ``after`` cost strictly less than ``before`` on this device?"""
        return self.program_cost(after) < self.program_cost(before)

    def speedup(self, before: Program, after: Program) -> float:
        """Predicted speedup factor of ``after`` relative to ``before``."""
        after_cost = self.program_cost(after)
        if after_cost == 0.0:
            return float("inf")
        return self.program_cost(before) / after_cost
