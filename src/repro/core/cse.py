"""Common-subexpression elimination over byte-code sequences.

An extension pass: when two byte-codes apply the same operation to the same
inputs and nothing has modified those inputs (or the first result) in
between, the second computation is redundant — it can be replaced by a copy
of the first result, which copy propagation and DCE then usually dissolve
entirely.

Typical front-end source of such redundancy::

    d1 = (log(s / k) + a) / b
    d2 = (log(s / k) + c) / b      # log(s / k) recorded twice

Safety conditions for treating instruction *j* as a repeat of instruction
*i* (i < j):

* same op-code and operand list (views compared structurally, constants by
  value), and the op-code is element-wise and deterministic (``BH_RANDOM``
  is excluded);
* no write to any input base's overlapping region between *i* and *j*;
* no write to *i*'s output region between *i* and *j* (the cached value must
  still be intact), and *i*'s output does not alias its inputs (an in-place
  update changes its own input, so the "same inputs" argument breaks).
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.analysis import DefUse
from repro.core.rules import Pass, PassResult


def _is_candidate(instruction: Instruction) -> bool:
    if not instruction.is_elementwise():
        return False
    if instruction.opcode is OpCode.BH_IDENTITY:
        # plain copies are copy-propagation's job
        return False
    out = instruction.out
    if out is None:
        return False
    # in-place updates consume their own previous value; skip them
    return not any(out.overlaps(view) for view in instruction.input_views)


def _same_computation(first: Instruction, second: Instruction) -> bool:
    if first.opcode is not second.opcode:
        return False
    return first.inputs == second.inputs


class CommonSubexpressionEliminationPass(Pass):
    """Replace repeated identical element-wise byte-codes with copies."""

    name = "cse"

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        # One def-use index answers every "was this written in between?"
        # query below; the pass never rescans the program per candidate.
        defuse = DefUse.analyze(program)
        instructions = list(program)
        result: List[Instruction] = []
        for index, instruction in enumerate(instructions):
            replacement = self._find_replacement(defuse, instructions, index, instruction)
            if replacement is None:
                result.append(instruction)
            else:
                stats.rewrites_applied += 1
                stats.note(
                    f"instruction {index} ({instruction.opcode.value}) reuses the "
                    f"result computed at {replacement[0]}"
                )
                result.append(replacement[1])
        return self._finish(Program(result), stats)

    def _find_replacement(
        self, defuse: DefUse, instructions, index: int, instruction: Instruction
    ):
        if not _is_candidate(instruction):
            return None
        for earlier_index in range(index - 1, -1, -1):
            earlier = instructions[earlier_index]
            if not _is_candidate(earlier):
                continue
            if not _same_computation(earlier, instruction):
                continue
            if not self._still_valid(defuse, earlier, earlier_index, index):
                continue
            source = earlier.out
            target = instruction.out
            if source.same_view(target):
                # identical instruction writing the same place: it is a pure
                # no-op repeat and can be dropped by returning a self-copy,
                # which identity-simplify/DCE remove.
                return earlier_index, Instruction(
                    OpCode.BH_IDENTITY, (target, source), tag=self.name
                )
            if source.shape != target.shape:
                continue
            return earlier_index, Instruction(
                OpCode.BH_IDENTITY, (target, source), tag=self.name
            )
        return None

    def _still_valid(
        self, defuse: DefUse, earlier: Instruction, earlier_index: int, index: int
    ) -> bool:
        # inputs unchanged since the earlier computation
        for view in earlier.input_views:
            if defuse.written_between(view.base, earlier_index, index, within=view):
                return False
        # the cached result itself unchanged
        out = earlier.out
        if defuse.written_between(out.base, earlier_index, index, within=out):
            return False
        return True
