"""Dead-code elimination.

A byte-code is dead when the value it writes can never be observed: no later
instruction reads the written view before it is completely overwritten or
freed, and the view's base is never synced afterwards.  Such byte-codes
commonly appear after copy propagation and after the linear-solve rewrite
(the now-unused ``BH_MATRIX_INVERSE``).

The pass iterates to a local fixed point because removing one dead
instruction can make its producers dead as well.
"""

from __future__ import annotations

from typing import List

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.analysis import DefUse
from repro.core.rules import Pass, PassResult


class DeadCodeEliminationPass(Pass):
    """Remove byte-codes whose results are never observed."""

    name = "dce"

    def __init__(self, max_iterations: int = 8) -> None:
        self.max_iterations = max_iterations

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        current = program
        for _ in range(self.max_iterations):
            removed, current = self._sweep(current, stats)
            if removed == 0:
                break
        return self._finish(current, stats)

    def _sweep(self, program: Program, stats) -> tuple:
        """One removal sweep; returns (number removed, new program)."""
        # One def-use index per sweep serves every deadness query; removals
        # invalidate it, which is why the fixed-point loop re-sweeps.
        defuse = DefUse.analyze(program)
        keep: List[Instruction] = []
        removed = 0
        for index, instruction in enumerate(program):
            if self._is_removable(defuse, index, instruction):
                removed += 1
                stats.rewrites_applied += 1
                stats.note(f"removed dead {instruction.opcode.value} at {index}")
                continue
            keep.append(instruction)
        return removed, Program(keep)

    def _is_removable(self, defuse: DefUse, index: int, instruction: Instruction) -> bool:
        # System byte-codes, frees and syncs are control/observability points
        # and are never removed here.
        if instruction.is_system():
            return False
        writes = instruction.writes()
        if not writes:
            return False
        return all(defuse.value_dead_after(index, view) for view in writes)
