"""Fusion: contract element-wise byte-code chains into single kernels.

The paper describes the low end of its transformation spectrum as "small
loop-fusion-like contractions of byte-codes".  This pass performs exactly
that contraction at the IR level: maximal runs of consecutive element-wise
byte-codes sharing one iteration space are wrapped into a single
``BH_FUSED`` instruction, so a backend launches one kernel (and, under the
simulated accelerator's cost model, streams each operand once) instead of
one kernel per byte-code.

The clustering policy is shared with the runtime's fusing JIT
(:func:`repro.runtime.kernel.partition_into_kernels`) so "what the optimizer
fuses" and "what the backend would fuse anyway" stay consistent; running the
pass simply bakes the decision into the program, which the simulated
accelerator and the cluster executor honour.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.program import Program
from repro.core.rules import Pass, PassResult
from repro.runtime.kernel import Kernel, partition_into_kernels
from repro.utils.config import get_config


class FusionPass(Pass):
    """Wrap fusable element-wise chains into ``BH_FUSED`` kernels."""

    name = "fusion"

    def __init__(self, max_kernel_size: Optional[int] = None, min_kernel_size: int = 2) -> None:
        """
        Parameters
        ----------
        max_kernel_size:
            Largest number of byte-codes per fused kernel (defaults to the
            library configuration).
        min_kernel_size:
            Chains shorter than this are left alone — fusing a single
            byte-code only adds wrapper overhead.
        """
        self.max_kernel_size = (
            max_kernel_size
            if max_kernel_size is not None
            else get_config().fusion_max_kernel_size
        )
        self.min_kernel_size = min_kernel_size

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        result: List[Instruction] = []
        for item in partition_into_kernels(program, self.max_kernel_size):
            if isinstance(item, Kernel):
                if item.size >= self.min_kernel_size:
                    stats.rewrites_applied += 1
                    stats.note(f"fused {item.size} element-wise byte-codes into one kernel")
                    result.append(item.as_instruction(tag=self.name))
                else:
                    result.extend(item.instructions)
            else:
                result.append(item)
        return self._finish(Program(result), stats)
