"""Fusion: contract element-wise byte-code chains into single kernels.

The paper describes its transformation spectrum as ranging from "small
loop-fusion-like contractions of byte-codes" upward.  This pass performs
that contraction at the IR level through the shared scheduling seam
(:func:`repro.core.schedule.compute_schedule`): under the default
``"dag"`` scheduler it builds the program's data-dependency graph, legally
reorders *non-adjacent* fusable element-wise byte-codes next to each other
and wraps each cost-accepted cluster into a single ``BH_FUSED``
instruction; under ``"consecutive"`` it restores the low-end policy of
maximal adjacent runs (:func:`repro.runtime.kernel.partition_into_kernels`).

Because the pass bakes the *scheduled order* into the optimized program,
every downstream consumer sees it: a backend launches one kernel per
cluster (and, under the simulated accelerator's cost model, streams each
operand once), the tiled parallel backend decomposes the fused kernels, and
the memory planner observes the fusion-shortened lifetimes when it aliases
buffers.  The computed :class:`~repro.core.schedule.FusionSchedule` is
recorded in the pass statistics so the execution engine can attach it to
the cached :class:`~repro.runtime.plan.ExecutionPlan`.
"""

from __future__ import annotations

from typing import Optional

from repro.bytecode.program import Program
from repro.core.rules import Pass, PassResult
from repro.core.schedule import compute_schedule
from repro.utils.config import get_config


class FusionPass(Pass):
    """Wrap fusable element-wise clusters into ``BH_FUSED`` kernels."""

    name = "fusion"

    def __init__(self, max_kernel_size: Optional[int] = None, min_kernel_size: int = 2) -> None:
        """
        Parameters
        ----------
        max_kernel_size:
            Largest number of byte-codes per fused kernel (defaults to the
            library configuration).
        min_kernel_size:
            Clusters smaller than this are left alone — fusing a single
            byte-code only adds wrapper overhead.
        """
        self.max_kernel_size = (
            max_kernel_size
            if max_kernel_size is not None
            else get_config().fusion_max_kernel_size
        )
        self.min_kernel_size = min_kernel_size

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        # Passing min_kernel_size keeps the schedule's items (and therefore
        # its launch counts, reported on the plan and by the CLI) in exact
        # agreement with what this pass emits: sub-threshold clusters are
        # already broken back into singletons.
        schedule = compute_schedule(
            program,
            max_kernel_size=self.max_kernel_size,
            min_kernel_size=self.min_kernel_size,
        )
        stats.artifacts["fusion_schedule"] = schedule
        fused_any = False
        for item in schedule.items:
            if len(item) > 1:
                fused_any = True
                stats.rewrites_applied += 1
                stats.note(
                    f"fused {len(item)} element-wise byte-codes into one kernel"
                    + ("" if _is_contiguous(item) else " (non-adjacent)")
                )
        reordered = not schedule.is_identity_order
        if reordered and not fused_any:
            # The scheduler moved byte-codes in service of clusters that
            # ended up below the wrapping threshold; the emitted program
            # still changed, so report the reorder as a rewrite.
            stats.rewrites_applied += 1
            stats.note(
                f"reordered {schedule.bytecodes_reordered} byte-code(s) along the "
                "dependency-graph schedule"
            )
        if not fused_any and not reordered:
            return self._finish(program, stats)
        result = schedule.materialize(
            program, min_kernel_size=self.min_kernel_size, tag=self.name
        )
        return self._finish(result, stats)


def _is_contiguous(item) -> bool:
    """True when a cluster's byte-codes were already adjacent in order."""
    return all(b == a + 1 for a, b in zip(item, item[1:]))
