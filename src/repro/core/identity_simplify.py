"""Identity simplification: remove algebraically trivial byte-codes.

Small local rewrites that frequently appear after the front-end has recorded
a program and after other passes have run:

* ``x + 0``, ``x - 0``, ``x * 1``, ``x / 1``, ``x ** 1`` where the output is
  the same view as the input — the byte-code is a no-op and is dropped.
* the same patterns writing to a *different* view become a plain
  ``BH_IDENTITY`` copy.
* ``x * 0`` becomes ``BH_IDENTITY out, 0``.
* ``x ** 0`` becomes ``BH_IDENTITY out, 1``.
* ``BH_IDENTITY v, v`` (copying a view onto itself) is dropped.

These rewrites feed the constant-merge and DCE passes; they are the "small
loop-fusion-like contractions" end of the paper's transformation spectrum.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.core.rules import Pass, PassResult

_DROP = "drop"


class IdentitySimplifyPass(Pass):
    """Remove or simplify algebraically trivial byte-codes."""

    name = "identity_simplify"

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        result: List[Instruction] = []
        for instruction in program:
            simplified = self._simplify(instruction)
            if simplified is _DROP:
                stats.rewrites_applied += 1
                stats.note(f"dropped no-op {instruction.opcode.value}")
                continue
            if simplified is None:
                result.append(instruction)
                continue
            stats.rewrites_applied += 1
            stats.note(
                f"replaced {instruction.opcode.value} with {simplified.opcode.value}"
            )
            result.append(simplified)
        return self._finish(Program(result), stats)

    def _simplify(self, instruction: Instruction):
        """Return ``_DROP``, a replacement instruction, or ``None`` (keep)."""
        opcode = instruction.opcode
        out = instruction.out
        if out is None:
            return None
        inputs = instruction.inputs

        if opcode is OpCode.BH_IDENTITY and len(inputs) == 1:
            source = inputs[0]
            if is_view(source) and source.same_view(out):
                return _DROP
            return None

        if len(inputs) != 2:
            return None
        first, second = inputs

        # Normalise "constant op view" for commutative op-codes so the
        # checks below only need to consider the constant on the right.
        if instruction.info.commutative and is_constant(first) and is_view(second):
            first, second = second, first

        if not (is_view(first) and is_constant(second)):
            return None
        value = second.value
        in_place = first.same_view(out)

        if opcode in (OpCode.BH_ADD, OpCode.BH_SUBTRACT) and value == 0:
            return _DROP if in_place else Instruction(
                OpCode.BH_IDENTITY, (out, first), tag=self.name
            )
        if opcode in (OpCode.BH_MULTIPLY, OpCode.BH_DIVIDE) and value == 1:
            return _DROP if in_place else Instruction(
                OpCode.BH_IDENTITY, (out, first), tag=self.name
            )
        if opcode is OpCode.BH_MULTIPLY and value == 0:
            return Instruction(
                OpCode.BH_IDENTITY, (out, Constant(0, out.dtype)), tag=self.name
            )
        if opcode is OpCode.BH_POWER and value == 1:
            return _DROP if in_place else Instruction(
                OpCode.BH_IDENTITY, (out, first), tag=self.name
            )
        if opcode is OpCode.BH_POWER and value == 0:
            return Instruction(
                OpCode.BH_IDENTITY, (out, Constant(1, out.dtype)), tag=self.name
            )
        return None
