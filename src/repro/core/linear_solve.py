"""Context-aware linear-solve rewrite (paper Equation 2).

The byte-code idiom for ``x = inv(A) @ b``::

    BH_MATRIX_INVERSE t, A
    ...                        # unrelated byte-codes
    BH_MATMUL x, t, b

costs about ``2 n^3`` flops for the inversion plus ``2 n^2`` for the product.
Solving the same system through an LU factorisation costs about
``2/3 n^3 + 2 n^2`` — roughly three times cheaper — so the pass rewrites the
idiom to::

    BH_LU_SOLVE x, A, b

**but only when** the inverse tensor ``t`` is not used for anything else,
which is exactly the caveat the paper attaches to the transformation ("this
is of course only faster, if we do not use the inverse for anything else in
our computations").  The safety conditions are established with the liveness
analysis from :mod:`repro.core.analysis`:

* ``t`` is read only by the matched ``BH_MATMUL`` (and possibly freed);
* ``t`` is never synced (it is not a program output);
* neither ``A`` nor ``b`` is modified between the inversion and the product.

When the inverse *is* reused the rewrite is refused — benchmark E5 includes
this negative case.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.analysis import DefUse
from repro.core.pattern import Capture, InstructionPattern, IsView, SequencePattern
from repro.core.rules import Pass, PassResult


def _solve_pattern() -> SequencePattern:
    """The two-instruction idiom, tolerant of unrelated byte-codes in between."""
    inverse = InstructionPattern(
        opcodes=(OpCode.BH_MATRIX_INVERSE,),
        output="inverse",
        inputs=(IsView("matrix"),),
    )
    matmul = InstructionPattern(
        opcodes=(OpCode.BH_MATMUL,),
        output="solution",
        inputs=(Capture("inverse"), IsView("rhs")),
    )
    return SequencePattern(steps=(inverse, matmul), allow_gaps=True)


class LinearSolveRewritePass(Pass):
    """Rewrite ``inv(A) @ b`` byte-code idioms into ``BH_LU_SOLVE``."""

    name = "linear_solve"

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        matches = _solve_pattern().find_all(program)
        if not matches:
            return self._finish(program.copy(), stats)

        defuse = DefUse.analyze(program)
        to_remove = set()
        replacements = {}
        for match in matches:
            inverse_index, matmul_index = match.indices
            if not self._is_safe(program, defuse, match, inverse_index, matmul_index):
                continue
            matrix = match.view("matrix")
            rhs = match.view("rhs")
            solution = match.view("solution")
            replacements[matmul_index] = Instruction(
                OpCode.BH_LU_SOLVE, (solution, matrix, rhs), tag=self.name
            )
            to_remove.add(inverse_index)
            stats.rewrites_applied += 1
            stats.note(
                f"rewrote inverse({matrix.base.name}) @ {rhs.base.name} "
                f"into BH_LU_SOLVE"
            )

        if not replacements:
            return self._finish(program.copy(), stats)

        result: List[Instruction] = []
        for index, instruction in enumerate(program):
            if index in to_remove:
                continue
            if index in replacements:
                result.append(replacements[index])
                continue
            result.append(instruction)
        return self._finish(Program(result), stats)

    def _is_safe(
        self,
        program: Program,
        defuse: DefUse,
        match,
        inverse_index: int,
        matmul_index: int,
    ) -> bool:
        inverse_view = match.view("inverse")
        matrix_view = match.view("matrix")
        rhs_view = match.view("rhs")
        inverse_base = inverse_view.base

        # The inverse must not be a program output.
        if defuse.is_synced(inverse_base):
            return False

        # The only read of the inverse may be the matched matmul.
        reads = [access.index for access in defuse.reads_of(inverse_base)]
        if any(index != matmul_index for index in reads):
            return False

        # The inverse value must be dead after the matmul (nothing reads it
        # later before it is overwritten or freed).
        if not defuse.value_dead_after(matmul_index, inverse_view):
            return False

        # A and b must still hold the same values at the matmul as they did
        # at the inversion, otherwise A used by LU_SOLVE differs from the A
        # that was inverted.
        if defuse.written_between(
            matrix_view.base, inverse_index, matmul_index, within=matrix_view
        ):
            return False
        if defuse.written_between(
            rhs_view.base, inverse_index, matmul_index, within=rhs_view
        ):
            return False

        # The solution must not alias A or b in a way the combined solve
        # could corrupt (the fused LU_SOLVE reads both of them fully).
        solution = match.view("solution")
        if solution.overlaps(matrix_view) or solution.overlaps(rhs_view):
            return False
        return True
