"""Declarative patterns over byte-code instructions.

The idiom-detecting rules (constant merge, linear solve) need to express
conditions like "a ``BH_ADD`` whose output view equals its first input view
and whose second input is a constant".  This module provides a small,
explicit pattern language for that:

>>> accumulate_add = InstructionPattern(
...     opcodes=(OpCode.BH_ADD,),
...     output="acc",            # capture the output view under the name "acc"
...     inputs=(Capture("acc"),  # first input must be the same view
...             IsConstant("delta")),
... )

Patterns return a :class:`MatchResult` carrying the captured operands, and a
:class:`SequencePattern` matches a list of instruction patterns against
consecutive (or gap-tolerant) instruction windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, Operand, is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View


@dataclass
class MatchResult:
    """Captured operands and matched instruction indices from one match."""

    captures: Dict[str, Operand] = field(default_factory=dict)
    indices: List[int] = field(default_factory=list)

    def view(self, name: str) -> View:
        """Return a captured operand known to be a view."""
        operand = self.captures[name]
        if not is_view(operand):
            raise KeyError(f"capture {name!r} is not a view")
        return operand

    def constant(self, name: str) -> Constant:
        """Return a captured operand known to be a constant."""
        operand = self.captures[name]
        if not is_constant(operand):
            raise KeyError(f"capture {name!r} is not a constant")
        return operand


class OperandPattern:
    """Base class for operand-level patterns."""

    def matches(self, operand: Operand, result: MatchResult) -> bool:
        """Test ``operand``; record captures into ``result`` on success."""
        raise NotImplementedError


@dataclass
class Any(OperandPattern):
    """Matches any operand, optionally capturing it."""

    capture: Optional[str] = None

    def matches(self, operand: Operand, result: MatchResult) -> bool:
        if self.capture is not None:
            result.captures[self.capture] = operand
        return True


@dataclass
class IsView(OperandPattern):
    """Matches a view operand, optionally capturing it."""

    capture: Optional[str] = None

    def matches(self, operand: Operand, result: MatchResult) -> bool:
        if not is_view(operand):
            return False
        if self.capture is not None:
            result.captures[self.capture] = operand
        return True


@dataclass
class IsConstant(OperandPattern):
    """Matches a constant operand, optionally restricted by a predicate."""

    capture: Optional[str] = None
    predicate: Optional[Callable[[Constant], bool]] = None

    def matches(self, operand: Operand, result: MatchResult) -> bool:
        if not is_constant(operand):
            return False
        if self.predicate is not None and not self.predicate(operand):
            return False
        if self.capture is not None:
            result.captures[self.capture] = operand
        return True


@dataclass
class Capture(OperandPattern):
    """Matches an operand equal to a previously captured one (or captures it).

    For views "equal" means :meth:`View.same_view`; for constants it is value
    equality.  When the name has not been captured yet this behaves like
    :class:`Any` with a capture, which lets the same pattern both bind and
    constrain.
    """

    name: str
    same_base_only: bool = False

    def matches(self, operand: Operand, result: MatchResult) -> bool:
        if self.name not in result.captures:
            result.captures[self.name] = operand
            return True
        existing = result.captures[self.name]
        if is_view(existing) and is_view(operand):
            if self.same_base_only:
                return existing.base is operand.base
            return existing.same_view(operand)
        if is_constant(existing) and is_constant(operand):
            return existing == operand
        return False


@dataclass
class InstructionPattern:
    """Pattern over a single instruction.

    Attributes
    ----------
    opcodes:
        Acceptable op-codes.
    output:
        Pattern (or capture name) for the output view; ``None`` means
        "don't care".  A bare string is shorthand for ``Capture(name)``.
    inputs:
        Patterns for each input operand, in order.  ``None`` means "don't
        care about the inputs at all"; otherwise the arity must match.
    predicate:
        Optional extra predicate over the whole instruction.
    """

    opcodes: Tuple[OpCode, ...]
    output: Union[None, str, OperandPattern] = None
    inputs: Optional[Sequence[Union[str, OperandPattern]]] = None
    predicate: Optional[Callable[[Instruction], bool]] = None

    def _coerce(self, pattern: Union[str, OperandPattern]) -> OperandPattern:
        if isinstance(pattern, str):
            return Capture(pattern)
        return pattern

    def matches(self, instruction: Instruction, result: Optional[MatchResult] = None) -> Optional[MatchResult]:
        """Match one instruction; return the (updated) result or ``None``."""
        result = result if result is not None else MatchResult()
        if instruction.opcode not in self.opcodes:
            return None
        if self.predicate is not None and not self.predicate(instruction):
            return None
        # Work on a copy of captures so a failed match does not pollute them.
        trial = MatchResult(captures=dict(result.captures), indices=list(result.indices))
        if self.output is not None:
            out = instruction.out
            if out is None:
                return None
            if not self._coerce(self.output).matches(out, trial):
                return None
        if self.inputs is not None:
            inputs = instruction.inputs
            if len(inputs) != len(self.inputs):
                return None
            for operand, pattern in zip(inputs, self.inputs):
                if not self._coerce(pattern).matches(operand, trial):
                    return None
        result.captures = trial.captures
        result.indices = trial.indices
        return result


@dataclass
class SequencePattern:
    """Matches a list of instruction patterns against a program window.

    Parameters
    ----------
    steps:
        The instruction patterns, in order.
    allow_gaps:
        When true, unrelated instructions may appear between matched steps as
        long as ``gap_filter`` accepts them (default: any instruction is an
        acceptable gap).  When false the steps must be consecutive.
    gap_filter:
        Predicate deciding whether an instruction may sit inside a gap.
    """

    steps: Sequence[InstructionPattern]
    allow_gaps: bool = False
    gap_filter: Optional[Callable[[Instruction], bool]] = None

    def match_at(self, program: Program, start: int) -> Optional[MatchResult]:
        """Try to match the sequence beginning at instruction ``start``."""
        result = MatchResult()
        position = start
        for step_number, step in enumerate(self.steps):
            found = None
            while position < len(program):
                instruction = program[position]
                matched = step.matches(instruction, result)
                if matched is not None:
                    matched.indices.append(position)
                    result = matched
                    found = position
                    position += 1
                    break
                if step_number == 0 or not self.allow_gaps:
                    return None
                if self.gap_filter is not None and not self.gap_filter(instruction):
                    return None
                position += 1
            if found is None:
                return None
        return result

    def find_all(self, program: Program) -> List[MatchResult]:
        """All non-overlapping matches, scanning left to right."""
        matches: List[MatchResult] = []
        taken: set = set()
        for start in range(len(program)):
            if start in taken:
                continue
            result = self.match_at(program, start)
            if result is None:
                continue
            if any(index in taken for index in result.indices):
                continue
            taken.update(result.indices)
            matches.append(result)
        return matches
