"""The optimization pipeline (pass manager).

Composes the individual transformation passes, optionally iterates them to a
fixed point (one rewrite frequently enables another: power expansion creates
multiply chains that fusion then contracts; the linear-solve rewrite leaves a
dead inversion that DCE then removes), optionally verifies semantic
equivalence, and reports per-pass statistics.

The top-level convenience function is :func:`optimize`:

>>> report = optimize(program)
>>> report.optimized            # the rewritten program
>>> report.total_rewrites       # how many rewrite sites fired
>>> report.instructions_removed # net byte-code count change
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

from repro.bytecode.program import Program
from repro.bytecode.validate import validate_program
from repro.core.rules import DEFAULT_PASS_ORDER, EXTENDED_PASS_ORDER, Pass, PassStats, create_pass
from repro.core.verifier import SemanticVerifier
from repro.utils.config import get_config
from repro.utils.errors import IRCheckError


@dataclass
class OptimizationReport:
    """Everything the pipeline did to one program.

    Reports are *cacheable*: the execution engine stores the report inside a
    cached :class:`~repro.runtime.plan.ExecutionPlan` and hands out
    :meth:`replayed` copies on plan-cache hits, so ``session.last_report``
    keeps working on flushes whose optimization never actually re-ran.
    """

    original: Program
    optimized: Program
    pass_stats: List[PassStats] = field(default_factory=list)
    iterations: int = 0
    verified: Optional[bool] = None
    #: Structural fingerprint of the original program (set by the engine).
    fingerprint: Optional[str] = None
    #: True when this report was replayed from a cached plan rather than
    #: produced by an actual pipeline run.
    cached: bool = False
    #: Between-pass IR checks the pipeline ran producing this report
    #: (non-zero only under the ``check_ir`` configuration knob).
    ir_checks_run: int = 0

    def replayed(self) -> "OptimizationReport":
        """A copy of this report marked as served from the plan cache.

        The program and per-pass statistics are shared (they are treated as
        immutable); only the ``cached`` flag differs.
        """
        return OptimizationReport(
            original=self.original,
            optimized=self.optimized,
            pass_stats=self.pass_stats,
            iterations=self.iterations,
            verified=self.verified,
            fingerprint=self.fingerprint,
            cached=True,
            ir_checks_run=self.ir_checks_run,
        )

    @property
    def total_rewrites(self) -> int:
        """Total number of rewrite sites applied across all passes."""
        return sum(stats.rewrites_applied for stats in self.pass_stats)

    @property
    def changed(self) -> bool:
        """True when the optimized program differs from the original."""
        return self.total_rewrites > 0

    @property
    def instructions_before(self) -> int:
        """Instruction count of the original program."""
        return len(self.original)

    @property
    def instructions_after(self) -> int:
        """Instruction count of the optimized program."""
        return len(self.optimized)

    @property
    def instructions_removed(self) -> int:
        """Net instruction-count reduction (negative when code was added)."""
        return self.instructions_before - self.instructions_after

    def stats_for(self, pass_name: str) -> List[PassStats]:
        """All stats records produced by a given pass (one per iteration)."""
        return [stats for stats in self.pass_stats if stats.pass_name == pass_name]

    def summary(self) -> str:
        """Human-readable multi-line summary of what happened."""
        lines = [
            f"optimization summary: {self.instructions_before} -> "
            f"{self.instructions_after} byte-codes in {self.iterations} iteration(s), "
            f"{self.total_rewrites} rewrite(s)"
            + (" [replayed from plan cache]" if self.cached else "")
        ]
        for stats in self.pass_stats:
            if stats.rewrites_applied == 0:
                continue
            lines.append(
                f"  {stats.pass_name}: {stats.rewrites_applied} rewrite(s), "
                f"{stats.instructions_before} -> {stats.instructions_after} byte-codes"
            )
            for note in stats.notes:
                lines.append(f"    - {note}")
        if self.verified is not None:
            lines.append(f"  semantic verification: {'passed' if self.verified else 'FAILED'}")
        return "\n".join(lines)


class Pipeline:
    """An ordered list of passes with fixed-point iteration and verification."""

    def __init__(
        self,
        passes: Sequence[Union[str, Pass]],
        fixed_point: bool = True,
        max_iterations: Optional[int] = None,
        verify: Optional[bool] = None,
        validate: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        passes:
            Pass instances or registered pass names, in execution order.
        fixed_point:
            Re-run the whole pass list until no pass reports a rewrite (or
            ``max_iterations`` is hit).
        max_iterations:
            Bound on fixed-point iterations; defaults to the configuration.
        verify:
            Run the semantic verifier on the final result; defaults to the
            configuration (``verify_rewrites``).
        validate:
            Structurally validate the input and output programs.
        """
        self.passes: List[Pass] = [
            create_pass(item) if isinstance(item, str) else item for item in passes
        ]
        self.fixed_point = fixed_point
        self.max_iterations = (
            max_iterations
            if max_iterations is not None
            else get_config().fixed_point_max_iterations
        )
        self.verify = verify if verify is not None else get_config().verify_rewrites
        self.validate = validate

    def pass_names(self) -> List[str]:
        """Names of the passes in execution order."""
        return [p.name for p in self.passes]

    def signature(self) -> tuple:
        """A hashable description of what this pipeline does.

        Used as part of the execution engine's plan-cache key: two pipelines
        with the same signature are assumed to rewrite a given program
        identically, so their plans may be shared — and a pipeline with a
        different pass list or iteration policy never collides.
        """
        return (
            tuple(self.pass_names()),
            self.fixed_point,
            self.max_iterations,
            bool(self.verify),
            self.validate,
        )

    def run(self, program: Program) -> OptimizationReport:
        """Optimize ``program`` and return the full report.

        Under the ``check_ir`` configuration knob the flow-sensitive IR
        checker (:mod:`repro.checks.ircheck`) runs on every pass's output
        against facts computed from the pipeline's *input* program — those
        facts (def-before-use, synced outputs) are invariant under every
        legal transformation, so the first pass to break one is named in
        the raised :class:`~repro.utils.errors.IRCheckError`.
        """
        if self.validate:
            validate_program(program)
        report = OptimizationReport(original=program.copy(), optimized=program.copy())
        current = program.copy()
        reference = None
        if get_config().check_ir:
            from repro.checks.ircheck import check_program, reference_facts

            reference = reference_facts(current)
        iterations = 0
        while True:
            iterations += 1
            changed_this_round = False
            for transformation in self.passes:
                result = transformation.run(current)
                report.pass_stats.append(result.stats)
                if result.changed:
                    changed_this_round = True
                    current = result.program
                    if reference is not None:
                        report.ir_checks_run += 1
                        try:
                            check_program(current, reference=reference)
                        except IRCheckError as exc:
                            raise IRCheckError(
                                f"pass {transformation.name!r} "
                                f"(iteration {iterations}) broke the IR: {exc}",
                                index=exc.index,
                                pass_name=transformation.name,
                            ) from None
            if not self.fixed_point or not changed_this_round:
                break
            if iterations >= self.max_iterations:
                break
        report.iterations = iterations
        report.optimized = current
        if self.validate:
            validate_program(current)
        if self.verify:
            verifier = SemanticVerifier(seed=get_config().random_seed)
            report.verified = verifier.equivalent(report.original, report.optimized)
        return report


def default_pipeline(
    enabled_passes: Optional[Iterable[str]] = None,
    fixed_point: bool = True,
    verify: Optional[bool] = None,
    extended: bool = False,
    **pass_kwargs,
) -> Pipeline:
    """Build the canonical pipeline.

    Parameters
    ----------
    enabled_passes:
        Subset of pass names to include (order is always the canonical
        :data:`~repro.core.rules.DEFAULT_PASS_ORDER`, or the extended order
        when ``extended`` is true).  ``None`` uses the configuration, which
        itself defaults to "all".
    fixed_point / verify:
        Forwarded to :class:`Pipeline`.
    extended:
        Include the extension passes (scalar constant folding, strength
        reduction, common-subexpression elimination) that go beyond the
        paper's concrete listings.
    pass_kwargs:
        Per-pass constructor overrides keyed by pass name, e.g.
        ``power_expansion={"strategy": "binary"}``.
    """
    canonical_order = EXTENDED_PASS_ORDER if extended else DEFAULT_PASS_ORDER
    if enabled_passes is None:
        enabled_passes = get_config().enabled_passes
    if enabled_passes is None:
        names = list(canonical_order)
    else:
        requested = set(enabled_passes)
        order = EXTENDED_PASS_ORDER if extended or requested - set(DEFAULT_PASS_ORDER) else canonical_order
        names = [name for name in order if name in requested]
    passes = [create_pass(name, **pass_kwargs.get(name, {})) for name in names]
    return Pipeline(passes, fixed_point=fixed_point, verify=verify)


def optimize(
    program: Program,
    enabled_passes: Optional[Iterable[str]] = None,
    fixed_point: bool = True,
    verify: Optional[bool] = None,
    extended: bool = False,
    **pass_kwargs,
) -> OptimizationReport:
    """Optimize ``program`` with the default pipeline and return the report."""
    pipeline = default_pipeline(
        enabled_passes=enabled_passes,
        fixed_point=fixed_point,
        verify=verify,
        extended=extended,
        **pass_kwargs,
    )
    return pipeline.run(program)
