"""Power-expansion transformation (paper Equation 1, Listings 4-5).

``BH_POWER`` with a natural exponent is rewritten into a sequence of
``BH_MULTIPLY`` byte-codes following an addition chain.  The paper's point
is twofold:

* the *naive* expansion (Listing 4) needs ``n - 1`` multiplies, but
* because the runtime owns the result tensor it can be reused as scratch,
  giving a square-and-multiply chain (Listing 5) with only
  ``O(log n)`` multiplies — and no temporary tensors, which matters because
  "copying data to create temporary tensors would be time consuming for
  large tensors".

Bohrium enables this rewrite by default because a chain of cheap multiplies
beats the transcendental ``pow`` kernel for exponents near a power of two —
our cost model (and benchmark E4) reproduces that crossover.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.addition_chains import AdditionChain, chain_for
from repro.core.rules import Pass, PassResult
from repro.utils.config import get_config


def _natural_exponent(constant: Constant) -> Optional[int]:
    """Return the exponent as a natural number, or ``None`` when not eligible."""
    value = constant.value
    if isinstance(value, bool):
        return None
    if isinstance(value, int):
        exponent = value
    elif isinstance(value, float) and float(value).is_integer():
        exponent = int(value)
    else:
        return None
    if exponent < 0:
        return None
    return exponent


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def expand_power(
    instruction: Instruction,
    strategy: str = "power_of_two",
    allow_temporaries: bool = False,
    tag: str = "power_expansion",
) -> Optional[List[Instruction]]:
    """Expand one ``BH_POWER`` byte-code into multiplies.

    Returns the replacement instruction list, or ``None`` when the
    instruction is not an expandable power (non-constant exponent, negative
    or fractional exponent, aliasing that would make the chain unsafe, or a
    chain that needs temporaries while ``allow_temporaries`` is false).
    """
    if instruction.opcode is not OpCode.BH_POWER:
        return None
    out = instruction.out
    inputs = instruction.inputs
    if out is None or len(inputs) != 2:
        return None
    base_operand, exponent_operand = inputs
    if not is_constant(exponent_operand):
        return None
    exponent = _natural_exponent(exponent_operand)
    if exponent is None:
        return None

    if exponent == 0:
        return [Instruction(OpCode.BH_IDENTITY, (out, Constant(1, out.dtype)), tag=tag)]
    if exponent == 1:
        if is_view(base_operand) and base_operand.same_view(out):
            return []
        return [Instruction(OpCode.BH_IDENTITY, (out, base_operand), tag=tag)]

    # A constant base is pure scalar arithmetic: fold it completely.
    if is_constant(base_operand):
        folded = base_operand.value ** exponent
        return [Instruction(OpCode.BH_IDENTITY, (out, Constant(folded)), tag=tag)]

    chain = chain_for(exponent, strategy)

    aliases_input = is_view(base_operand) and out.overlaps(base_operand)
    if aliases_input and not _is_power_of_two(exponent):
        # After the first write to the result view the original x is gone;
        # only pure-doubling chains never re-read x, so anything else is
        # unsafe without a copy.  Keep the BH_POWER.
        return None

    if chain.fits_two_registers():
        return _emit_two_register_chain(chain, out, base_operand, tag)
    if not allow_temporaries:
        return None
    return _emit_chain_with_temporaries(chain, out, base_operand, tag)


def _emit_two_register_chain(
    chain: AdditionChain, out: View, origin, tag: str
) -> List[Instruction]:
    """Emit a chain that only ever reads the origin tensor and the result tensor."""
    result: List[Instruction] = []
    for position, (i, j) in enumerate(chain.steps):
        left = origin if i == 0 else out
        right = origin if j == 0 else out
        if position == 0:
            # The first step must read the origin only (the result tensor is
            # still uninitialised).
            left, right = origin, origin
        result.append(Instruction(OpCode.BH_MULTIPLY, (out, left, right), tag=tag))
    return result


def _emit_chain_with_temporaries(
    chain: AdditionChain, out: View, origin, tag: str
) -> List[Instruction]:
    """Emit an arbitrary addition chain, allocating temporaries as needed.

    This relaxes the paper's two-register constraint (it is the "optimal
    chain" extension): intermediate chain values that are re-read later get
    their own scratch base arrays, which are freed at the end.
    """
    # view_of[k] is the view holding chain value with index k.
    view_of = {0: origin}
    temporaries: List[BaseArray] = []
    instructions: List[Instruction] = []
    last_index = len(chain.values) - 1
    for position, (i, j) in enumerate(chain.steps):
        value_index = position + 1
        if value_index == last_index:
            target = out
        else:
            scratch = BaseArray(out.nelem, out.dtype)
            temporaries.append(scratch)
            target = View.full(scratch, out.shape)
        instructions.append(
            Instruction(OpCode.BH_MULTIPLY, (target, view_of[i], view_of[j]), tag=tag)
        )
        view_of[value_index] = target
    for scratch in temporaries:
        instructions.append(Instruction(OpCode.BH_FREE, (View.full(scratch),), tag=tag))
    return instructions


class PowerExpansionPass(Pass):
    """Rewrite ``BH_POWER`` byte-codes into multiplication chains."""

    name = "power_expansion"

    def __init__(
        self,
        strategy: str = "power_of_two",
        limit: Optional[int] = None,
        allow_temporaries: bool = False,
        cost_model=None,
    ) -> None:
        """
        Parameters
        ----------
        strategy:
            Addition-chain strategy: ``"naive"`` (Listing 4),
            ``"power_of_two"`` (Listing 5, the default — it is what the
            paper describes Bohrium doing), ``"binary"`` or ``"optimal"``.
        limit:
            Largest exponent to expand; defaults to the library
            configuration (``power_expansion_limit``).
        allow_temporaries:
            Permit chains that need scratch tensors (only relevant for the
            ``"optimal"`` strategy).
        cost_model:
            Optional :class:`repro.core.cost.CostModel`; when given, a power
            is only expanded if the model prices the expansion cheaper than
            the original ``BH_POWER``.
        """
        self.strategy = strategy
        self.limit = limit if limit is not None else get_config().power_expansion_limit
        self.allow_temporaries = allow_temporaries
        self.cost_model = cost_model

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        result: List[Instruction] = []
        for instruction in program:
            replacement = self._try_expand(instruction)
            if replacement is None:
                result.append(instruction)
                continue
            stats.rewrites_applied += 1
            exponent = instruction.constants[0].value if instruction.constants else "?"
            stats.note(
                f"expanded BH_POWER^{exponent} into {len(replacement)} byte-codes "
                f"({self.strategy} chain)"
            )
            result.extend(replacement)
        return self._finish(Program(result), stats)

    def _try_expand(self, instruction: Instruction) -> Optional[List[Instruction]]:
        if instruction.opcode is not OpCode.BH_POWER:
            return None
        inputs = instruction.inputs
        if len(inputs) != 2 or not is_constant(inputs[1]):
            return None
        exponent = _natural_exponent(inputs[1])
        if exponent is None or exponent > self.limit:
            return None
        replacement = expand_power(
            instruction, strategy=self.strategy, allow_temporaries=self.allow_temporaries
        )
        if replacement is None:
            return None
        if self.cost_model is not None:
            before = self.cost_model.instruction_cost(instruction)
            after = sum(self.cost_model.instruction_cost(instr) for instr in replacement)
            if after >= before:
                return None
        return replacement
