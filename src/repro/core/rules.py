"""The transformation-pass framework.

A *pass* takes a program and returns a (possibly) rewritten program together
with statistics about what it did.  Passes never mutate the input program;
they build a new instruction list and return a new :class:`Program`.  The
:class:`~repro.core.pipeline.Pipeline` composes passes, iterates them to a
fixed point and optionally verifies semantic equivalence.

Passes are also registered by name so configuration files and benchmarks can
select them with strings (``"constant_merge"``, ``"power_expansion"``, ...).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.bytecode.program import Program


@dataclass
class PassStats:
    """What one pass application did.

    Attributes
    ----------
    pass_name:
        Name of the pass that produced these statistics.
    rewrites_applied:
        Number of individual rewrite sites the pass transformed.
    instructions_before / instructions_after:
        Program sizes around the pass.
    notes:
        Free-form per-rewrite notes (e.g. "merged 3 BH_ADD constants into 3").
    artifacts:
        Structured artifacts a pass wants to expose beyond counters (the
        fusion pass records its :class:`~repro.core.schedule.FusionSchedule`
        here so the engine can attach it to the execution plan and the CLI
        can report scheduler statistics).
    """

    pass_name: str
    rewrites_applied: int = 0
    instructions_before: int = 0
    instructions_after: int = 0
    notes: List[str] = field(default_factory=list)
    artifacts: Dict[str, object] = field(default_factory=dict)

    @property
    def instructions_removed(self) -> int:
        """Net change in instruction count (negative when the pass adds code)."""
        return self.instructions_before - self.instructions_after

    def note(self, message: str) -> None:
        """Record a free-form note about one rewrite."""
        self.notes.append(message)


@dataclass
class PassResult:
    """A pass's output: the rewritten program plus statistics."""

    program: Program
    stats: PassStats

    @property
    def changed(self) -> bool:
        """True when the pass applied at least one rewrite."""
        return self.stats.rewrites_applied > 0


class Pass(abc.ABC):
    """Base class for all transformation passes."""

    #: Stable pass name used for registration, configuration and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def run(self, program: Program) -> PassResult:
        """Rewrite ``program`` and return the result.

        Implementations must not mutate ``program``; they return a fresh
        :class:`Program` (which may share :class:`Instruction` objects with
        the input, since instructions are immutable values).
        """

    def _new_stats(self, program: Program) -> PassStats:
        """Create a stats record pre-filled with the input program size."""
        return PassStats(pass_name=self.name, instructions_before=len(program))

    def _finish(self, program: Program, stats: PassStats) -> PassResult:
        """Fill in the output size and wrap up a result."""
        stats.instructions_after = len(program)
        return PassResult(program=program, stats=stats)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<{type(self).__name__} name={self.name!r}>"


_PASS_FACTORIES: Dict[str, Callable[[], Pass]] = {}


def register_pass(name: str, factory: Callable[[], Pass]) -> None:
    """Register a pass factory under ``name``."""
    _PASS_FACTORIES[name] = factory


def available_passes() -> tuple:
    """Names of all registered passes."""
    _ensure_default_passes()
    return tuple(sorted(_PASS_FACTORIES))


def create_pass(name: str, **kwargs) -> Pass:
    """Instantiate a registered pass by name."""
    _ensure_default_passes()
    try:
        factory = _PASS_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown pass {name!r}; available: {tuple(sorted(_PASS_FACTORIES))}"
        ) from None
    return factory(**kwargs) if kwargs else factory()


def _ensure_default_passes() -> None:
    """Register the built-in passes lazily (avoids import cycles)."""
    if _PASS_FACTORIES:
        return
    from repro.core.constant_fold import ScalarConstantFoldingPass
    from repro.core.constant_merge import ConstantMergePass
    from repro.core.copy_propagation import CopyPropagationPass
    from repro.core.cse import CommonSubexpressionEliminationPass
    from repro.core.dce import DeadCodeEliminationPass
    from repro.core.fusion import FusionPass
    from repro.core.identity_simplify import IdentitySimplifyPass
    from repro.core.linear_solve import LinearSolveRewritePass
    from repro.core.power_expansion import PowerExpansionPass
    from repro.core.strength_reduction import StrengthReductionPass

    register_pass("identity_simplify", IdentitySimplifyPass)
    register_pass("constant_merge", ConstantMergePass)
    register_pass("constant_fold", ScalarConstantFoldingPass)
    register_pass("strength_reduction", StrengthReductionPass)
    register_pass("cse", CommonSubexpressionEliminationPass)
    register_pass("power_expansion", PowerExpansionPass)
    register_pass("linear_solve", LinearSolveRewritePass)
    register_pass("copy_propagation", CopyPropagationPass)
    register_pass("dce", DeadCodeEliminationPass)
    register_pass("fusion", FusionPass)


#: Canonical ordering of the default pipeline.  Scalar/algebraic rewrites run
#: first (they shrink the program), the context-aware idiom rewrites next,
#: clean-up passes after that, and fusion last because it changes the
#: instruction granularity the earlier passes pattern-match on.
DEFAULT_PASS_ORDER = (
    "identity_simplify",
    "constant_merge",
    "power_expansion",
    "linear_solve",
    "copy_propagation",
    "dce",
    "fusion",
)

#: The extended pipeline adds the passes that go beyond the paper's concrete
#: listings (scalar constant folding, strength reduction, common-subexpression
#: elimination).  They run before the paper's rewrites because they expose
#: more opportunities for them (e.g. CSE creates copies that copy propagation
#: dissolves; strength reduction normalises divisions into multiplications
#: the constant-merge pass understands).
EXTENDED_PASS_ORDER = (
    "identity_simplify",
    "constant_fold",
    "constant_merge",
    "strength_reduction",
    "cse",
    "power_expansion",
    "linear_solve",
    "copy_propagation",
    "dce",
    "fusion",
)
