"""Dependency-graph fusion scheduling: cost-guided clustering of byte-codes.

The paper frames byte-code fusion as a *spectrum* of transformations.  The
low end — maximal runs of consecutive element-wise byte-codes — is what
:func:`repro.runtime.kernel.partition_into_kernels` implements: any
interleaved reduction, system byte-code or shape change cuts the kernel, so
real workloads (a stencil with a per-step norm, Black–Scholes with
diagnostics) launch far more kernels than their dependency structure
requires.

This module implements the next rung: a **dependency-graph fusion
scheduler**.  It builds a data-dependency DAG over the program (reusing the
:class:`~repro.core.analysis.DefUse` index), then clusters *non-adjacent*
fusable element-wise byte-codes by legal topological reordering.  Each merge
is accepted greedily by the :class:`~repro.core.cost.CostModel`: fusing a
byte-code into an existing kernel saves its kernel launch plus the memory
traffic of every operand the kernel already streams, and the merge goes
ahead only when that predicted saving clears the configured
``fusion_cost_threshold``.

Legality rules (what an edge in the DAG means):

* **flow (read-after-write)** — an instruction reading a view that may
  overlap an earlier instruction's written view must stay after it;
* **anti (write-after-read)** — an instruction overwriting a view an
  earlier instruction reads must stay after it;
* **output (write-after-write)** — overlapping writes keep their order;
* ``BH_SYNC`` counts as a read of its view (an observation point), and a
  ``BH_FREE`` is a barrier for its base: every earlier access happens
  before it, every later access after it.

Reads never conflict with reads, so two windows of one base that are only
read can reorder freely — which is exactly what lets the scheduler hoist an
element-wise chain past an interleaved reduction.

The result is a :class:`FusionSchedule`.  Like the tile decomposition and
the memory plan it is **structural**: items reference byte-codes by program
index, never by base identity, so the schedule computed once per plan-cache
miss replays against every rebound flush.  One seam —
:func:`compute_schedule` — serves every consumer: the optimizer's
:class:`~repro.core.fusion.FusionPass` bakes the scheduled order into the
optimized program (which the simulated accelerator prices and the memory
planner consumes, so fusion-shortened lifetimes improve buffer aliasing),
and the fusing JIT and the tiled parallel backend schedule plan-less
programs through the same function.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.core.analysis import DefUse
from repro.core.cost import CostModel
from repro.runtime.kernel import Kernel, partition_into_kernels
from repro.utils.config import Config, get_config
from repro.utils.errors import ExecutionError

#: Device profile the scheduler prices merges against.  The GPU profile has
#: the largest launch overhead, which matches the paper's motivation: the
#: scheduler exists to amortize kernel launches.
SCHEDULER_PROFILE = "gpu"

#: Recognised ``fusion_scheduler`` configuration values.
SCHEDULERS = ("dag", "consecutive")


def schedule_signature(config: Optional[Config] = None) -> tuple:
    """The configuration slice a computed :class:`FusionSchedule` depends on."""
    config = config if config is not None else get_config()
    return (
        config.fusion_scheduler,
        config.fusion_cost_threshold,
        config.fusion_max_kernel_size,
    )


# --------------------------------------------------------------------------- #
# The dependency DAG
# --------------------------------------------------------------------------- #


def dependency_graph(
    program: Program, defuse: Optional[DefUse] = None
) -> Tuple[List[Set[int]], List[int]]:
    """Build the data-dependency DAG of ``program``.

    Returns ``(successors, predecessor_counts)``: ``successors[i]`` is the
    set of instruction indices that must execute after instruction ``i``,
    and ``predecessor_counts[j]`` how many instructions must execute before
    ``j``.  Edges follow the legality rules in the module docstring; all
    edges point forward in program order, so the graph is acyclic by
    construction.
    """
    defuse = defuse if defuse is not None else DefUse.analyze(program)
    n = len(program)
    successors: List[Set[int]] = [set() for _ in range(n)]
    predecessors = [0] * n

    def add_edge(earlier: int, later: int) -> None:
        if earlier != later and later not in successors[earlier]:
            successors[earlier].add(later)
            predecessors[later] += 1

    for base_id, accesses in defuse.accesses.items():
        for position, first in enumerate(accesses):
            for second in accesses[position + 1 :]:
                if second.index == first.index:
                    continue  # one instruction's own read/write pair
                if not (first.is_write or second.is_write):
                    continue  # reads never conflict with reads
                if first.view.overlaps(second.view):
                    add_edge(first.index, second.index)
        # A free is a barrier for its base: it must stay after every
        # earlier access and before every later one.
        for free_index in defuse.freed.get(base_id, ()):
            for access in accesses:
                if access.index < free_index:
                    add_edge(access.index, free_index)
                elif access.index > free_index:
                    add_edge(free_index, access.index)
    return successors, predecessors


# --------------------------------------------------------------------------- #
# The schedule artifact
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FusionSchedule:
    """The scheduled clustering of one program.

    ``items`` is the scheduled execution order: each entry is a tuple of
    source-program instruction indices forming one launch unit — a
    multi-index tuple is a fused kernel, a singleton a stand-alone
    byte-code.  Everything is structural (indices only), so a schedule
    computed for one program applies to any program with the same canonical
    structural key — exactly like the tile decomposition and the memory
    plan cached on an :class:`~repro.runtime.plan.ExecutionPlan`.
    """

    scheduler: str
    items: Tuple[Tuple[int, ...], ...]
    #: Kernel launches had every byte-code launched individually.
    kernels_before: int
    #: Kernel launches under this schedule (a cluster is one launch).
    kernels_after: int
    #: Byte-codes that execute at a different relative position than in the
    #: source program (non-adjacent clustering moved them).
    bytecodes_reordered: int
    #: Cost-model seconds the accepted merges are predicted to save
    #: (launch overhead plus re-streamed shared operands).
    predicted_savings_seconds: float

    @property
    def order(self) -> Tuple[int, ...]:
        """Flattened scheduled execution order of source indices."""
        return tuple(index for item in self.items for index in item)

    @property
    def is_identity_order(self) -> bool:
        """True when no byte-code moved relative to program order."""
        return self.order == tuple(range(len(self.order)))

    @property
    def num_clusters(self) -> int:
        """Fused kernels (items holding more than one byte-code)."""
        return sum(1 for item in self.items if len(item) > 1)

    def materialize(
        self, program: Program, min_kernel_size: int = 2, tag: str = "fusion"
    ) -> Program:
        """Emit the scheduled program, wrapping clusters into ``BH_FUSED``.

        Clusters smaller than ``min_kernel_size`` are emitted as bare
        byte-codes (in cluster order) — fusing a single byte-code only adds
        wrapper overhead.
        """
        result: List[Instruction] = []
        for item in self.items:
            instructions = [program[index] for index in item]
            if len(instructions) >= min_kernel_size and all(
                instruction.is_elementwise() for instruction in instructions
            ):
                result.append(
                    Instruction(OpCode.BH_FUSED, (), kernel=instructions, tag=tag)
                )
            else:
                result.extend(instructions)
        return Program(result)

    def partition(self, program: Program) -> List[object]:
        """Launch units for a backend: :class:`Kernel` or bare instructions.

        Single element-wise byte-codes become one-step kernels (they compile
        to cached templates), pre-existing ``BH_FUSED`` byte-codes unwrap
        into kernels carrying their provenance, and everything else stays a
        bare instruction executed individually.
        """
        units: List[object] = []
        for item in self.items:
            if len(item) > 1:
                units.append(Kernel([program[index] for index in item]))
                continue
            instruction = program[item[0]]
            if instruction.is_fused():
                units.append(Kernel(list(instruction.kernel), source=instruction))
            elif instruction.is_elementwise():
                units.append(Kernel([instruction]))
            else:
                units.append(instruction)
        return units

    def stats(self) -> dict:
        """Scheduler counters for reports, the CLI and ``--stats-json``."""
        return {
            "fusion_scheduler": self.scheduler,
            "fusion_kernels_before": self.kernels_before,
            "fusion_kernels_after": self.kernels_after,
            "fusion_clusters": self.num_clusters,
            "fusion_bytecodes_reordered": self.bytecodes_reordered,
            "fusion_predicted_savings_seconds": self.predicted_savings_seconds,
        }


def fusion_schedule_of(report) -> Optional[FusionSchedule]:
    """The fusion schedule an optimization report's fusion pass computed.

    The pipeline may run the fusion pass several times on its way to a
    fixed point; later runs see the already-fused program and typically
    schedule it to itself.  The returned schedule carries the *final*
    clustering structure with the transformation counters aggregated across
    runs: launches before scheduling from the first run, launches after
    from the last, reorders and predicted savings summed.
    """
    if report is None:
        return None
    schedules = [
        stats.artifacts["fusion_schedule"]
        for stats in getattr(report, "pass_stats", ())
        if "fusion_schedule" in stats.artifacts
    ]
    if not schedules:
        return None
    if len(schedules) == 1:
        return schedules[0]
    return FusionSchedule(
        scheduler=schedules[-1].scheduler,
        items=schedules[-1].items,
        kernels_before=schedules[0].kernels_before,
        kernels_after=schedules[-1].kernels_after,
        bytecodes_reordered=sum(s.bytecodes_reordered for s in schedules),
        predicted_savings_seconds=sum(
            s.predicted_savings_seconds for s in schedules
        ),
    )


# --------------------------------------------------------------------------- #
# Scheduling policies
# --------------------------------------------------------------------------- #


def compute_schedule(
    program: Program,
    config: Optional[Config] = None,
    max_kernel_size: Optional[int] = None,
    min_kernel_size: int = 1,
) -> FusionSchedule:
    """Compute the fusion schedule of ``program`` under ``config``.

    This is the single partitioning seam shared by the optimizer's fusion
    pass, the fusing JIT and the tiled parallel backend.  The policy is the
    configuration's ``fusion_scheduler``: ``"dag"`` reorders and clusters
    over the dependency graph, ``"consecutive"`` reproduces the adjacent
    runs of :func:`~repro.runtime.kernel.partition_into_kernels`.

    Clusters smaller than ``min_kernel_size`` are broken back into
    singletons (in cluster order), so the schedule's launch counts describe
    exactly what :meth:`FusionSchedule.materialize` will emit for a caller
    with the same threshold.
    """
    config = config if config is not None else get_config()
    scheduler = config.fusion_scheduler
    if scheduler not in SCHEDULERS:
        raise ExecutionError(
            f"unknown fusion scheduler {scheduler!r}; available: {SCHEDULERS}"
        )
    max_size = (
        max_kernel_size if max_kernel_size is not None else config.fusion_max_kernel_size
    )
    model = CostModel(SCHEDULER_PROFILE)
    if scheduler == "dag":
        items, item_savings = _dag_schedule(program, config, max_size, model)
    else:
        items, item_savings = _consecutive_schedule(program, max_size, model)
    if min_kernel_size > 1:
        # Sub-threshold clusters are undone — and so are their accepted
        # merges, so their savings must not be reported.
        split_items: List[Tuple[int, ...]] = []
        split_savings: List[float] = []
        for item, saving in zip(items, item_savings):
            if len(item) == 1 or len(item) >= min_kernel_size:
                split_items.append(item)
                split_savings.append(saving)
            else:
                split_items.extend((index,) for index in item)
                split_savings.extend(0.0 for _ in item)
        items, item_savings = split_items, split_savings
    savings = sum(item_savings)
    schedule = FusionSchedule(
        scheduler=scheduler,
        items=tuple(items),
        kernels_before=sum(
            1 for instruction in program if not instruction.is_system()
        ),
        kernels_after=sum(
            1
            for item in items
            if any(not program[index].is_system() for index in item)
        ),
        bytecodes_reordered=_count_reordered(items),
        predicted_savings_seconds=savings,
    )
    if config.check_ir:
        # This seam is the one place the schedule's indices still refer to
        # the program it was computed from, so the DAG cross-check happens
        # here — not in prepare_plan, where the fused program has already
        # been materialized and the indices no longer line up.
        from repro.checks.plancheck import maybe_check_schedule

        maybe_check_schedule(program, schedule, config)
    return schedule


def _count_reordered(items: Sequence[Tuple[int, ...]]) -> int:
    """Byte-codes emitted after a higher-indexed byte-code (i.e. that moved)."""
    highest = -1
    moved = 0
    for item in items:
        for index in item:
            if index < highest:
                moved += 1
            else:
                highest = index
    return moved


def _consecutive_schedule(
    program: Program, max_size: int, model: CostModel
) -> Tuple[List[Tuple[int, ...]], float]:
    """The low-end policy: maximal runs of adjacent fusable byte-codes.

    Delegates the clustering itself to
    :func:`~repro.runtime.kernel.partition_into_kernels` — the two must
    never drift apart — and only derives the index items (consecutive
    clustering preserves program order, so indices are assigned by walking
    the items in sequence) plus the cost model's predicted per-item savings.
    """
    items: List[Tuple[int, ...]] = []
    item_savings: List[float] = []
    index = 0
    for item in partition_into_kernels(program, max_size):
        if not isinstance(item, Kernel):
            items.append((index,))
            item_savings.append(0.0)
            index += 1
            continue
        items.append(tuple(range(index, index + item.size)))
        index += item.size
        saving = 0.0
        streamed_keys: Set[tuple] = set()
        for instruction in item.instructions:
            if streamed_keys:
                saving += model.fusion_merge_saving_for_keys(
                    streamed_keys, instruction
                )
            streamed_keys.update(
                model.view_key(view) for view in instruction.views()
            )
        item_savings.append(saving)
    return items, item_savings


def _dag_schedule(
    program: Program, config: Config, max_size: int, model: CostModel
) -> Tuple[List[Tuple[int, ...]], float]:
    """Greedy topological list scheduling with cost-guided clustering.

    Ready byte-codes are consumed in program-index order (a stable
    tie-break: a program already in scheduled form re-schedules to
    itself).  Whenever an element-wise byte-code is scheduled it opens a
    cluster, and the scheduler keeps absorbing the lowest-indexed ready
    byte-code the kernel accepts — compatibility via
    :meth:`~repro.runtime.kernel.Kernel.can_accept` (shared iteration
    space, loop-fusion legality) and profitability via
    :meth:`~repro.core.cost.CostModel.fusion_merge_saving` against the
    ``fusion_cost_threshold``.  Absorbing a byte-code releases its
    dependents, so whole dependent chains fall into one kernel even when a
    reduction or system byte-code sat between them in program order.
    """
    import bisect

    n = len(program)
    successors, predecessors = dependency_graph(program)
    ready: List[int] = sorted(i for i in range(n) if predecessors[i] == 0)
    items: List[Tuple[int, ...]] = []
    item_savings: List[float] = []
    threshold = config.fusion_cost_threshold

    def release(index: int) -> None:
        for successor in sorted(successors[index]):
            predecessors[successor] -= 1
            if predecessors[successor] == 0:
                bisect.insort(ready, successor)

    while ready:
        index = ready.pop(0)
        instruction = program[index]
        if not instruction.is_elementwise():
            items.append((index,))
            item_savings.append(0.0)
            release(index)
            continue
        kernel = Kernel([instruction])
        cluster = [index]
        cluster_saving = 0.0
        streamed_keys: Set[tuple] = {
            model.view_key(view) for view in instruction.views()
        }
        release(index)
        while kernel.size < max_size:
            chosen = None
            for candidate_index in ready:
                candidate = program[candidate_index]
                if not kernel.can_accept(candidate, max_size):
                    continue
                saving = model.fusion_merge_saving_for_keys(streamed_keys, candidate)
                if saving > threshold:
                    chosen = (candidate_index, saving)
                    break
            if chosen is None:
                break
            candidate_index, saving = chosen
            ready.remove(candidate_index)
            candidate = program[candidate_index]
            kernel.append(candidate)
            cluster.append(candidate_index)
            streamed_keys.update(model.view_key(view) for view in candidate.views())
            cluster_saving += saving
            release(candidate_index)
        items.append(tuple(cluster))
        item_savings.append(cluster_saving)

    scheduled = sum(len(item) for item in items)
    if scheduled != n:
        raise ExecutionError(
            f"fusion scheduler covered {scheduled} of {n} byte-codes; "
            "the dependency graph is not acyclic"
        )
    return items, item_savings
