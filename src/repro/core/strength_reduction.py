"""Strength reduction: replace expensive op-codes with cheaper equivalents.

An extension pass in the spirit of the paper's power-expansion argument
(Section 4: the transcendental kernel is far more expensive than arithmetic):

* ``x / c``  →  ``x * (1/c)`` for floating-point constants (division is
  several times slower than multiplication on every vector engine);
* ``x ** 0.5``  →  ``sqrt(x)``;
* ``x ** -1``  →  ``reciprocal(x)`` (float outputs only);
* ``x ** 2`` with distinct output → ``x * x`` (the degenerate power
  expansion, handled here so the pass is useful stand-alone).

Like the other extension passes it is registered under its own name
(``"strength_reduction"``) and included by ``default_pipeline(extended=True)``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.core.rules import Pass, PassResult


class StrengthReductionPass(Pass):
    """Swap expensive element-wise byte-codes for cheaper equivalents."""

    name = "strength_reduction"

    def run(self, program: Program) -> PassResult:
        stats = self._new_stats(program)
        result: List[Instruction] = []
        for instruction in program:
            replacement = self._reduce(instruction)
            if replacement is None:
                result.append(instruction)
                continue
            stats.rewrites_applied += 1
            stats.note(
                f"replaced {instruction.opcode.value} with {replacement.opcode.value}"
            )
            result.append(replacement)
        return self._finish(Program(result), stats)

    def _reduce(self, instruction: Instruction) -> Optional[Instruction]:
        if instruction.opcode is OpCode.BH_DIVIDE:
            return self._reduce_division(instruction)
        if instruction.opcode is OpCode.BH_POWER:
            return self._reduce_power(instruction)
        return None

    def _reduce_division(self, instruction: Instruction) -> Optional[Instruction]:
        out = instruction.out
        inputs = instruction.inputs
        if out is None or len(inputs) != 2:
            return None
        numerator, denominator = inputs
        if not is_constant(denominator) or not is_view(numerator):
            return None
        if not denominator.dtype.is_float or not out.dtype.is_float:
            # Integer division by a constant is not a multiplication.
            return None
        value = denominator.value
        if value == 0:
            return None
        return Instruction(
            OpCode.BH_MULTIPLY,
            (out, numerator, Constant(1.0 / value, denominator.dtype)),
            tag=self.name,
        )

    def _reduce_power(self, instruction: Instruction) -> Optional[Instruction]:
        out = instruction.out
        inputs = instruction.inputs
        if out is None or len(inputs) != 2:
            return None
        base, exponent = inputs
        if not is_constant(exponent) or not is_view(base):
            return None
        value = exponent.value
        if value == 0.5 and out.dtype.is_float:
            return Instruction(OpCode.BH_SQRT, (out, base), tag=self.name)
        if value == -1 and out.dtype.is_float:
            return Instruction(OpCode.BH_RECIPROCAL, (out, base), tag=self.name)
        if value == 2 and not out.overlaps(base):
            return Instruction(OpCode.BH_MULTIPLY, (out, base, base), tag=self.name)
        return None
