"""Semantic verification of rewrites.

A transformation is only worth having if the rewritten program computes the
same values.  The verifier executes the original and the optimized program
from identical randomised initial states on the reference interpreter and
compares every observable view (synced views plus surviving written bases).

The pipeline runs the verifier when ``Config.verify_rewrites`` is enabled;
the test suite uses it directly (including property-based tests that feed
random programs through the optimizer).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

import numpy as np

from repro.bytecode.base import BaseArray
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.analysis import DefUse, observable_views
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.utils.errors import RewriteError


class VerificationError(RewriteError):
    """The optimized program disagrees with the original program."""


class SemanticVerifier:
    """Executes two programs from the same state and compares their outputs."""

    def __init__(
        self,
        rtol: float = 1e-6,
        atol: float = 1e-8,
        seed: int = 0x5EED,
        initial_values: Optional[Dict[BaseArray, np.ndarray]] = None,
    ) -> None:
        """
        Parameters
        ----------
        rtol / atol:
            Relative / absolute tolerances for the comparison.  Rewrites
            like constant merging and power expansion legitimately change
            floating-point rounding, so exact equality is not required.
        seed:
            Seed for the random initial contents of the input bases.
        initial_values:
            Optional explicit initial contents per base array; bases not
            listed are filled with reproducible random values.
        """
        self.rtol = rtol
        self.atol = atol
        self.seed = seed
        self.initial_values = dict(initial_values or {})

    # ------------------------------------------------------------------ #
    # State preparation
    # ------------------------------------------------------------------ #

    def _prepare_memory(self, bases: Iterable[BaseArray]) -> MemoryManager:
        memory = MemoryManager()
        rng = np.random.default_rng(self.seed)
        for base in bases:
            if base in self.initial_values:
                memory.set_data(base, self.initial_values[base])
                continue
            if base.dtype.is_bool:
                data = rng.integers(0, 2, size=base.nelem).astype(bool)
            elif base.dtype.is_integer:
                data = rng.integers(-8, 9, size=base.nelem)
            else:
                # Keep magnitudes moderate so chained multiplications do not
                # overflow and mask genuine disagreements.
                data = rng.uniform(0.5, 1.5, size=base.nelem)
            memory.set_data(base, data)
        return memory

    def _all_bases(self, *programs: Program) -> Tuple[BaseArray, ...]:
        seen = {}
        for program in programs:
            for base in program.bases():
                seen.setdefault(id(base), base)
        return tuple(seen.values())

    # ------------------------------------------------------------------ #
    # Verification
    # ------------------------------------------------------------------ #

    def outputs(self, program: Program, memory: MemoryManager) -> Dict[str, np.ndarray]:
        """Execute ``program`` and collect its observable views by base name."""
        interpreter = NumPyInterpreter()
        result = interpreter.execute(program, memory)
        outputs: Dict[str, np.ndarray] = {}
        for view in observable_views(program):
            if not result.memory.is_allocated(view.base):
                continue
            outputs[view.base.name] = result.value(view)
        return outputs

    def equivalent(self, original: Program, optimized: Program) -> bool:
        """True when the two programs produce the same observable outputs."""
        try:
            self.check(original, optimized)
        except VerificationError:
            return False
        return True

    def check(self, original: Program, optimized: Program) -> None:
        """Raise :class:`VerificationError` when the programs disagree.

        Observability is defined by the *original* program: every view the
        original exposes must exist and match in the optimized program.  The
        optimized program may drop temporaries (that is the point of DCE),
        so extra missing internals on its side are only an error when the
        original exposes them.
        """
        bases = self._all_bases(original, optimized)
        original_outputs = self.outputs(original, self._prepare_memory(bases))
        optimized_outputs = self.outputs(optimized, self._prepare_memory(bases))

        defuse = DefUse.analyze(original)
        synced_names = {
            base.name for base in defuse.bases.values() if defuse.is_synced(base)
        }

        for name, expected in original_outputs.items():
            if name not in optimized_outputs:
                # The optimized program may legitimately have eliminated a
                # base that the original wrote but never exposed via SYNC
                # (observable_views is conservative about surviving writes).
                # A SYNC'd base is a program output, though: losing it means
                # the rewrite destroyed an observable value, which used to
                # slip through here silently.
                if name in synced_names:
                    raise VerificationError(
                        f"output {name!r} was dropped by optimization: the "
                        f"original program exposes it via BH_SYNC but the "
                        f"optimized program never produces it"
                    )
                continue
            actual = optimized_outputs[name]
            if expected.shape != actual.shape:
                raise VerificationError(
                    f"output {name!r} changed shape: {expected.shape} -> {actual.shape}"
                )
            if not np.allclose(expected, actual, rtol=self.rtol, atol=self.atol, equal_nan=True):
                worst = float(np.max(np.abs(expected - actual)))
                raise VerificationError(
                    f"output {name!r} differs after optimization "
                    f"(max absolute error {worst:.3e})"
                )
