"""Multi-process sharded execution over shared memory.

The ``dist`` package is the real counterpart of the simulated
:mod:`repro.cluster` executor: a :class:`~repro.dist.backend.DistributedBackend`
(registered as ``"dist"``) that executes plans across a persistent pool of
worker *processes*.  Arrays live in ``multiprocessing.shared_memory``
segments managed by a :class:`~repro.dist.shardstore.ShardStore`; the
control channel (:mod:`repro.dist.protocol`) ships only plan fingerprints
and shard descriptors — never array payloads.
"""

from repro.dist.backend import DistributedBackend
from repro.dist.shardstore import ShardStore, sweep_manifests

__all__ = ["DistributedBackend", "ShardStore", "sweep_manifests"]
