"""The distributed backend: sharded execution over worker processes.

The master (this process) owns all data — base arrays are *adopted* into
shared-memory segments from the :class:`~repro.dist.shardstore.ShardStore`
— and sequences execution step by step over a persistent pool of spawned
worker processes.  The hot path ships nothing but plan tokens and shard
descriptors: a cold plan is pickled to the pool once (``load``), each
flush sends one segment-name mapping per worker (``map``) and one
``step``/``complete`` round trip per distributed step per participating
worker.  Array payloads never cross the control channel; the counters
prove it rather than assume it.

Pools are process-wide singletons per worker count: every session/engine
constructs its own backend instance, and respawning interpreters per
instance would swamp any benefit.  A worker death tears the pool down
(clean :class:`~repro.utils.errors.DistributedExecutionError`, no hang)
and the next flush simply respawns.
"""

from __future__ import annotations

import atexit
import pickle
import threading
import time
from collections import OrderedDict
from multiprocessing import connection, get_context
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.comm import COMM_METER, CommunicationModel
from repro.dist.planner import (
    DistPlan,
    MapShardStep,
    MasterStep,
    ReduceShardStep,
    build_dist_plan,
)
from repro.dist.protocol import (
    array_payload_nbytes,
    decode_frame,
    encode_frame,
    make_frame,
)
from repro.dist.shardstore import ShardStore
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.memory import MemoryManager
from repro.runtime.parallel import ParallelBackend
from repro.runtime.plan import (
    fingerprint_of_key,
    program_base_order,
    program_fingerprint,
)
from repro.runtime.tiling import TileDecomposition
from repro.utils.config import get_config
from repro.utils.errors import DistributedExecutionError

#: Generous ceilings — the watchdog for a wedged (but alive) worker.  A
#: *dead* worker is detected immediately through its process sentinel.
HELLO_TIMEOUT_SECONDS = 120.0
STEP_TIMEOUT_SECONDS = 300.0


class WorkerDiedError(DistributedExecutionError):
    """A worker process exited while the master awaited its reply."""


class _WorkerHandle:
    def __init__(self, worker_id: int, process, conn) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn


class WorkerPool:
    """A persistent pool of spawned workers behind duplex pipes."""

    def __init__(self, num_workers: int) -> None:
        from repro.dist.worker import worker_main

        ctx = get_context("spawn")
        self.num_workers = num_workers
        self.workers: List[_WorkerHandle] = []
        #: Plan tokens every live worker has cached (cold-load bookkeeping).
        self.loaded_tokens: set = set()
        self.frames_sent = 0
        self.frames_received = 0
        for worker_id in range(num_workers):
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            process = ctx.Process(
                target=worker_main,
                args=(worker_id, child_conn),
                name=f"repro-dist-worker-{worker_id}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self.workers.append(_WorkerHandle(worker_id, process, parent_conn))
        for handle in self.workers:
            frame = self._recv_handle(handle, HELLO_TIMEOUT_SECONDS, None)
            if frame["kind"] != "hello":
                raise DistributedExecutionError(
                    f"worker {handle.worker_id} spoke {frame['kind']!r} before hello"
                )

    def healthy(self) -> bool:
        return all(handle.process.is_alive() for handle in self.workers)

    # ------------------------------------------------------------------ #
    # Framed, metered channel
    # ------------------------------------------------------------------ #

    def send(self, worker_id: int, frame: dict, stats: Optional[ExecutionStats]) -> None:
        handle = self.workers[worker_id]
        data = encode_frame(frame)
        self.frames_sent += 1
        if stats is not None:
            stats.dist_control_frames += 1
            stats.dist_control_bytes += len(data)
            stats.dist_payload_bytes += array_payload_nbytes(frame)
        try:
            handle.conn.send_bytes(data)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerDiedError(
                f"worker {worker_id} (pid {handle.process.pid}) is gone: {exc}"
            ) from exc

    def recv(
        self,
        worker_id: int,
        stats: Optional[ExecutionStats],
        timeout: float = STEP_TIMEOUT_SECONDS,
    ) -> dict:
        return self._recv_handle(self.workers[worker_id], timeout, stats)

    def _recv_handle(
        self, handle: _WorkerHandle, timeout: float, stats: Optional[ExecutionStats]
    ) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DistributedExecutionError(
                    f"worker {handle.worker_id} did not reply within {timeout:.0f}s"
                )
            ready = connection.wait(
                [handle.conn, handle.process.sentinel], timeout=remaining
            )
            if handle.conn in ready:
                try:
                    data = handle.conn.recv_bytes()
                except EOFError as exc:
                    raise WorkerDiedError(
                        f"worker {handle.worker_id} closed its channel mid-flush"
                    ) from exc
                self.frames_received += 1
                frame = decode_frame(data)
                if stats is not None:
                    stats.dist_control_frames += 1
                    stats.dist_control_bytes += len(data)
                    stats.dist_payload_bytes += array_payload_nbytes(frame)
                if frame["kind"] == "error":
                    raise DistributedExecutionError(
                        f"worker {handle.worker_id} failed: {frame['message']}\n"
                        f"{frame['traceback']}"
                    )
                return frame
            if handle.process.sentinel in ready:
                # Drain a reply that raced the death before declaring it.
                if handle.conn.poll(0):
                    continue
                raise WorkerDiedError(
                    f"worker {handle.worker_id} (pid {handle.process.pid}) died "
                    f"mid-flush (exit code {handle.process.exitcode})"
                )

    def shutdown(self, graceful: bool = True) -> None:
        for handle in self.workers:
            if graceful and handle.process.is_alive():
                try:
                    handle.conn.send_bytes(encode_frame(make_frame("shutdown")))
                except (BrokenPipeError, OSError):
                    pass
        for handle in self.workers:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self.loaded_tokens.clear()


# --------------------------------------------------------------------------- #
# Process-wide pool and store singletons
# --------------------------------------------------------------------------- #

_POOLS: Dict[int, WorkerPool] = {}
_POOLS_LOCK = threading.Lock()
_STORE: Optional[ShardStore] = None
_STORE_LOCK = threading.Lock()
_WORKERS_SPAWNED = 0


def _get_store() -> ShardStore:
    global _STORE
    with _STORE_LOCK:
        if _STORE is None:
            _STORE = ShardStore()
        return _STORE


def _get_pool(num_workers: int) -> WorkerPool:
    """The shared pool for ``num_workers``, (re)spawned when absent or dead."""
    global _WORKERS_SPAWNED
    with _POOLS_LOCK:
        pool = _POOLS.get(num_workers)
        if pool is not None and pool.healthy():
            return pool
        if pool is not None:
            pool.shutdown(graceful=False)
        pool = WorkerPool(num_workers)
        _WORKERS_SPAWNED += num_workers
        _POOLS[num_workers] = pool
        return pool


def _discard_pool(num_workers: int) -> None:
    with _POOLS_LOCK:
        pool = _POOLS.pop(num_workers, None)
    if pool is not None:
        pool.shutdown(graceful=False)


def _shutdown_all_pools() -> None:
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(_shutdown_all_pools)


class DistributedBackend(ParallelBackend):
    """Plan execution sharded across a pool of worker processes.

    Subclasses the tiled parallel backend for its plan integration (tile
    decomposition at prepare time, the plan-less schedule/tiling LRU) and
    replaces the launch layer: tiled steps go to worker processes over the
    control channel instead of to threads, serial steps run on the master
    against the same shared-memory storage.
    """

    name = "dist"

    def __init__(self, num_workers: Optional[int] = None) -> None:
        super().__init__()
        self._configured_workers = num_workers
        self._comm: Optional[CommunicationModel] = None
        # Backend-lifetime counters for cache_stats (per-flush deltas live
        # on ExecutionStats).
        self.shard_launches_total = 0
        self.halo_exchanges_total = 0
        self.payload_bytes_total = 0
        self.loads_shipped = 0
        # Plan-less dist-plan LRU rides the same capacity as the tiling LRU.
        self._dist_plan_cache: "OrderedDict[tuple, DistPlan]" = OrderedDict()

    def num_workers(self) -> int:
        if self._configured_workers is not None:
            return max(1, int(self._configured_workers))
        return max(1, int(get_config().dist_num_workers))

    def _comm_model(self) -> CommunicationModel:
        if self._comm is None:
            self._comm = CommunicationModel.calibrated()
        return self._comm

    # ------------------------------------------------------------------ #
    # Plan integration
    # ------------------------------------------------------------------ #

    def _dist_signature(self) -> tuple:
        return self._tiling_signature() + (self.num_workers(),)

    def prepare_plan(self, plan) -> None:
        """Attach tiling (parent) plus the shard plan, once per signature."""
        super().prepare_plan(plan)
        signature = self._dist_signature()
        with plan.lock:
            if plan.dist_plan is None or plan.dist_signature != signature:
                workers = self.num_workers()
                token = fingerprint_of_key(
                    (program_fingerprint(plan.optimized),) + signature
                )
                plan.dist_plan = build_dist_plan(
                    plan.optimized, plan.tiling, workers
                )._with_token(token)
                plan.dist_signature = signature

    def execute_plan(self, plan, program, memory: Optional[MemoryManager] = None):
        self.prepare_plan(plan)
        memory = memory if memory is not None else MemoryManager()
        # Slot aliasing is deliberately bypassed: segment-per-base residency
        # is what makes the zero-payload warm path possible, and a shared
        # slot buffer cannot be two shared-memory segments at once.  Stale
        # directives from another backend's flush must not leak in either.
        memory.apply_plan(None)
        return self._run(program, plan.tiling, memory, dist_plan=plan.dist_plan)

    def _plan_less_dist_plan(
        self, program, tiling: TileDecomposition, workers: int
    ) -> DistPlan:
        key = (program_fingerprint(program),) + self._dist_signature()
        with self._cache_lock:
            cached = self._dist_plan_cache.get(key)
            if cached is not None:
                self._dist_plan_cache.move_to_end(key)
                return cached
        dist_plan = build_dist_plan(program, tiling, workers)._with_token(
            fingerprint_of_key(key)
        )
        with self._cache_lock:
            self._dist_plan_cache[key] = dist_plan
            while len(self._dist_plan_cache) > self._tiling_capacity:
                self._dist_plan_cache.popitem(last=False)
        return dist_plan

    # ------------------------------------------------------------------ #
    # Adoption: arrays become shared-memory residents
    # ------------------------------------------------------------------ #

    def _adopt(self, memory: MemoryManager, base, store: ShardStore, stats) -> str:
        name = memory.external_token(base)
        if name is not None:
            return name  # already resident — the zero-copy warm path
        if memory.is_allocated(base):
            host = memory.allocate(base)
            name, buffer = store.create(base.nbytes)
            typed = buffer[: base.nbytes].view(base.dtype.np_dtype)
            np.copyto(typed, host)
            stats.dist_bytes_migrated += base.nbytes
            memory.free(base)  # recycle the host buffer through the pool
        else:
            name, buffer = store.create(base.nbytes)
            typed = buffer[: base.nbytes].view(base.dtype.np_dtype)
            # Recycled segments hold a previous tenant's bytes; fresh bases
            # carry Bohrium's zero-initialisation semantics.
            typed.fill(0)
        memory.adopt_external(
            base, typed, release=lambda name=name: store.release(name), token=name
        )
        return name

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _run(
        self,
        program,
        tiling: TileDecomposition,
        memory: Optional[MemoryManager],
        dist_plan: Optional[DistPlan] = None,
    ) -> ExecutionResult:
        memory = memory if memory is not None else MemoryManager()
        workers = self.num_workers()
        if dist_plan is None or dist_plan.num_workers != workers:
            dist_plan = self._plan_less_dist_plan(program, tiling, workers)
        stats = ExecutionStats(backend_name=self.name)
        stats.dist_workers_used = workers
        start = time.perf_counter()
        store = _get_store()
        try:
            self._run_sharded(program, tiling, dist_plan, memory, stats, store, workers)
        except WorkerDiedError:
            _discard_pool(workers)
            raise
        stats.wall_time_seconds = time.perf_counter() - start
        self.shard_launches_total += stats.dist_shard_launches
        self.halo_exchanges_total += stats.dist_halo_exchanges
        self.payload_bytes_total += stats.dist_payload_bytes
        return ExecutionResult(memory=memory, stats=stats)

    def _run_sharded(
        self, program, tiling, dist_plan, memory, stats, store, workers
    ) -> None:
        pool = _get_pool(workers)
        base_order = program_base_order(program)
        segments = {
            position: (self._adopt(memory, base, store, stats), base.nbytes)
            for position, base in enumerate(base_order)
        }
        scratch_name = None
        if dist_plan.max_partials:
            scratch_name, _ = store.create(
                dist_plan.max_partials * dist_plan.partial_itemsize
            )
        config = get_config()
        try:
            if dist_plan.token not in pool.loaded_tokens:
                payload = pickle.dumps(
                    (program, tiling, dist_plan), protocol=pickle.HIGHEST_PROTOCOL
                )
                load = make_frame(
                    "load",
                    token=dist_plan.token,
                    payload=payload,
                    check=bool(config.check_ir),
                )
                for worker_id in range(workers):
                    pool.send(worker_id, load, stats)
                for worker_id in range(workers):
                    frame = pool.recv(worker_id, stats)
                    if frame["kind"] != "loaded":
                        raise DistributedExecutionError(
                            f"expected loaded ack, got {frame['kind']!r}"
                        )
                    checks = int(frame["plan_checks_run"])
                    if checks:
                        from repro.checks import COUNTERS

                        for _ in range(checks):
                            COUNTERS.note_plan_check()
                        stats.plan_checks_run += checks
                pool.loaded_tokens.add(dist_plan.token)
                self.loads_shipped += 1
            map_frame = make_frame(
                "map",
                token=dist_plan.token,
                segments=segments,
                scratch=scratch_name,
                halo_mode=config.dist_halo_mode,
            )
            for worker_id in range(workers):
                pool.send(worker_id, map_frame, stats)
            for shard_step in dist_plan.steps:
                instruction = program[shard_step.index]
                if isinstance(shard_step, MasterStep):
                    if not instruction.is_system():
                        stats.serial_fallbacks += 1
                    self._interpreter._execute_instruction(
                        instruction, memory, stats, top_level=True
                    )
                    continue
                if isinstance(shard_step, MapShardStep):
                    self._launch_map_shards(
                        pool, dist_plan, shard_step, instruction, memory, stats
                    )
                else:
                    self._launch_reduce_shards(
                        pool,
                        dist_plan,
                        shard_step,
                        instruction,
                        memory,
                        store,
                        scratch_name,
                        stats,
                    )
        finally:
            if scratch_name is not None:
                store.release(scratch_name)

    def _launch_map_shards(
        self, pool, dist_plan, step: MapShardStep, instruction, memory, stats
    ) -> None:
        # Master-side accounting mirrors the parallel backend's map path.
        instructions = (
            instruction.kernel if instruction.is_fused() else (instruction,)
        )
        stats.kernel_launches += 1
        if instruction.is_fused():
            stats.record_instruction(instruction.opcode)
        for inner in instructions:
            stats.record_instruction(inner.opcode)
            self._interpreter._account_traffic(inner, memory, stats)
        stats.tiled_instructions += len(instructions)
        participants = len(step.shards)
        comm = self._comm_model()
        for halo in step.halos:
            COMM_METER.add_priced(
                participants * comm.point_to_point(halo.depth * halo.row_bytes)
            )
        frame = make_frame("step", token=dist_plan.token, step=step.index)
        for worker_id in range(participants):
            pool.send(worker_id, frame, stats)
        stats.dist_shard_launches += participants
        stats.tiles_executed += participants
        for worker_id in range(participants):
            reply = pool.recv(worker_id, stats)
            self._fold_complete(reply, step.index, stats)

    def _launch_reduce_shards(
        self,
        pool,
        dist_plan,
        step: ReduceShardStep,
        instruction,
        memory,
        store,
        scratch_name,
        stats,
    ) -> None:
        stats.kernel_launches += 1
        stats.record_instruction(instruction.opcode)
        self._interpreter._account_traffic(instruction, memory, stats)
        participants = [
            worker_id
            for worker_id, assignment in enumerate(step.assignments)
            if assignment
        ]
        frame = make_frame("step", token=dist_plan.token, step=step.index)
        for worker_id in participants:
            pool.send(worker_id, frame, stats)
        stats.dist_shard_launches += len(participants)
        stats.tiles_executed += len(step.spans)
        stats.tiled_instructions += 1
        for worker_id in participants:
            reply = pool.recv(worker_id, stats)
            self._fold_complete(reply, step.index, stats)
        if step.combine:
            # Master-side pairwise combine in the parallel backend's fixed
            # order: spans depend only on tiling configuration, so the
            # result is bitwise identical at any worker count.
            from repro.bytecode.opcodes import REDUCE_TO_ELEMENTWISE, opcode_info

            source_view = instruction.inputs[0]
            elementwise_op = REDUCE_TO_ELEMENTWISE[instruction.opcode]
            ufunc = getattr(np, opcode_info(elementwise_op).numpy_name)
            dtype = source_view.base.dtype.np_dtype
            scratch = store.buffer(scratch_name)
            partials = scratch[: len(step.spans) * dtype.itemsize].view(dtype)
            values = [partials[position] for position in range(len(step.spans))]
            while len(values) > 1:
                combined = [
                    ufunc(values[i], values[i + 1])
                    for i in range(0, len(values) - 1, 2)
                ]
                if len(values) % 2:
                    combined.append(values[-1])
                values = combined
            out = memory.view_array(instruction.out)
            np.copyto(out, np.asarray(values[0]).reshape(out.shape), casting="unsafe")

    def _fold_complete(self, reply: dict, step_index: int, stats) -> None:
        if reply["kind"] != "complete" or reply["step"] != step_index:
            raise DistributedExecutionError(
                f"out-of-order reply {reply['kind']!r} for step {step_index}"
            )
        counters = reply["counters"]
        stats.dist_halo_exchanges += int(counters.get("halo_exchanges", 0))
        stats.dist_halo_bytes += int(counters.get("halo_bytes", 0))
        measured = float(counters.get("halo_seconds", 0.0))
        if measured:
            COMM_METER.add_measured(measured)

    # ------------------------------------------------------------------ #
    # Fault injection and statistics
    # ------------------------------------------------------------------ #

    def inject_worker_crash(self, worker_id: int = 0) -> None:
        """Queue a crash frame for one worker (tests: deterministic death).

        The worker dies when it *processes* the frame — before any later
        queued work — so a flush sent immediately afterwards observes a
        mid-flush death.
        """
        pool = _get_pool(self.num_workers())
        pool.send(worker_id, make_frame("crash"), None)

    def cache_stats(self) -> Dict[str, int]:
        stats = super().cache_stats()
        stats.update(_get_store().stats())
        stats.update(COMM_METER.snapshot_us())
        stats.update(
            {
                "dist_workers_spawned": _WORKERS_SPAWNED,
                "dist_shard_launches": self.shard_launches_total,
                "dist_halo_exchanges": self.halo_exchanges_total,
                "dist_payload_bytes": self.payload_bytes_total,
                "dist_loads_shipped": self.loads_shipped,
            }
        )
        return stats
