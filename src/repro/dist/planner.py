"""Prepare-time shard planning for the distributed backend.

The planner turns a plan's tile decomposition (:mod:`repro.runtime.tiling`
already proved which steps may split along their first axis without
overlap hazards) into *shard descriptors*: one contiguous row shard per
worker process for map steps, span assignments for reductions, and — the
load-bearing part — explicit halo specifications for stencil shards.

Everything here is structural (step indices, row spans, template slot
positions, canonical base positions) so one shard plan serves every
rebound replay of its execution plan and pickles cheaply to workers.

Halo analysis
-------------
A fused stencil kernel reads one base through several views at different
row offsets (the heat-equation kernel reads its grid at row offsets
``{0, 1, 2}``).  Tiling's hazard analysis already guarantees the *written*
rows of worker shards are disjoint, but a shard's reads of such a base
reach up to ``H = max_offset - min_offset`` rows past its own block — rows
owned by the next worker.  The planner detects those bases per step and
records a :class:`HaloSpec`; at execution the worker copies the foreign
rows into a private landing buffer (overlapped with interior compute) and
runs its boundary rows against the landing copy.  When a multi-offset base
is *also written* by the same step, or its views don't share a clean
row-major layout, the step falls back to serial execution on the master —
correctness first, distribution second.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.bytecode.program import Program
from repro.cluster.partition import partition_length
from repro.runtime.kernel import kernel_slot_views
from repro.runtime.tiling import (
    SerialStep,
    TileDecomposition,
    TileSpan,
    TiledMapStep,
    TiledReduceStep,
)


@dataclass(frozen=True)
class HaloSpec:
    """One stencil base of a sharded map step.

    Attributes
    ----------
    slot_positions:
        Template slot indices (see
        :func:`repro.runtime.kernel.kernel_slot_views`) whose views read
        this base; at the boundary rows the worker redirects exactly these
        slots into its landing buffer.
    base_position:
        The base's canonical position (:func:`program_base_order`), which
        is also its key in the per-flush segment mapping.
    stride0:
        Element stride between consecutive rows — shared by every reading
        view (the planner rejects mismatches).
    min_row / max_row:
        Smallest and largest view row offset into the base; the halo depth
        is ``max_row - min_row``.
    row_bytes:
        Bytes one fetched base row occupies in the landing buffer.
    """

    slot_positions: Tuple[int, ...]
    base_position: int
    stride0: int
    min_row: int
    max_row: int
    row_bytes: int

    @property
    def depth(self) -> int:
        return self.max_row - self.min_row


@dataclass(frozen=True)
class MapShardStep:
    """A tiled map step sharded across workers: shard ``k`` → worker ``k``."""

    index: int
    shards: Tuple[TileSpan, ...]
    halos: Tuple[HaloSpec, ...] = ()


@dataclass(frozen=True)
class ReduceShardStep:
    """A tiled reduction: plan spans dealt out to workers.

    ``spans`` are the *plan's* tile spans — they depend only on tiling
    configuration, never on the worker count, which is what keeps combine
    reductions bitwise stable at any pool size: workers compute one partial
    per assigned span into the shared scratch segment (indexed by span
    position) and the master tree-combines all partials in the parallel
    backend's fixed pairwise order.  Non-combine reductions write disjoint
    output slices directly, so any dealing is bit-identical.
    """

    index: int
    spans: Tuple[TileSpan, ...]
    tile_axis: int
    combine: bool
    #: Per worker: the span positions that worker reduces (empty tuples
    #: for workers beyond the span count — they are never launched).
    assignments: Tuple[Tuple[int, ...], ...]


@dataclass(frozen=True)
class MasterStep:
    """A step the master executes serially (with the reason recorded)."""

    index: int
    reason: str


@dataclass(frozen=True)
class DistPlan:
    """The shard descriptors for one execution plan at one worker count."""

    num_workers: int
    steps: Tuple[object, ...]
    #: Widest combine reduction (span count) — sizes the scratch segment.
    max_partials: int = 0
    #: Largest source itemsize among combine reductions.
    partial_itemsize: int = 0
    #: The plan-cache token workers key their loaded-plan cache on: a
    #: fingerprint over (program, tiling signature, worker count).  Set by
    #: the backend, which knows the cache key; "" means unkeyed.
    token: str = ""

    @property
    def distributed_steps(self) -> Tuple[object, ...]:
        return tuple(
            step for step in self.steps if not isinstance(step, MasterStep)
        )

    def _with_token(self, token: str) -> "DistPlan":
        return replace(self, token=token)


def _base_positions(program: Program) -> Dict[int, int]:
    from repro.runtime.plan import program_base_order

    return {id(base): pos for pos, base in enumerate(program_base_order(program))}


def _halo_specs(
    instructions, slots
) -> Tuple[Optional[Tuple[HaloSpec, ...]], str]:
    """Halo specifications for one map step, or a fallback reason.

    Returns ``(halos, "")`` when the step can shard — possibly with no
    halos at all — and ``(None, reason)`` when a multi-offset base defeats
    the analysis and the step must run serially on the master.
    """
    written_bases = set()
    read_slots: Dict[int, List[int]] = {}
    for position, slot_view in enumerate(slots):
        is_written = any(
            slot_view.same_view(view)
            for instruction in instructions
            for view in instruction.writes()
        )
        is_read = any(
            slot_view.same_view(view)
            for instruction in instructions
            for view in instruction.reads()
        )
        if is_written:
            written_bases.add(id(slot_view.base))
        if is_read:
            read_slots.setdefault(id(slot_view.base), []).append(position)
    halos: List[HaloSpec] = []
    for base_key, positions in read_slots.items():
        views = [slots[position] for position in positions]
        base = views[0].base
        stride0 = views[0].strides[0]
        clean = stride0 > 0 and all(view.strides[0] == stride0 for view in views)
        if not clean:
            # With one distinct (offset, strides) signature per base the
            # reads translate uniformly with the shard and need no halo;
            # several signatures without a common positive row stride defeat
            # the row arithmetic — run the step on the master instead.
            if len({(view.offset, view.strides) for view in views}) < 2:
                continue
            return None, "stencil views disagree on the row stride"
        offsets = {view.offset // stride0 for view in views}
        if len(offsets) < 2:
            continue  # single row offset: the shard's own rows suffice
        if base_key in written_bases:
            return None, "stencil base is also written in the same step"
        for view in views:
            # Containment: everything a logical row addresses (column
            # remainder plus the extent of the remaining axes) must fit
            # inside one row stride, otherwise "fetch H rows" is not a
            # well-defined halo.
            extent = sum(
                (dim - 1) * stride
                for dim, stride in zip(view.shape[1:], view.strides[1:])
            )
            if any(stride < 0 for stride in view.strides):
                return None, "stencil view has negative strides"
            if view.offset % stride0 + extent + 1 > stride0:
                return None, "stencil view rows are not contained in the row stride"
        halos.append(
            HaloSpec(
                slot_positions=tuple(positions),
                base_position=-1,  # patched by the caller, which knows the order
                stride0=stride0,
                min_row=min(view.offset // stride0 for view in views),
                max_row=max(view.offset // stride0 for view in views),
                row_bytes=stride0 * base.dtype.itemsize,
            )
        )
    return tuple(halos), ""


def build_dist_plan(
    program: Program, tiling: TileDecomposition, num_workers: int
) -> DistPlan:
    """Turn a tile decomposition into per-worker shard descriptors."""
    positions = _base_positions(program)
    steps: List[object] = []
    max_partials = 0
    partial_itemsize = 0
    for step in tiling.steps:
        instruction = program[step.index]
        if isinstance(step, SerialStep):
            steps.append(MasterStep(index=step.index, reason=step.reason))
            continue
        if isinstance(step, TiledMapStep):
            instructions = (
                instruction.kernel if instruction.is_fused() else (instruction,)
            )
            slots = kernel_slot_views(instructions)
            rows = slots[0].shape[0]
            halos, reason = _halo_specs(instructions, slots)
            if halos is None:
                steps.append(MasterStep(index=step.index, reason=reason))
                continue
            halos = tuple(
                HaloSpec(
                    slot_positions=halo.slot_positions,
                    base_position=positions[id(slots[halo.slot_positions[0]].base)],
                    stride0=halo.stride0,
                    min_row=halo.min_row,
                    max_row=halo.max_row,
                    row_bytes=halo.row_bytes,
                )
                for halo in halos
            )
            # partition_length clamps to min(workers, rows): every shard
            # is non-empty by construction, workers beyond the clamp are
            # simply not launched for this step.
            shards = tuple(
                TileSpan(start, count)
                for start, count in partition_length(rows, num_workers)
            )
            steps.append(MapShardStep(index=step.index, shards=shards, halos=halos))
            continue
        assert isinstance(step, TiledReduceStep)
        dealt = partition_length(len(step.spans), num_workers)
        assignments = tuple(
            tuple(range(start, start + count)) for start, count in dealt
        ) + ((),) * (num_workers - len(dealt))
        steps.append(
            ReduceShardStep(
                index=step.index,
                spans=step.spans,
                tile_axis=step.tile_axis,
                combine=step.combine,
                assignments=assignments,
            )
        )
        if step.combine:
            max_partials = max(max_partials, len(step.spans))
            source_view = instruction.inputs[0]
            partial_itemsize = max(partial_itemsize, source_view.base.dtype.itemsize)
    return DistPlan(
        num_workers=num_workers,
        steps=tuple(steps),
        max_partials=max_partials,
        partial_itemsize=partial_itemsize,
    )


def validate_dist_plan(program: Program, tiling, plan: DistPlan) -> int:
    """Structural soundness of a shard plan against its program (worker-side).

    Workers run this before first execution of a loaded plan: step indices
    must be in range and match the tiling's step kinds, map shards must be
    non-empty and exactly partition the step's rows, and reduce assignments
    must cover every span exactly once.  Returns the number of checks run;
    raises :class:`~repro.dist.protocol.ProtocolError` on violation.
    """
    from repro.dist.protocol import ProtocolError

    checks = 0
    if len(plan.steps) != len(tiling.steps):
        raise ProtocolError(
            f"shard plan has {len(plan.steps)} steps, tiling has {len(tiling.steps)}"
        )
    for shard_step, tile_step in zip(plan.steps, tiling.steps):
        checks += 1
        if shard_step.index != tile_step.index:
            raise ProtocolError(
                f"shard step index {shard_step.index} != tiling index {tile_step.index}"
            )
        if shard_step.index >= len(program):
            raise ProtocolError(f"step index {shard_step.index} out of range")
        if isinstance(shard_step, MapShardStep):
            if not shard_step.shards:
                raise ProtocolError(f"map step {shard_step.index} has no shards")
            cursor = 0
            for span in shard_step.shards:
                if span.count <= 0:
                    raise ProtocolError(
                        f"map step {shard_step.index} carries an empty shard"
                    )
                if span.start != cursor:
                    raise ProtocolError(
                        f"map step {shard_step.index} shards are not contiguous"
                    )
                cursor += span.count
        elif isinstance(shard_step, ReduceShardStep):
            dealt = sorted(
                position
                for assignment in shard_step.assignments
                for position in assignment
            )
            if dealt != list(range(len(shard_step.spans))):
                raise ProtocolError(
                    f"reduce step {shard_step.index} assignments do not cover "
                    f"its spans exactly once"
                )
    return checks
