"""The versioned control-channel protocol between master and workers.

Every message on a worker pipe is one *frame*: a plain dict with a magic
marker, a protocol version, a ``kind`` tag and kind-specific payload
fields.  Frames are pickled explicitly (``encode_frame``) and sent with
``Connection.send_bytes`` so the exact wire size of every exchange is
countable — ``ExecutionStats.dist_control_bytes`` is the *entire* cost of
the hot path, and :func:`array_payload_nbytes` proves no NumPy array ever
rides along (``dist_payload_bytes`` must stay zero; arrays travel only
through shared memory).

Frame kinds
-----------
``hello``     worker → master once at startup (worker id, pid).
``load``      master → worker, cold path only: the pickled (program,
              tiling, shard plan) for one plan token, plus whether the
              worker should run plan soundness checks before executing.
``loaded``    worker → master ack of ``load`` (plan checks run).
``map``       master → worker, per flush: canonical base position →
              shared-memory segment name, plus the reduction scratch
              segment and the halo mode.
``step``      master → worker: execute one distributed step of the loaded
              plan against the current mapping.
``complete``  worker → master ack of ``step`` with measured counters.
``error``     worker → master: the step or load failed; payload carries
              the message and formatted traceback.
``crash``     master → worker, tests only: arm the worker to die
              (``os._exit``) when it begins its *next step*, so the master
              deterministically observes a mid-flush death.
``shutdown``  master → worker: exit the serve loop cleanly.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict

from repro.utils.errors import DistributedExecutionError

PROTOCOL_MAGIC = "repro-dist"
PROTOCOL_VERSION = 1

#: Required payload fields per frame kind — validation is structural, not
#: exhaustive; the point is that a malformed or foreign message fails loudly
#: at the channel boundary instead of deep inside execution.
FRAME_FIELDS: Dict[str, tuple] = {
    "hello": ("worker", "pid"),
    "load": ("token", "payload", "check"),
    "loaded": ("token", "plan_checks_run"),
    "map": ("token", "segments", "scratch", "halo_mode"),
    "step": ("token", "step"),
    "complete": ("step", "counters"),
    "error": ("message", "traceback"),
    "crash": (),
    "shutdown": (),
}


class ProtocolError(DistributedExecutionError):
    """A control-channel frame was malformed or out of protocol."""


def make_frame(kind: str, **payload: Any) -> Dict[str, Any]:
    """Build a frame of ``kind``; payload fields become dict entries."""
    frame = {"magic": PROTOCOL_MAGIC, "version": PROTOCOL_VERSION, "kind": kind}
    frame.update(payload)
    return validate_frame(frame)


def validate_frame(frame: Any) -> Dict[str, Any]:
    """Check magic, version, kind and required fields; return the frame."""
    if not isinstance(frame, dict):
        raise ProtocolError(f"frame is not a dict: {type(frame).__name__}")
    if frame.get("magic") != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad magic {frame.get('magic')!r}")
    if frame.get("version") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {frame.get('version')!r}, "
            f"speaking {PROTOCOL_VERSION}"
        )
    kind = frame.get("kind")
    if kind not in FRAME_FIELDS:
        raise ProtocolError(f"unknown frame kind {kind!r}")
    missing = [name for name in FRAME_FIELDS[kind] if name not in frame]
    if missing:
        raise ProtocolError(f"{kind} frame missing fields {missing}")
    return frame


def encode_frame(frame: Dict[str, Any]) -> bytes:
    """Pickle a validated frame for ``Connection.send_bytes``."""
    return pickle.dumps(validate_frame(frame), protocol=pickle.HIGHEST_PROTOCOL)


def decode_frame(data: bytes) -> Dict[str, Any]:
    """Unpickle and validate one received frame."""
    try:
        frame = pickle.loads(data)
    except Exception as exc:  # pragma: no cover - corrupted channel
        raise ProtocolError(f"undecodable frame: {exc}") from exc
    return validate_frame(frame)


def array_payload_nbytes(value: Any) -> int:
    """Bytes of NumPy array data reachable inside ``value``.

    Walks containers recursively.  Used to *measure* (not assume) that
    control frames carry no array payload: descriptors, names, spans and
    pickled program structure are all fine; an ``ndarray`` anywhere in a
    frame is a design violation the counters make visible.
    """
    import numpy as np

    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, dict):
        return sum(
            array_payload_nbytes(k) + array_payload_nbytes(v) for k, v in value.items()
        )
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(array_payload_nbytes(item) for item in value)
    return 0
