"""Shared-memory segment registry for the distributed backend.

The :class:`ShardStore` owns every ``multiprocessing.shared_memory``
segment the master process creates: it hands out segments for adopted base
arrays and reduction scratch, parks released segments on a size-classed
free list for recycling (mirroring the buffer pool's policy), enforces the
``dist_shm_max_bytes`` budget, and keeps an on-disk *manifest* of live
segment names so a crashed master can never leak ``/dev/shm`` entries:
:func:`sweep_manifests` unlinks every segment whose owning pid is dead.

Ownership rules
---------------
* Only the master creates and unlinks segments.  Workers *attach* (via
  :func:`attach_segment`, which suppresses the resource tracker so a worker
  exit cannot unlink a segment out from under the master) and therefore can
  never leak one by crashing.
* A released segment is parked, not unlinked — the recycling free list is
  what keeps warm flushes allocation-free — but parked bytes still count
  against the budget and are unlinked first when it tightens.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import threading
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.memory import size_class
from repro.utils.errors import DistributedExecutionError

#: Manifests live in one well-known temp subdirectory, named ``<pid>.json``.
MANIFEST_DIRNAME = "repro-dist-manifests"

_TRACKER_LOCK = threading.Lock()


class _tracker_suppressed:
    """Keep a shared-memory operation out of the resource tracker.

    The store manages segment lifetime itself — ``atexit`` close on clean
    exit, the pid manifest plus :func:`sweep_manifests` after a crash — so
    its segments must never enter the interpreter's resource tracker:
    tracker accounting is per-*name* but shared across the worker pool, so
    a second registrant (or an unlink of an unregistered name) corrupts the
    tracker cache and spams ``KeyError`` tracebacks at exit.  Python 3.13's
    ``track=False`` covers attach but not create/unlink on older versions,
    hence the scoped monkeypatch (serialised by a lock)."""

    def __enter__(self):
        from multiprocessing import resource_tracker

        _TRACKER_LOCK.acquire()
        self._tracker = resource_tracker
        self._register = resource_tracker.register
        self._unregister = resource_tracker.unregister
        resource_tracker.register = lambda name, rtype: None
        resource_tracker.unregister = lambda name, rtype: None
        return self

    def __exit__(self, *exc):
        self._tracker.register = self._register
        self._tracker.unregister = self._unregister
        _TRACKER_LOCK.release()
        return False


def manifest_dir() -> Path:
    path = Path(tempfile.gettempdir()) / MANIFEST_DIRNAME
    path.mkdir(exist_ok=True)
    return path


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting unlink responsibility.

    Python < 3.13 registers *attachments* with the resource tracker, which
    unlinks the segment when the attaching process exits — exactly wrong
    for workers that merely borrow the master's segments.  3.13 grew
    ``track=False``; older versions need the registration suppressed (the
    register/unregister-later dance is not equivalent: the tracker cache is
    shared across the pool, so a worker's unregister erases the *master's*
    registration and the eventual unlink trips a tracker KeyError).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        with _tracker_suppressed():
            return shared_memory.SharedMemory(name=name)


def _unlink_untracked(shm: shared_memory.SharedMemory) -> None:
    """Unlink a segment the tracker never knew about (see above)."""
    with _tracker_suppressed():
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _close_quietly(shm: shared_memory.SharedMemory) -> None:
    """Close a segment's mapping, tolerating live NumPy views.

    ``mmap.close`` raises ``BufferError`` while exported views exist; at
    teardown the views die with the process, so unlinking is what matters.
    Disarming ``close`` afterwards keeps ``SharedMemory.__del__``'s retry
    from printing "Exception ignored" noise at interpreter shutdown.
    """
    try:
        shm.close()
    except BufferError:
        shm.close = lambda: None


class ShardStore:
    """Registry, recycler and budget-keeper for shared-memory segments."""

    def __init__(
        self,
        max_bytes: Optional[Callable[[], int]] = None,
        directory: Optional[Path] = None,
    ) -> None:
        #: Budget provider — read per create so ``config_override`` in
        #: tests (and CLI flag changes) take effect without a new store.
        if max_bytes is None:
            from repro.utils.config import get_config

            max_bytes = lambda: get_config().dist_shm_max_bytes  # noqa: E731
        self._max_bytes = max_bytes
        self._directory = directory if directory is not None else manifest_dir()
        #: name -> (segment, size class, uint8 buffer view); live segments.
        self._active: Dict[str, Tuple[shared_memory.SharedMemory, int, np.ndarray]] = {}
        #: size class -> parked (name, segment, buffer) entries for reuse.
        self._parked: Dict[int, List[Tuple[str, shared_memory.SharedMemory, np.ndarray]]] = {}
        self._segments_lock = threading.Lock()
        self.segments_created = 0
        self.segments_recycled = 0
        self._closed = False
        atexit.register(self.close)

    # ------------------------------------------------------------------ #
    # Budget accounting (callers hold the lock)
    # ------------------------------------------------------------------ #

    def _active_bytes(self) -> int:
        return sum(cls for _, cls, _ in self._active.values())

    def _parked_bytes(self) -> int:
        return sum(cls * len(entries) for cls, entries in self._parked.items())

    def _evict_parked(self, needed: int) -> None:
        """Unlink parked segments until ``needed`` bytes fit in the budget."""
        budget = self._max_bytes()
        for cls in sorted(self._parked, reverse=True):
            entries = self._parked[cls]
            while entries and self._active_bytes() + self._parked_bytes() + needed > budget:
                name, shm, _ = entries.pop()
                _close_quietly(shm)
                _unlink_untracked(shm)
            if not entries:
                del self._parked[cls]
        self._write_manifest()

    # ------------------------------------------------------------------ #
    # Segment lifecycle
    # ------------------------------------------------------------------ #

    def create(self, nbytes: int) -> Tuple[str, np.ndarray]:
        """A segment with at least ``nbytes`` capacity: ``(name, uint8 buffer)``.

        Recycles a parked segment of the same size class when one exists
        (its contents are stale — callers zero or overwrite), otherwise
        creates a fresh one, evicting parked segments if the budget needs
        the room.  The buffer may still hold data from a previous owner;
        never hand it out un-initialised.
        """
        cls = size_class(max(int(nbytes), 1))
        with self._segments_lock:
            if self._closed:
                raise DistributedExecutionError("shard store is closed")
            entries = self._parked.get(cls)
            if entries:
                name, shm, buffer = entries.pop()
                if not entries:
                    del self._parked[cls]
                self.segments_recycled += 1
                self._active[name] = (shm, cls, buffer)
                return name, buffer
            if self._active_bytes() + self._parked_bytes() + cls > self._max_bytes():
                self._evict_parked(cls)
            if self._active_bytes() + self._parked_bytes() + cls > self._max_bytes():
                raise DistributedExecutionError(
                    f"shared-memory budget exhausted: {cls} more bytes over "
                    f"{self._max_bytes()} (dist_shm_max_bytes) with "
                    f"{self._active_bytes()} active"
                )
            with _tracker_suppressed():
                shm = shared_memory.SharedMemory(create=True, size=cls)
            buffer = np.frombuffer(shm.buf, dtype=np.uint8, count=cls)
            self.segments_created += 1
            self._active[shm.name] = (shm, cls, buffer)
            self._write_manifest()
            return shm.name, buffer

    def release(self, name: str) -> None:
        """Park an active segment on the free list for recycling."""
        with self._segments_lock:
            entry = self._active.pop(name, None)
            if entry is None:
                return
            shm, cls, buffer = entry
            self._parked.setdefault(cls, []).append((name, shm, buffer))

    def buffer(self, name: str) -> np.ndarray:
        """The uint8 buffer of an active segment."""
        with self._segments_lock:
            return self._active[name][2]

    def nbytes(self, name: str) -> int:
        """The capacity (size class) of an active segment."""
        with self._segments_lock:
            return self._active[name][1]

    def active_segments(self) -> Tuple[str, ...]:
        with self._segments_lock:
            return tuple(self._active)

    def stats(self) -> Dict[str, int]:
        with self._segments_lock:
            return {
                "dist_segments_created": self.segments_created,
                "dist_segments_recycled": self.segments_recycled,
                "dist_segments_active": len(self._active),
                "dist_shm_bytes_active": self._active_bytes(),
                "dist_shm_bytes_parked": self._parked_bytes(),
            }

    def close(self) -> None:
        """Unlink every segment (active and parked) and drop the manifest."""
        with self._segments_lock:
            if self._closed:
                return
            self._closed = True
            for name, (shm, _, _) in list(self._active.items()):
                _close_quietly(shm)
                _unlink_untracked(shm)
            self._active.clear()
            for entries in self._parked.values():
                for _, shm, _ in entries:
                    _close_quietly(shm)
                    _unlink_untracked(shm)
            self._parked.clear()
            try:
                self._manifest_path().unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Crash-recovery manifest
    # ------------------------------------------------------------------ #

    def _manifest_path(self) -> Path:
        return self._directory / f"{os.getpid()}.json"

    def _write_manifest(self) -> None:
        """Record every live segment name under this pid (crash insurance)."""
        names = sorted(self._active) + sorted(
            name for entries in self._parked.values() for name, _, _ in entries
        )
        payload = {"pid": os.getpid(), "segments": names}
        try:
            self._manifest_path().write_text(json.dumps(payload))
        except OSError:  # pragma: no cover - tempdir trouble is best-effort
            pass


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True


def sweep_manifests(directory: Optional[Path] = None) -> List[str]:
    """Unlink segments whose owning process died without cleanup.

    Scans the manifest directory; for every manifest whose pid is no longer
    alive, unlinks each recorded segment that still exists and removes the
    manifest.  Returns the names actually unlinked.  Safe to run any time —
    live owners' manifests are left alone.
    """
    directory = directory if directory is not None else manifest_dir()
    swept: List[str] = []
    for path in sorted(directory.glob("*.json")):
        try:
            payload = json.loads(path.read_text())
            pid = int(payload["pid"])
            segments = list(payload.get("segments", ()))
        except (OSError, ValueError, KeyError):
            continue
        if _pid_alive(pid):
            continue
        for name in segments:
            try:
                shm = attach_segment(name)
            except FileNotFoundError:
                continue
            _close_quietly(shm)
            _unlink_untracked(shm)
            swept.append(name)
        try:
            path.unlink()
        except OSError:
            pass
    return swept
