"""The worker-process side of the distributed backend.

``worker_main`` is the spawn entry point: a frame-serve loop over one
duplex pipe.  Workers are deliberately dumb — they hold no configuration,
never create shared-memory segments (only attach, so a worker crash cannot
leak one) and never talk to each other; the master sequences every step
through per-step ``step``/``complete`` round trips, which is what makes a
dead worker immediately detectable (the master waits on the pipe *and* the
process sentinel).

Execution model
---------------
* ``load`` caches the pickled (program, tiling, shard plan) under its plan
  token and runs the plan soundness checks (structural shard validation
  always; the ``checks`` layer's tiling check when the master says so).
* ``map`` binds canonical base positions to shared-memory segments for the
  coming steps — the whole per-flush data plane is this name mapping.
* ``step`` executes this worker's shard of one distributed step: map
  shards slice every template slot view to the shard rows; stencil shards
  first fetch their halo rows into a private landing buffer (on a
  background thread in ``overlap`` mode, so the copy hides behind interior
  compute) and run their boundary rows against the landing copy; reduction
  shards reduce their assigned spans, combine forms writing partials into
  the shared scratch segment for the master's fixed pairwise combine.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import traceback
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.bytecode.base import BaseArray
from repro.bytecode.opcodes import REDUCE_TO_ELEMENTWISE, opcode_info
from repro.bytecode.view import View
from repro.dist.planner import HaloSpec, MapShardStep, ReduceShardStep
from repro.dist.protocol import (
    ProtocolError,
    decode_frame,
    encode_frame,
    make_frame,
)
from repro.dist.shardstore import _close_quietly, attach_segment
from repro.runtime.kernel import prepare_kernel_launch
from repro.runtime.tiling import TileSpan, slice_view

#: Worker-side attachment cache cap: segments beyond this are re-attached
#: on demand (bounds stale attachments when the master recycles heavily).
MAX_ATTACHMENTS = 64


class ShardMemory:
    """Duck-typed memory manager over attached shared-memory storage.

    Kernel templates (and their interpreter fallback path) only need
    ``allocate``/``view_array``/``read_view``/``write_view``; storage is
    pre-registered from the flush's segment mapping, so an unmapped base is
    a protocol violation, never a silent host allocation.
    """

    def __init__(self) -> None:
        self._storage: Dict[int, np.ndarray] = {}

    def register(self, base: BaseArray, storage: np.ndarray) -> None:
        self._storage[id(base)] = storage

    def unregister(self, base: BaseArray) -> None:
        self._storage.pop(id(base), None)

    def allocate(self, base: BaseArray, zero: Optional[bool] = None) -> np.ndarray:
        try:
            return self._storage[id(base)]
        except KeyError:
            raise ProtocolError(
                f"worker asked to materialize unmapped base {base.name or id(base)}"
            ) from None

    def view_array(self, view: View) -> np.ndarray:
        buffer = self.allocate(view.base)
        itemsize = view.base.dtype.itemsize
        strides_bytes = tuple(stride * itemsize for stride in view.strides)
        return np.lib.stride_tricks.as_strided(
            buffer[view.offset:],
            shape=view.shape,
            strides=strides_bytes,
            writeable=True,
        )

    def read_view(self, view: View) -> np.ndarray:
        return np.array(self.view_array(view), copy=True)

    def write_view(self, view: View, data) -> None:
        np.copyto(self.view_array(view), data)


class _LoadedPlan:
    """One plan token's unpickled artifacts, cached for the pool's lifetime."""

    def __init__(self, program, tiling, dist_plan) -> None:
        from repro.runtime.plan import program_base_order

        self.program = program
        self.tiling = tiling
        self.dist_plan = dist_plan
        self.base_order = program_base_order(program)
        #: step index -> (slot views, compiled template)
        self.templates: Dict[int, tuple] = {}


class _Worker:
    def __init__(self, worker_id: int, conn) -> None:
        self.worker_id = worker_id
        self.conn = conn
        self.plans: Dict[str, _LoadedPlan] = {}
        #: segment name -> (shm, uint8 buffer); LRU, capped.
        self.attachments: "OrderedDict[str, tuple]" = OrderedDict()
        self.memory: Optional[ShardMemory] = None
        self.current_token: Optional[str] = None
        self.scratch: Optional[np.ndarray] = None
        self.halo_mode = "overlap"
        self.mapped_names: set = set()
        self.crash_armed = False

    # ------------------------------------------------------------------ #
    # Channel helpers
    # ------------------------------------------------------------------ #

    def send(self, kind: str, **payload) -> None:
        self.conn.send_bytes(encode_frame(make_frame(kind, **payload)))

    def serve(self) -> None:
        self.send("hello", worker=self.worker_id, pid=os.getpid())
        while True:
            try:
                frame = decode_frame(self.conn.recv_bytes())
            except (EOFError, OSError):
                break  # master went away; nothing to clean but mappings
            kind = frame["kind"]
            if kind == "shutdown":
                break
            if kind == "crash":
                # Test-only fault injection, *armed* rather than immediate:
                # the worker dies when it starts its next step, so the
                # master observes the death mid-flush (after load/map, with
                # a step outstanding) instead of between flushes where the
                # pool would simply be respawned.
                self.crash_armed = True
                continue
            try:
                if kind == "load":
                    self.handle_load(frame)
                elif kind == "map":
                    self.handle_map(frame)
                elif kind == "step":
                    self.handle_step(frame)
                else:
                    raise ProtocolError(f"worker cannot handle {kind!r} frames")
            except Exception as exc:
                try:
                    self.send(
                        "error",
                        message=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    )
                except (BrokenPipeError, OSError):
                    break
        self.close()

    def close(self) -> None:
        # Drop every view layer first so the mappings can actually close.
        self.memory = None
        self.scratch = None
        self.plans.clear()
        for name, (shm, buffer) in list(self.attachments.items()):
            del buffer
            _close_quietly(shm)
        self.attachments.clear()
        try:
            self.conn.close()
        except OSError:
            pass

    # ------------------------------------------------------------------ #
    # Frame handlers
    # ------------------------------------------------------------------ #

    def handle_load(self, frame) -> None:
        from repro.dist.planner import validate_dist_plan

        token = frame["token"]
        program, tiling, dist_plan = pickle.loads(frame["payload"])
        loaded = _LoadedPlan(program, tiling, dist_plan)
        checks = validate_dist_plan(program, tiling, dist_plan)
        if frame["check"]:
            from repro.checks.plancheck import check_tiling

            check_tiling(program, tiling)
            checks += 1
        self.plans[token] = loaded
        self.send("loaded", token=token, plan_checks_run=checks)

    def _attach(self, name: str) -> np.ndarray:
        entry = self.attachments.get(name)
        if entry is not None:
            self.attachments.move_to_end(name)
            return entry[1]
        while len(self.attachments) >= MAX_ATTACHMENTS:
            stale = next(
                (key for key in self.attachments if key not in self.mapped_names),
                None,
            )
            if stale is None:
                break
            shm, _ = self.attachments.pop(stale)
            _close_quietly(shm)
        shm = attach_segment(name)
        buffer = np.frombuffer(shm.buf, dtype=np.uint8, count=shm.size)
        self.attachments[name] = (shm, buffer)
        return buffer

    def handle_map(self, frame) -> None:
        token = frame["token"]
        loaded = self.plans.get(token)
        if loaded is None:
            raise ProtocolError(f"map for unloaded plan token {token}")
        self.mapped_names = {name for name, _ in frame["segments"].values()}
        scratch_name = frame["scratch"]
        if scratch_name is not None:
            self.mapped_names.add(scratch_name)
        memory = ShardMemory()
        for position, (name, _) in frame["segments"].items():
            base = loaded.base_order[position]
            buffer = self._attach(name)
            if base.nbytes > buffer.nbytes:
                raise ProtocolError(
                    f"segment {name} ({buffer.nbytes} B) too small for base "
                    f"at position {position} ({base.nbytes} B)"
                )
            memory.register(base, buffer[: base.nbytes].view(base.dtype.np_dtype))
        self.memory = memory
        self.current_token = token
        self.scratch = self._attach(scratch_name) if scratch_name is not None else None
        self.halo_mode = frame["halo_mode"]

    def handle_step(self, frame) -> None:
        if self.crash_armed:
            # Die exactly like a segfaulting kernel would: no reply, no
            # cleanup, with the master's step outstanding.
            os._exit(23)
        token = frame["token"]
        if token != self.current_token or self.memory is None:
            raise ProtocolError("step frame without a current segment mapping")
        loaded = self.plans[token]
        step = loaded.dist_plan.steps[frame["step"]]
        counters = {"halo_exchanges": 0, "halo_bytes": 0, "halo_seconds": 0.0}
        if isinstance(step, MapShardStep):
            self._run_map_shard(loaded, step, counters)
        elif isinstance(step, ReduceShardStep):
            self._run_reduce_shard(loaded, step)
        else:
            raise ProtocolError(f"step {frame['step']} is not distributed")
        self.send("complete", step=frame["step"], counters=counters)

    # ------------------------------------------------------------------ #
    # Map shards (with halo exchange)
    # ------------------------------------------------------------------ #

    def _template(self, loaded: _LoadedPlan, step_index: int):
        cached = loaded.templates.get(step_index)
        if cached is None:
            instruction = loaded.program[step_index]
            instructions = (
                instruction.kernel if instruction.is_fused() else (instruction,)
            )
            _, slots, make_template = prepare_kernel_launch(instructions)
            cached = (slots, make_template())
            loaded.templates[step_index] = cached
        return cached

    def _run_map_shard(self, loaded, step: MapShardStep, counters) -> None:
        if self.worker_id >= len(step.shards):
            raise ProtocolError(
                f"worker {self.worker_id} launched beyond step's {len(step.shards)} shards"
            )
        shard = step.shards[self.worker_id]
        slots, template = self._template(loaded, step.index)
        if not step.halos:
            views = tuple(slice_view(view, shard) for view in slots)
            template(self.memory, views)
            return
        depth = max(halo.depth for halo in step.halos)
        boundary = min(depth, shard.count)
        interior = shard.count - boundary
        landings = [
            self._prepare_landing(loaded, halo, shard, interior) for halo in step.halos
        ]

        def fetch() -> None:
            begin = time.perf_counter()
            for halo, (landing, base_lo) in zip(step.halos, landings):
                source = self.memory.allocate(loaded.base_order[halo.base_position])
                lo = base_lo * halo.stride0
                hi = lo + landing.size
                if hi > source.size:
                    raise ProtocolError(
                        f"halo fetch [{lo}, {hi}) exceeds base of {source.size} elements"
                    )
                np.copyto(landing, source[lo:hi])
                counters["halo_exchanges"] += 1
                counters["halo_bytes"] += halo.depth * halo.row_bytes
            counters["halo_seconds"] += time.perf_counter() - begin

        if self.halo_mode == "overlap" and interior > 0:
            # Communication hides behind interior compute: the landing
            # buffers fill on a background thread while this thread runs
            # the rows that need no foreign data.
            fetcher = threading.Thread(target=fetch, name="repro-dist-halo")
            fetcher.start()
            interior_views = tuple(
                slice_view(view, TileSpan(shard.start, interior)) for view in slots
            )
            template(self.memory, interior_views)
            fetcher.join()
        else:
            fetch()
            if interior > 0:
                interior_views = tuple(
                    slice_view(view, TileSpan(shard.start, interior)) for view in slots
                )
                template(self.memory, interior_views)
        if boundary > 0:
            boundary_views, landing_bases = self._boundary_views(
                step, slots, shard, interior, boundary, landings
            )
            template(self.memory, boundary_views)
            for landing_base in landing_bases:
                self.memory.unregister(landing_base)

    def _prepare_landing(self, loaded, halo: HaloSpec, shard: TileSpan, interior: int):
        """An *uninitialised* landing buffer covering the boundary window.

        ``np.empty`` is deliberate: if the halo fetch were skipped the
        boundary rows would compute on garbage, so a passing bitwise check
        proves the exchange actually carried the data.
        """
        boundary = shard.count - interior
        base_lo = shard.start + interior + halo.min_row
        rows = boundary + halo.depth
        dtype = loaded.base_order[halo.base_position].dtype.np_dtype
        landing = np.empty(rows * halo.stride0, dtype=dtype)
        return landing, base_lo

    def _boundary_views(
        self, step, slots, shard: TileSpan, interior: int, boundary: int, landings
    ):
        """Slot views for the boundary rows, stencil slots redirected to landings."""
        landing_of: Dict[int, tuple] = {}
        landing_base_of: Dict[int, BaseArray] = {}
        for halo, (landing, base_lo) in zip(step.halos, landings):
            base = slots[halo.slot_positions[0]].base
            landing_base = BaseArray(
                landing.size, base.dtype, name=f"halo:{base.name or id(base)}"
            )
            self.memory.register(landing_base, landing)
            landing_base_of[id(landing_base)] = landing_base
            for position in halo.slot_positions:
                landing_of[position] = (halo, landing_base)
        views: List[View] = []
        boundary_span = TileSpan(shard.start + interior, boundary)
        for position, slot_view in enumerate(slots):
            redirect = landing_of.get(position)
            if redirect is None:
                views.append(slice_view(slot_view, boundary_span))
                continue
            halo, landing_base = redirect
            # Landing row 0 holds base row (shard.start + interior +
            # min_row); a view reading the base at row offset r therefore
            # starts at landing row (r - min_row).
            offset = slot_view.offset - halo.min_row * halo.stride0
            views.append(
                View(
                    landing_base,
                    offset,
                    (boundary,) + slot_view.shape[1:],
                    slot_view.strides,
                )
            )
        return tuple(views), list(landing_base_of.values())

    # ------------------------------------------------------------------ #
    # Reduction shards
    # ------------------------------------------------------------------ #

    def _run_reduce_shard(self, loaded, step: ReduceShardStep) -> None:
        positions = step.assignments[self.worker_id]
        if not positions:
            raise ProtocolError(
                f"worker {self.worker_id} launched for reduce step with no spans"
            )
        instruction = loaded.program[step.index]
        source_view, axis_constant = instruction.inputs
        axis = int(axis_constant.value)
        elementwise_op = REDUCE_TO_ELEMENTWISE[instruction.opcode]
        ufunc = getattr(np, opcode_info(elementwise_op).numpy_name)
        out_view = instruction.out
        if not step.combine:
            for position in positions:
                span = step.spans[position]
                source = self.memory.view_array(
                    slice_view(source_view, span, axis=step.tile_axis)
                )
                out = self.memory.view_array(slice_view(out_view, span, axis=0))
                reduced = ufunc.reduce(source, axis=axis)
                np.copyto(
                    out, np.asarray(reduced).reshape(out.shape), casting="unsafe"
                )
            return
        if self.scratch is None:
            raise ProtocolError("combine reduction launched without a scratch segment")
        dtype = source_view.base.dtype.np_dtype
        partials = self.scratch[: len(step.spans) * dtype.itemsize].view(dtype)
        for position in positions:
            span = step.spans[position]
            source = self.memory.view_array(slice_view(source_view, span))
            partials[position] = ufunc.reduce(source, axis=0)


def worker_main(worker_id: int, conn) -> None:
    """Spawn entry point: serve frames until shutdown or master death."""
    _Worker(worker_id, conn).serve()
