"""Lazy NumPy-like front-end ("change the import, keep the code").

Bohrium's promise is that a scientific Python program keeps using the NumPy
API while the runtime records byte-code behind the scenes and executes it in
optimized, fused batches.  This package reproduces that programming model:

>>> from repro import frontend as np
>>> a = np.zeros(10)
>>> a += 1
>>> a += 1
>>> a += 1
>>> print(a)                # the flush point: optimize + execute
[3. 3. 3. ...]

Operations on :class:`BhArray` objects record byte-code into the active
:class:`Session`; the program is optimized by the transformation engine and
executed by the configured backend only when a value is actually observed
(``to_numpy()``, ``repr``, ``float(...)``) or :func:`flush` is called.
"""

from repro.frontend.session import Session, get_session, reset_session, set_session
from repro.frontend.array import BhArray
from repro.frontend.creation import (
    array,
    arange,
    empty,
    empty_like,
    full,
    linspace,
    ones,
    ones_like,
    zeros,
    zeros_like,
)
from repro.frontend.ufuncs import (
    absolute,
    add,
    arccos,
    arcsin,
    arctan,
    cos,
    divide,
    erf,
    exp,
    log,
    maximum,
    minimum,
    multiply,
    negative,
    power,
    sin,
    sqrt,
    subtract,
    tan,
)
from repro.frontend.reductions import amax, amin, mean, prod, sum  # noqa: A004
from repro.frontend.flush import cache_stats, flush, last_report
from repro.frontend import linalg, random

__all__ = [
    "Session",
    "get_session",
    "set_session",
    "reset_session",
    "BhArray",
    "array",
    "arange",
    "empty",
    "empty_like",
    "full",
    "linspace",
    "ones",
    "ones_like",
    "zeros",
    "zeros_like",
    "absolute",
    "add",
    "arccos",
    "arcsin",
    "arctan",
    "cos",
    "divide",
    "erf",
    "exp",
    "log",
    "maximum",
    "minimum",
    "multiply",
    "negative",
    "power",
    "sin",
    "sqrt",
    "subtract",
    "tan",
    "sum",
    "prod",
    "amax",
    "amin",
    "mean",
    "flush",
    "last_report",
    "cache_stats",
    "linalg",
    "random",
]
