"""The lazy array type recorded against the byte-code session."""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.bytecode import dtypes
from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import DType, float64, promote
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.bytecode.view import View
from repro.frontend.indexing import IndexKey, slice_view
from repro.frontend.session import Session, get_session
from repro.utils.errors import FrontendError

ScalarLike = Union[bool, int, float, np.generic]
OperandLike = Union["BhArray", ScalarLike]


def _result_shape(left_shape: Tuple[int, ...], right_shape: Tuple[int, ...]) -> Tuple[int, ...]:
    try:
        return tuple(np.broadcast_shapes(left_shape, right_shape))
    except ValueError:
        raise FrontendError(
            f"operands with shapes {left_shape} and {right_shape} cannot be broadcast"
        ) from None


class BhArray:
    """A lazily evaluated, byte-code-backed array.

    A ``BhArray`` is a view over a base array plus a reference to the
    session it records into.  Arithmetic produces new arrays and records
    byte-code; nothing is computed until the value is observed
    (:meth:`to_numpy`, ``repr``, ``float(...)``) or the session is flushed.
    """

    __array_priority__ = 100  # make NumPy defer to our reflected operators

    def __init__(self, view: View, session: Optional[Session] = None) -> None:
        self.view = view
        self.session = session if session is not None else get_session()
        self.session.retain_base(view.base)

    def __del__(self) -> None:
        # Mirror Bohrium: when the last Python handle to a base array is
        # collected, record a BH_FREE so the optimizer knows the value is
        # dead and the backend can release the storage.  Guarded broadly
        # because __del__ may run during interpreter shutdown.
        try:
            self.session.release_base(self.view.base)
        except Exception:  # pragma: no cover - interpreter-shutdown races
            pass

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def new(
        cls,
        shape: Union[int, Sequence[int]],
        dtype: DType = float64,
        session: Optional[Session] = None,
    ) -> "BhArray":
        """Allocate a fresh (uninitialised) array of ``shape``."""
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        shape = tuple(int(dim) for dim in shape)
        nelem = 1
        for dim in shape:
            nelem *= dim
        if nelem <= 0:
            raise FrontendError(f"cannot allocate an array with shape {shape}")
        base = BaseArray(nelem, dtype)
        return cls(View.full(base, shape), session)

    @classmethod
    def from_numpy(cls, data: np.ndarray, session: Optional[Session] = None) -> "BhArray":
        """Wrap existing NumPy data (the data is copied into base storage)."""
        data = np.asarray(data)
        if data.ndim == 0:
            data = data.reshape(1)
        dtype = dtypes.from_numpy(data.dtype)
        result = cls.new(data.shape, dtype, session)
        result.session.memory.set_data(result.view.base, data)
        return result

    def _spawn(self, shape: Tuple[int, ...], dtype: DType) -> "BhArray":
        """Allocate a new array in the same session."""
        return BhArray.new(shape, dtype, self.session)

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> Tuple[int, ...]:
        """Array shape."""
        return self.view.shape

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return self.view.ndim

    @property
    def size(self) -> int:
        """Total number of elements."""
        return self.view.nelem

    @property
    def dtype(self) -> DType:
        """Element type."""
        return self.view.dtype

    # ------------------------------------------------------------------ #
    # Recording helpers
    # ------------------------------------------------------------------ #

    def _record(self, opcode: OpCode, *operands) -> None:
        self.session.record(Instruction(opcode, operands))

    def _coerce_operand(self, other: OperandLike):
        """Turn ``other`` into a byte-code operand (view or constant)."""
        if isinstance(other, BhArray):
            if other.session is not self.session:
                raise FrontendError("cannot combine arrays from different sessions")
            return other.view
        if isinstance(other, (bool, int, float, np.bool_, np.integer, np.floating)):
            return Constant(other)
        if isinstance(other, np.ndarray):
            return BhArray.from_numpy(other, self.session).view
        raise FrontendError(f"cannot operate on object of type {type(other).__name__}")

    def _operand_shape(self, operand) -> Tuple[int, ...]:
        if isinstance(operand, Constant):
            return ()
        return operand.shape

    def _operand_dtype(self, operand) -> DType:
        return operand.dtype

    def _binary(self, opcode: OpCode, other: OperandLike, reflected: bool = False) -> "BhArray":
        operand = self._coerce_operand(other)
        shape = _result_shape(self.shape, self._operand_shape(operand))
        dtype = promote(self.dtype, self._operand_dtype(operand))
        if opcode in (
            OpCode.BH_GREATER,
            OpCode.BH_GREATER_EQUAL,
            OpCode.BH_LESS,
            OpCode.BH_LESS_EQUAL,
            OpCode.BH_EQUAL,
            OpCode.BH_NOT_EQUAL,
        ):
            dtype = dtypes.bool_
        elif opcode is OpCode.BH_DIVIDE or opcode is OpCode.BH_POWER:
            dtype = float64 if not dtype.is_float else dtype
        result = self._spawn(shape, dtype)
        left, right = (operand, self.view) if reflected else (self.view, operand)
        result._record(opcode, result.view, left, right)
        return result

    def _binary_inplace(self, opcode: OpCode, other: OperandLike) -> "BhArray":
        operand = self._coerce_operand(other)
        shape = _result_shape(self.shape, self._operand_shape(operand))
        if shape != self.shape:
            raise FrontendError(
                f"in-place result shape {shape} does not match array shape {self.shape}"
            )
        self._record(opcode, self.view, self.view, operand)
        return self

    def _unary(self, opcode: OpCode) -> "BhArray":
        dtype = float64 if opcode in _FLOAT_RESULT_UNARY and not self.dtype.is_float else self.dtype
        result = self._spawn(self.shape, dtype)
        result._record(opcode, result.view, self.view)
        return result

    # ------------------------------------------------------------------ #
    # Arithmetic operators
    # ------------------------------------------------------------------ #

    def __add__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_ADD, other)

    def __radd__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_ADD, other, reflected=True)

    def __iadd__(self, other: OperandLike) -> "BhArray":
        return self._binary_inplace(OpCode.BH_ADD, other)

    def __sub__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_SUBTRACT, other)

    def __rsub__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_SUBTRACT, other, reflected=True)

    def __isub__(self, other: OperandLike) -> "BhArray":
        return self._binary_inplace(OpCode.BH_SUBTRACT, other)

    def __mul__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_MULTIPLY, other)

    def __rmul__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_MULTIPLY, other, reflected=True)

    def __imul__(self, other: OperandLike) -> "BhArray":
        return self._binary_inplace(OpCode.BH_MULTIPLY, other)

    def __truediv__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_DIVIDE, other)

    def __rtruediv__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_DIVIDE, other, reflected=True)

    def __itruediv__(self, other: OperandLike) -> "BhArray":
        return self._binary_inplace(OpCode.BH_DIVIDE, other)

    def __mod__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_MOD, other)

    def __pow__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_POWER, other)

    def __ipow__(self, other: OperandLike) -> "BhArray":
        return self._binary_inplace(OpCode.BH_POWER, other)

    def __neg__(self) -> "BhArray":
        return self._unary(OpCode.BH_NEGATIVE)

    def __abs__(self) -> "BhArray":
        return self._unary(OpCode.BH_ABSOLUTE)

    def __matmul__(self, other: "BhArray") -> "BhArray":
        from repro.frontend import linalg

        return linalg.matmul(self, other)

    # ------------------------------------------------------------------ #
    # Comparisons (return boolean arrays)
    # ------------------------------------------------------------------ #

    def __gt__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_GREATER, other)

    def __ge__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_GREATER_EQUAL, other)

    def __lt__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_LESS, other)

    def __le__(self, other: OperandLike) -> "BhArray":
        return self._binary(OpCode.BH_LESS_EQUAL, other)

    def equals(self, other: OperandLike) -> "BhArray":
        """Element-wise equality (named method; ``==`` keeps identity semantics)."""
        return self._binary(OpCode.BH_EQUAL, other)

    def not_equals(self, other: OperandLike) -> "BhArray":
        """Element-wise inequality."""
        return self._binary(OpCode.BH_NOT_EQUAL, other)

    # ------------------------------------------------------------------ #
    # Shape manipulation and indexing
    # ------------------------------------------------------------------ #

    def __getitem__(self, key: IndexKey) -> "BhArray":
        return BhArray(slice_view(self.view, key), self.session)

    def __setitem__(self, key: IndexKey, value: OperandLike) -> None:
        target = slice_view(self.view, key)
        operand = self._coerce_operand(value)
        self.session.record(Instruction(OpCode.BH_IDENTITY, (target, operand)))

    def reshape(self, *shape) -> "BhArray":
        """Reshape (contiguous views only, no data movement)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return BhArray(self.view.reshape(shape), self.session)

    def flatten(self) -> "BhArray":
        """Flatten to 1-D (contiguous views only)."""
        return self.reshape((self.size,))

    @property
    def T(self) -> "BhArray":
        """Matrix transpose (records a ``BH_TRANSPOSE`` into a new array)."""
        if self.ndim != 2:
            raise FrontendError("T is only defined for two-dimensional arrays")
        rows, cols = self.shape
        result = self._spawn((cols, rows), self.dtype)
        result._record(OpCode.BH_TRANSPOSE, result.view, self.view)
        return result

    def copy(self) -> "BhArray":
        """An independent copy (records a ``BH_IDENTITY``)."""
        result = self._spawn(self.shape, self.dtype)
        result._record(OpCode.BH_IDENTITY, result.view, self.view)
        return result

    # ------------------------------------------------------------------ #
    # Reductions (delegating to the reductions module)
    # ------------------------------------------------------------------ #

    def sum(self, axis: Optional[int] = None) -> "BhArray":
        from repro.frontend import reductions

        return reductions.sum(self, axis=axis)

    def prod(self, axis: Optional[int] = None) -> "BhArray":
        from repro.frontend import reductions

        return reductions.prod(self, axis=axis)

    def max(self, axis: Optional[int] = None) -> "BhArray":
        from repro.frontend import reductions

        return reductions.amax(self, axis=axis)

    def min(self, axis: Optional[int] = None) -> "BhArray":
        from repro.frontend import reductions

        return reductions.amin(self, axis=axis)

    def mean(self, axis: Optional[int] = None) -> "BhArray":
        from repro.frontend import reductions

        return reductions.mean(self, axis=axis)

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #

    def to_numpy(self) -> np.ndarray:
        """Flush the session and return this array's value as NumPy data."""
        self.session.flush(sync_views=(self.view,))
        return self.session.memory.read_view(self.view)

    def item(self) -> float:
        """Return the value of a single-element array as a Python scalar."""
        data = self.to_numpy().reshape(-1)
        if data.size != 1:
            raise FrontendError(f"item() requires a single-element array, got {data.size}")
        return data[0].item()

    def __float__(self) -> float:
        return float(self.item())

    def __int__(self) -> int:
        return int(self.item())

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TypeError("len() of unsized array")
        return self.shape[0]

    def __repr__(self) -> str:
        return f"BhArray(shape={self.shape}, dtype={self.dtype.name})\n{self.to_numpy()!r}"

    def __str__(self) -> str:
        return str(self.to_numpy())


#: Unary op-codes whose results are floating point even for integer inputs.
_FLOAT_RESULT_UNARY = frozenset(
    {
        OpCode.BH_SQRT,
        OpCode.BH_EXP,
        OpCode.BH_LOG,
        OpCode.BH_SIN,
        OpCode.BH_COS,
        OpCode.BH_TAN,
        OpCode.BH_ARCSIN,
        OpCode.BH_ARCCOS,
        OpCode.BH_ARCTAN,
        OpCode.BH_ERF,
        OpCode.BH_RECIPROCAL,
    }
)
