"""Array creation functions for the lazy front-end."""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.bytecode.dtypes import DType, float64, int64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.frontend.array import BhArray
from repro.frontend.session import Session
from repro.utils.errors import FrontendError

ShapeLike = Union[int, Sequence[int]]


def empty(shape: ShapeLike, dtype: DType = float64, session: Optional[Session] = None) -> BhArray:
    """Allocate an array without initialising it (storage is zero-filled lazily)."""
    return BhArray.new(shape, dtype, session)


def full(
    shape: ShapeLike,
    value: Union[int, float, bool],
    dtype: Optional[DType] = None,
    session: Optional[Session] = None,
) -> BhArray:
    """An array filled with ``value`` (records one ``BH_IDENTITY``)."""
    if dtype is None:
        dtype = float64 if isinstance(value, float) else int64 if isinstance(value, int) and not isinstance(value, bool) else float64
    result = BhArray.new(shape, dtype, session)
    result.session.record(
        Instruction(OpCode.BH_IDENTITY, (result.view, Constant(value, dtype)))
    )
    return result


def zeros(shape: ShapeLike, dtype: DType = float64, session: Optional[Session] = None) -> BhArray:
    """An array of zeros — the paper's ``np.zeros(10)`` from Listing 1."""
    result = BhArray.new(shape, dtype, session)
    result.session.record(Instruction(OpCode.BH_IDENTITY, (result.view, Constant(0, dtype))))
    return result


def ones(shape: ShapeLike, dtype: DType = float64, session: Optional[Session] = None) -> BhArray:
    """An array of ones."""
    result = BhArray.new(shape, dtype, session)
    result.session.record(Instruction(OpCode.BH_IDENTITY, (result.view, Constant(1, dtype))))
    return result


def zeros_like(template: BhArray) -> BhArray:
    """An array of zeros with the shape and dtype of ``template``."""
    return zeros(template.shape, template.dtype, template.session)


def ones_like(template: BhArray) -> BhArray:
    """An array of ones with the shape and dtype of ``template``."""
    return ones(template.shape, template.dtype, template.session)


def empty_like(template: BhArray) -> BhArray:
    """An uninitialised array with the shape and dtype of ``template``."""
    return empty(template.shape, template.dtype, template.session)


def arange(
    start: Union[int, float],
    stop: Optional[Union[int, float]] = None,
    step: Union[int, float] = 1,
    dtype: DType = float64,
    session: Optional[Session] = None,
) -> BhArray:
    """Evenly spaced values, recorded as ``BH_RANGE`` plus scale/offset byte-codes."""
    if stop is None:
        start, stop = 0, start
    if step == 0:
        raise FrontendError("arange step must not be zero")
    length = int(np.ceil((stop - start) / step))
    if length <= 0:
        raise FrontendError(f"arange({start}, {stop}, {step}) would be empty")
    result = BhArray.new(length, dtype, session)
    session = result.session
    session.record(Instruction(OpCode.BH_RANGE, (result.view,)))
    if step != 1:
        session.record(
            Instruction(OpCode.BH_MULTIPLY, (result.view, result.view, Constant(step)))
        )
    if start != 0:
        session.record(Instruction(OpCode.BH_ADD, (result.view, result.view, Constant(start))))
    return result


def linspace(
    start: float,
    stop: float,
    num: int = 50,
    dtype: DType = float64,
    session: Optional[Session] = None,
) -> BhArray:
    """``num`` evenly spaced samples over ``[start, stop]`` (endpoint included)."""
    if num < 2:
        raise FrontendError("linspace requires num >= 2")
    step = (stop - start) / (num - 1)
    result = BhArray.new(num, dtype, session)
    session = result.session
    session.record(Instruction(OpCode.BH_RANGE, (result.view,)))
    session.record(Instruction(OpCode.BH_MULTIPLY, (result.view, result.view, Constant(step))))
    if start != 0:
        session.record(Instruction(OpCode.BH_ADD, (result.view, result.view, Constant(start))))
    return result


def array(data, dtype: Optional[DType] = None, session: Optional[Session] = None) -> BhArray:
    """Wrap a Python sequence or NumPy array as a lazy array (data is copied)."""
    np_data = np.asarray(data)
    if dtype is not None:
        np_data = np_data.astype(dtype.np_dtype)
    return BhArray.from_numpy(np_data, session)
