"""Explicit flush control for the lazy front-end."""

from __future__ import annotations

from typing import Optional

from repro.core.pipeline import OptimizationReport
from repro.frontend.session import get_session
from repro.runtime.instrumentation import ExecutionResult


def flush() -> Optional[ExecutionResult]:
    """Execute everything recorded so far in the default session.

    Equivalent to Bohrium's implicit flush at interpreter sync points, but
    callable explicitly — benchmarks use it to control exactly what one
    measured execution contains.
    """
    return get_session().flush()


def last_report() -> Optional[OptimizationReport]:
    """The optimization report of the most recent flush (``None`` if nothing ran).

    When the flush was served from the execution engine's plan cache the
    report is a replayed copy of the cached one (``report.cached`` is true).
    """
    return get_session().last_report


def cache_stats() -> dict:
    """Plan-cache and backend cache counters of the default session's engine."""
    return get_session().cache_stats()
