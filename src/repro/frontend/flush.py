"""Explicit flush control for the lazy front-end."""

from __future__ import annotations

from typing import Optional

from repro.core.pipeline import OptimizationReport
from repro.frontend.session import get_session
from repro.runtime.instrumentation import ExecutionResult


def flush() -> Optional[ExecutionResult]:
    """Execute everything recorded so far in the default session.

    Equivalent to Bohrium's implicit flush at interpreter sync points, but
    callable explicitly — benchmarks use it to control exactly what one
    measured execution contains.
    """
    return get_session().flush()


def last_report() -> Optional[OptimizationReport]:
    """The optimization report of the most recent flush (``None`` if nothing ran)."""
    return get_session().last_report
