"""Basic (NumPy-style) slicing of views for the lazy front-end.

Only *basic indexing* is supported — integers and slices with positive
steps — because that is what maps directly onto the byte-code's
offset/shape/stride views without copying.  Fancy indexing would require a
gather byte-code and is out of scope for the paper's examples.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from repro.bytecode.view import View
from repro.utils.errors import FrontendError

IndexItem = Union[int, slice]
IndexKey = Union[IndexItem, Tuple[IndexItem, ...]]


def _normalise_index(index: int, length: int, axis: int) -> int:
    if index < 0:
        index += length
    if index < 0 or index >= length:
        raise FrontendError(f"index {index} out of bounds for axis {axis} with size {length}")
    return index


def slice_view(view: View, key: IndexKey) -> View:
    """Return the sub-view of ``view`` selected by ``key``.

    Integer indices drop their axis; slices keep the axis with an adjusted
    offset, extent and stride.  The result shares the base array — no data
    is copied, matching the byte-code's "views are windows" semantics.
    """
    if not isinstance(key, tuple):
        key = (key,)
    if len(key) > view.ndim:
        raise FrontendError(
            f"too many indices: array has {view.ndim} dimension(s), got {len(key)}"
        )

    offset = view.offset
    new_shape = []
    new_strides = []
    for axis in range(view.ndim):
        length = view.shape[axis]
        stride = view.strides[axis]
        if axis >= len(key):
            new_shape.append(length)
            new_strides.append(stride)
            continue
        item = key[axis]
        if isinstance(item, int):
            index = _normalise_index(int(item), length, axis)
            offset += index * stride
            continue
        if isinstance(item, slice):
            start, stop, step = item.indices(length)
            if step <= 0:
                raise FrontendError("only positive slice steps are supported")
            extent = max(0, (stop - start + step - 1) // step)
            offset += start * stride
            new_shape.append(extent)
            new_strides.append(stride * step)
            continue
        raise FrontendError(
            f"unsupported index of type {type(item).__name__}; "
            f"only integers and slices are supported"
        )

    if not new_shape:
        # Fully indexed: a zero-dimensional result is represented as a
        # single-element view, which keeps every byte-code operand shaped.
        new_shape = [1]
        new_strides = [1]
    return View(view.base, offset, tuple(new_shape), tuple(new_strides))
