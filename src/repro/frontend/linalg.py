"""Linear-algebra operations for the lazy front-end.

These record the extension byte-codes (``BH_MATMUL``, ``BH_MATRIX_INVERSE``,
``BH_LU_SOLVE``, ``BH_TRANSPOSE``).  Writing the paper's Equation 2 idiom
naturally —

>>> x = linalg.inv(A) @ b

— records an inversion followed by a matrix product, which the optimizer's
:class:`~repro.core.linear_solve.LinearSolveRewritePass` turns into a single
``BH_LU_SOLVE`` when the inverse is not used for anything else.  Calling
:func:`solve` records the ``BH_LU_SOLVE`` directly.
"""

from __future__ import annotations

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.frontend.array import BhArray
from repro.utils.errors import FrontendError


def _require_matrix(value: BhArray, name: str) -> BhArray:
    if not isinstance(value, BhArray):
        raise FrontendError(f"{name} expects a BhArray, got {type(value).__name__}")
    if value.ndim != 2:
        raise FrontendError(f"{name} expects a 2-D array, got shape {value.shape}")
    return value


def _require_square(value: BhArray, name: str) -> BhArray:
    _require_matrix(value, name)
    if value.shape[0] != value.shape[1]:
        raise FrontendError(f"{name} expects a square matrix, got shape {value.shape}")
    return value


def matmul(left: BhArray, right: BhArray) -> BhArray:
    """Matrix-matrix or matrix-vector product (``BH_MATMUL``)."""
    _require_matrix(left, "matmul")
    if not isinstance(right, BhArray):
        raise FrontendError(f"matmul expects a BhArray, got {type(right).__name__}")
    if right.ndim not in (1, 2):
        raise FrontendError(f"matmul right operand must be 1-D or 2-D, got {right.shape}")
    if left.shape[1] != right.shape[0]:
        raise FrontendError(f"matmul inner dimensions disagree: {left.shape} @ {right.shape}")
    if right.ndim == 1:
        out_shape = (left.shape[0],)
    else:
        out_shape = (left.shape[0], right.shape[1])
    result = BhArray.new(out_shape, left.dtype, left.session)
    result.session.record(
        Instruction(OpCode.BH_MATMUL, (result.view, left.view, right.view))
    )
    return result


def dot(left: BhArray, right: BhArray) -> BhArray:
    """Alias of :func:`matmul` for the common NumPy spelling."""
    return matmul(left, right)


def inv(matrix: BhArray) -> BhArray:
    """Explicit matrix inverse (``BH_MATRIX_INVERSE``) — the slow idiom of Eq. 2."""
    _require_square(matrix, "inv")
    result = BhArray.new(matrix.shape, matrix.dtype, matrix.session)
    result.session.record(
        Instruction(OpCode.BH_MATRIX_INVERSE, (result.view, matrix.view))
    )
    return result


def solve(matrix: BhArray, rhs: BhArray) -> BhArray:
    """Solve ``A x = b`` directly via ``BH_LU_SOLVE`` — the fast idiom of Eq. 2."""
    _require_square(matrix, "solve")
    if not isinstance(rhs, BhArray):
        raise FrontendError(f"solve expects a BhArray right-hand side, got {type(rhs).__name__}")
    if rhs.shape[0] != matrix.shape[0]:
        raise FrontendError(
            f"solve right-hand side has {rhs.shape[0]} rows, matrix has {matrix.shape[0]}"
        )
    result = BhArray.new(rhs.shape, matrix.dtype, matrix.session)
    result.session.record(
        Instruction(OpCode.BH_LU_SOLVE, (result.view, matrix.view, rhs.view))
    )
    return result


def transpose(matrix: BhArray) -> BhArray:
    """Matrix transpose (``BH_TRANSPOSE``)."""
    return _require_matrix(matrix, "transpose").T


def lu(matrix: BhArray) -> BhArray:
    """Packed LU factorisation (``BH_LU``); mainly useful for inspection."""
    _require_square(matrix, "lu")
    result = BhArray.new(matrix.shape, matrix.dtype, matrix.session)
    result.session.record(Instruction(OpCode.BH_LU, (result.view, matrix.view)))
    return result
