"""Random number generation for the lazy front-end (``BH_RANDOM``)."""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.bytecode.dtypes import float64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.frontend.array import BhArray
from repro.frontend.session import Session, get_session

ShapeLike = Union[int, Sequence[int]]

_EXPLICIT_SEED: Optional[int] = None


def seed(value: int) -> None:
    """Fix the seed used by subsequent :func:`random` / :func:`rand` calls."""
    global _EXPLICIT_SEED
    _EXPLICIT_SEED = int(value)


def _next_seed(session: Session) -> int:
    global _EXPLICIT_SEED
    if _EXPLICIT_SEED is not None:
        value = _EXPLICIT_SEED
        _EXPLICIT_SEED += 1
        return value
    return session.next_seed()


def random(shape: ShapeLike, session: Optional[Session] = None) -> BhArray:
    """Uniform values in ``[0, 1)`` with the given shape."""
    result = BhArray.new(shape, float64, session)
    session = result.session
    result.session.record(
        Instruction(OpCode.BH_RANDOM, (result.view, Constant(_next_seed(session))))
    )
    return result


def rand(*shape: int, session: Optional[Session] = None) -> BhArray:
    """NumPy-style ``rand(n, m, ...)`` spelling of :func:`random`."""
    if not shape:
        shape = (1,)
    return random(shape, session=session)


def uniform(
    low: float,
    high: float,
    shape: ShapeLike,
    session: Optional[Session] = None,
) -> BhArray:
    """Uniform values in ``[low, high)``."""
    result = random(shape, session=session)
    span = high - low
    if span != 1.0:
        result *= span
    if low != 0.0:
        result += low
    return result
