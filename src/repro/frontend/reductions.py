"""Reductions for the lazy front-end (sum, prod, max, min, mean)."""

from __future__ import annotations

from typing import Optional

from repro.bytecode.dtypes import float64
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant
from repro.frontend.array import BhArray
from repro.utils.errors import FrontendError


def _reduce(opcode: OpCode, value: BhArray, axis: Optional[int]) -> BhArray:
    if not isinstance(value, BhArray):
        raise FrontendError(f"reduction expects a BhArray, got {type(value).__name__}")
    if axis is None:
        # Full reduction: fold axes one at a time until a single element is left.
        result = value
        while result.size > 1:
            result = _reduce_axis(opcode, result, 0)
        return result
    return _reduce_axis(opcode, value, axis)


def _reduce_axis(opcode: OpCode, value: BhArray, axis: int) -> BhArray:
    if axis < 0:
        axis += value.ndim
    if axis < 0 or axis >= value.ndim:
        raise FrontendError(f"axis {axis} out of range for array of rank {value.ndim}")
    out_shape = tuple(dim for index, dim in enumerate(value.shape) if index != axis)
    if out_shape == ():
        out_shape = (1,)
    result = BhArray.new(out_shape, value.dtype, value.session)
    result.session.record(
        Instruction(opcode, (result.view, value.view, Constant(int(axis))))
    )
    return result


def sum(value: BhArray, axis: Optional[int] = None) -> BhArray:  # noqa: A001 - numpy-style name
    """Sum over ``axis`` (or over everything when ``axis`` is ``None``)."""
    return _reduce(OpCode.BH_ADD_REDUCE, value, axis)


def prod(value: BhArray, axis: Optional[int] = None) -> BhArray:
    """Product over ``axis`` (or over everything)."""
    return _reduce(OpCode.BH_MULTIPLY_REDUCE, value, axis)


def amax(value: BhArray, axis: Optional[int] = None) -> BhArray:
    """Maximum over ``axis`` (or over everything)."""
    return _reduce(OpCode.BH_MAXIMUM_REDUCE, value, axis)


def amin(value: BhArray, axis: Optional[int] = None) -> BhArray:
    """Minimum over ``axis`` (or over everything)."""
    return _reduce(OpCode.BH_MINIMUM_REDUCE, value, axis)


def mean(value: BhArray, axis: Optional[int] = None) -> BhArray:
    """Arithmetic mean over ``axis`` (or over everything)."""
    if axis is None:
        count = value.size
    else:
        normalised = axis + value.ndim if axis < 0 else axis
        if normalised < 0 or normalised >= value.ndim:
            raise FrontendError(f"axis {axis} out of range for array of rank {value.ndim}")
        count = value.shape[normalised]
    total = sum(value, axis=axis)
    return total / float(count)
