"""The recording session behind the lazy front-end.

A :class:`Session` owns:

* the byte-code recorded since the last flush (the *pending program*),
* the memory manager holding materialized base arrays across flushes,
* the :class:`~repro.runtime.engine.ExecutionEngine` that fingerprints,
  plans and executes each flush (and caches plans across flushes),
* statistics of every flush (useful for the end-to-end benchmarks).

A module-level default session exists so the front-end can be used like
NumPy without explicitly threading a session object around; tests create
private sessions to stay isolated.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.core.pipeline import OptimizationReport
from repro.runtime.backend import Backend
from repro.runtime.engine import ExecutionEngine
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.memory import MemoryManager
from repro.utils.config import get_config


class Session:
    """Records byte-code lazily and executes it at flush points."""

    def __init__(
        self,
        backend: Optional[object] = None,
        optimize: Optional[bool] = None,
        pipeline=None,
        engine: Optional[ExecutionEngine] = None,
        memory: Optional[MemoryManager] = None,
    ) -> None:
        """
        Parameters
        ----------
        backend:
            Backend instance or registered backend name (``"interpreter"``,
            ``"jit"``, ``"parallel"``, ``"simulator"``, ``"cluster"``);
            defaults to the configuration's ``default_backend``.
            ``Session(backend="parallel")`` executes flushes on the tiled
            multi-threaded backend.
        optimize:
            Whether flushes run the transformation pipeline first; defaults
            to the configuration's ``optimize`` flag.
        pipeline:
            Custom :class:`~repro.core.pipeline.Pipeline`; defaults to the
            canonical pipeline.
        engine:
            An existing (possibly shared) :class:`ExecutionEngine` to flush
            through instead of constructing a private one.  This is how the
            multi-tenant :class:`~repro.service.ArrayService` multiplexes
            many sessions onto one thread-safe plan/kernel cache; when
            given, ``backend``/``optimize``/``pipeline`` must be ``None``
            (they describe an engine this session would otherwise build).
        memory:
            An existing :class:`MemoryManager` holding this session's base
            arrays — the service passes one whose buffer pool is a
            per-tenant view over the shared pool.  Defaults to a private
            manager.
        """
        config = get_config()
        if engine is not None:
            if backend is not None or optimize is not None or pipeline is not None:
                raise ValueError(
                    "pass either a shared engine or backend/optimize/pipeline "
                    "settings for a private one, not both"
                )
            self.engine = engine
        else:
            self.engine = ExecutionEngine(
                backend=backend, optimize=optimize, pipeline=pipeline
            )
        self.memory = memory if memory is not None else MemoryManager()
        self.pending = Program()
        self.flush_count = 0
        self.stats_history: List[ExecutionStats] = []
        self._seed_counter = config.random_seed
        self._base_refcounts: dict = {}
        self._bases_by_id: dict = {}
        self._deferred_frees: list = []

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> Backend:
        """The resolved backend instance (owned by the engine)."""
        return self.engine.backend

    @property
    def optimize_enabled(self) -> bool:
        """Whether flushes run the optimization/planning stage."""
        return self.engine.optimize_enabled

    @optimize_enabled.setter
    def optimize_enabled(self, enabled: bool) -> None:
        self.engine.optimize_enabled = enabled

    @property
    def last_report(self) -> Optional[OptimizationReport]:
        """The optimization report of the most recent flush.

        On plan-cache hits this is a replayed copy of the cached report (its
        ``cached`` flag is set); ``None`` when nothing ran or optimization
        was disabled.
        """
        return self.engine.last_report

    @last_report.setter
    def last_report(self, report: Optional[OptimizationReport]) -> None:
        self.engine.last_report = report

    def record(self, instruction: Instruction) -> None:
        """Append one byte-code to the pending program."""
        self.pending.append(instruction)

    def next_seed(self) -> int:
        """Deterministic per-call seed for ``BH_RANDOM`` byte-codes."""
        self._seed_counter += 1
        return self._seed_counter

    def pending_size(self) -> int:
        """Number of byte-codes recorded since the last flush."""
        return len(self.pending)

    # ------------------------------------------------------------------ #
    # Base-array lifetime tracking (mirrors Bohrium's BH_FREE-on-GC)
    # ------------------------------------------------------------------ #

    def retain_base(self, base) -> None:
        """Note that one more front-end array refers to ``base``."""
        key = id(base)
        self._base_refcounts[key] = self._base_refcounts.get(key, 0) + 1
        self._bases_by_id[key] = base

    def release_base(self, base) -> None:
        """Note that one front-end array referring to ``base`` was collected.

        When the last reference disappears a ``BH_FREE`` byte-code is
        scheduled — exactly what Bohrium does when the owning Python object
        is garbage collected.  The free is *deferred to the end of the next
        flush* rather than recorded immediately: garbage collection can run
        between two recorded byte-codes of one expression, and an eager free
        would then precede (and invalidate) uses recorded a moment later.
        Deferring keeps every free after every recorded use of the base,
        which is what lets the optimizer's liveness analysis prove such
        temporaries dead (and makes the Equation 2 rewrite legal for the
        ``inv(A) @ b`` idiom, where the inverse is an unnamed temporary).
        """
        key = id(base)
        count = self._base_refcounts.get(key)
        if count is None:
            return
        if count > 1:
            self._base_refcounts[key] = count - 1
            return
        del self._base_refcounts[key]
        self._bases_by_id.pop(key, None)
        self._deferred_frees.append(base)

    # ------------------------------------------------------------------ #
    # Flushing
    # ------------------------------------------------------------------ #

    def flush(self, sync_views: Sequence[View] = ()) -> Optional[ExecutionResult]:
        """Optimize and execute the pending byte-code.

        Parameters
        ----------
        sync_views:
            Views whose values the caller is about to observe; a ``BH_SYNC``
            is appended for each so the optimizer knows they are outputs.

        Returns the backend's :class:`ExecutionResult`, or ``None`` when
        there was nothing to execute.
        """
        if len(self.pending) == 0 and not sync_views and not self._deferred_frees:
            return None
        program = self.pending.copy()
        for view in sync_views:
            program.append(Instruction(OpCode.BH_SYNC, (view,)))
        # Garbage-collected temporaries are freed at the end of the batch so
        # the free always follows every recorded use of the base.
        for base in self._deferred_frees:
            program.append(Instruction(OpCode.BH_FREE, (View.full(base),)))
        self._deferred_frees = []
        if len(program) == 0:
            return None
        result = self.engine.execute(program, self.memory)
        self.memory = result.memory
        self.stats_history.append(result.stats)
        self.flush_count += 1
        self.pending = Program()
        return result

    def total_stats(self) -> ExecutionStats:
        """Aggregate statistics across every flush so far."""
        total = ExecutionStats(backend_name=str(self.engine.backend_spec))
        for stats in self.stats_history:
            total.merge(stats)
        return total

    def cache_stats(self) -> Dict[str, int]:
        """Plan-cache and backend cache counters for this session's engine."""
        return self.engine.cache_stats()


_SESSION: Optional[Session] = None


def get_session() -> Session:
    """Return the active default session, creating it on first use."""
    global _SESSION
    if _SESSION is None:
        _SESSION = Session()
    return _SESSION


def set_session(session: Session) -> Session:
    """Install ``session`` as the default session and return it."""
    global _SESSION
    _SESSION = session
    return session


def reset_session(
    backend: Optional[object] = None,
    optimize: Optional[bool] = None,
    pipeline=None,
) -> Session:
    """Discard any recorded state and start a fresh default session."""
    return set_session(Session(backend=backend, optimize=optimize, pipeline=pipeline))
