"""Element-wise functions (NumPy ufunc equivalents) for the lazy front-end."""

from __future__ import annotations

from typing import Union

from repro.bytecode.opcodes import OpCode
from repro.frontend.array import BhArray, OperandLike
from repro.utils.errors import FrontendError


def _require_array(value, name: str) -> BhArray:
    if not isinstance(value, BhArray):
        raise FrontendError(f"{name} expects a BhArray, got {type(value).__name__}")
    return value


def _unary(opcode: OpCode, value: BhArray) -> BhArray:
    return _require_array(value, opcode.value.lower())._unary(opcode)


def _binary(opcode: OpCode, left: OperandLike, right: OperandLike) -> BhArray:
    if isinstance(left, BhArray):
        return left._binary(opcode, right)
    if isinstance(right, BhArray):
        return right._binary(opcode, left, reflected=True)
    raise FrontendError("at least one operand must be a BhArray")


# Unary element-wise functions ------------------------------------------- #


def sqrt(value: BhArray) -> BhArray:
    """Element-wise square root (``BH_SQRT``)."""
    return _unary(OpCode.BH_SQRT, value)


def exp(value: BhArray) -> BhArray:
    """Element-wise exponential (``BH_EXP``)."""
    return _unary(OpCode.BH_EXP, value)


def log(value: BhArray) -> BhArray:
    """Element-wise natural logarithm (``BH_LOG``)."""
    return _unary(OpCode.BH_LOG, value)


def sin(value: BhArray) -> BhArray:
    """Element-wise sine (``BH_SIN``)."""
    return _unary(OpCode.BH_SIN, value)


def cos(value: BhArray) -> BhArray:
    """Element-wise cosine (``BH_COS``)."""
    return _unary(OpCode.BH_COS, value)


def tan(value: BhArray) -> BhArray:
    """Element-wise tangent (``BH_TAN``)."""
    return _unary(OpCode.BH_TAN, value)


def arcsin(value: BhArray) -> BhArray:
    """Element-wise inverse sine (``BH_ARCSIN``)."""
    return _unary(OpCode.BH_ARCSIN, value)


def arccos(value: BhArray) -> BhArray:
    """Element-wise inverse cosine (``BH_ARCCOS``)."""
    return _unary(OpCode.BH_ARCCOS, value)


def arctan(value: BhArray) -> BhArray:
    """Element-wise inverse tangent (``BH_ARCTAN``)."""
    return _unary(OpCode.BH_ARCTAN, value)


def erf(value: BhArray) -> BhArray:
    """Element-wise error function (``BH_ERF``), used by Black-Scholes."""
    return _unary(OpCode.BH_ERF, value)


def absolute(value: BhArray) -> BhArray:
    """Element-wise absolute value (``BH_ABSOLUTE``)."""
    return _unary(OpCode.BH_ABSOLUTE, value)


def negative(value: BhArray) -> BhArray:
    """Element-wise negation (``BH_NEGATIVE``)."""
    return _unary(OpCode.BH_NEGATIVE, value)


# Binary element-wise functions ------------------------------------------ #


def add(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise addition (``BH_ADD``)."""
    return _binary(OpCode.BH_ADD, left, right)


def subtract(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise subtraction (``BH_SUBTRACT``)."""
    return _binary(OpCode.BH_SUBTRACT, left, right)


def multiply(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise multiplication (``BH_MULTIPLY``)."""
    return _binary(OpCode.BH_MULTIPLY, left, right)


def divide(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise division (``BH_DIVIDE``)."""
    return _binary(OpCode.BH_DIVIDE, left, right)


def power(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise power (``BH_POWER``) — the target of Equation 1's rewrite."""
    return _binary(OpCode.BH_POWER, left, right)


def maximum(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise maximum (``BH_MAXIMUM``)."""
    return _binary(OpCode.BH_MAXIMUM, left, right)


def minimum(left: OperandLike, right: OperandLike) -> BhArray:
    """Element-wise minimum (``BH_MINIMUM``)."""
    return _binary(OpCode.BH_MINIMUM, left, right)
