"""Dense linear-algebra substrate implemented from scratch.

The paper's context-aware transformation (Equation 2) rewrites
``x = inv(A) @ b`` into an LU-factorisation-based solve.  To evaluate that
rewrite we need both code paths under our control, so this package
implements the classical algorithms directly on NumPy element operations —
no ``numpy.linalg`` calls in the hot paths:

* :func:`lu_factor` / :func:`lu_unpack` — Doolittle LU with partial
  pivoting, packed-storage output (``~2/3 n^3`` flops).
* :func:`forward_substitution` / :func:`back_substitution` — triangular
  solves (``n^2`` flops each).
* :func:`lu_solve` / :func:`solve` — solve ``Ax = b`` via LU.
* :func:`inverse` — Gauss-Jordan elimination on the augmented system
  (``~2 n^3`` flops), i.e. roughly three times the work of an LU solve,
  which is exactly the gap the paper's rewrite exploits.
* :func:`determinant`, :func:`matmul` — supporting utilities.
"""

from repro.linalg.lu import lu_factor, lu_unpack, lu_reconstruct
from repro.linalg.triangular import forward_substitution, back_substitution
from repro.linalg.solve import lu_solve, solve
from repro.linalg.inverse import inverse, solve_via_inverse
from repro.linalg.util import matmul, determinant, is_singular, random_well_conditioned

__all__ = [
    "lu_factor",
    "lu_unpack",
    "lu_reconstruct",
    "forward_substitution",
    "back_substitution",
    "lu_solve",
    "solve",
    "inverse",
    "solve_via_inverse",
    "matmul",
    "determinant",
    "is_singular",
    "random_well_conditioned",
]
