"""Explicit matrix inversion — the slow path of Equation 2."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ExecutionError


def inverse(matrix: np.ndarray, pivot_threshold: float = 1e-12) -> np.ndarray:
    """Invert a square matrix by Gauss-Jordan elimination with partial pivoting.

    This costs roughly ``2 n^3`` flops — about three times the work of an LU
    solve for a single right-hand side — and is implemented here precisely
    so the benchmark for the paper's Equation 2 rewrite compares two code
    paths we own rather than a Python loop against a LAPACK call.
    """
    a = np.array(matrix, dtype=np.float64, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ExecutionError(f"inverse expects a square matrix, got shape {a.shape}")
    n = a.shape[0]
    augmented = np.hstack([a, np.eye(n)])
    for k in range(n):
        pivot_row = k + int(np.argmax(np.abs(augmented[k:, k])))
        if abs(augmented[pivot_row, k]) < pivot_threshold:
            raise ExecutionError(f"matrix is singular at elimination step {k}")
        if pivot_row != k:
            augmented[[k, pivot_row], :] = augmented[[pivot_row, k], :]
        augmented[k, :] /= augmented[k, k]
        # Eliminate column k from every other row with a rank-1 update.
        column = augmented[:, k].copy()
        column[k] = 0.0
        augmented -= np.outer(column, augmented[k, :])
    return augmented[:, n:]


def solve_via_inverse(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` the naive way: form ``inv(A)`` and multiply.

    This is the *left-hand side* of the paper's Equation 2 — the idiom the
    transformation detects and replaces with an LU-based solve.
    """
    return inverse(matrix) @ np.asarray(rhs, dtype=np.float64)
