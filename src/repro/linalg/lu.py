"""LU factorisation with partial pivoting (Doolittle, packed storage)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.errors import ExecutionError


def lu_factor(matrix: np.ndarray, pivot_threshold: float = 1e-12) -> Tuple[np.ndarray, np.ndarray]:
    """Factor ``matrix`` as ``P A = L U`` using partial pivoting.

    Parameters
    ----------
    matrix:
        A square 2-D array.  The input is copied, not modified.
    pivot_threshold:
        Absolute pivot magnitude below which the matrix is declared singular.

    Returns
    -------
    (packed, pivots):
        ``packed`` stores ``U`` on and above the diagonal and the strictly
        lower part of ``L`` below it (``L`` has an implicit unit diagonal).
        ``pivots`` is an integer array where ``pivots[k]`` is the row swapped
        with row ``k`` at step ``k`` (LAPACK ``getrf`` convention).

    Notes
    -----
    The elimination update for each column is expressed as a rank-1 update
    on the trailing sub-matrix, so the inner loops are NumPy vector
    operations — the same granularity at which the byte-code backend would
    execute them.
    """
    a = np.array(matrix, dtype=np.float64, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ExecutionError(f"lu_factor expects a square matrix, got shape {a.shape}")
    n = a.shape[0]
    pivots = np.arange(n, dtype=np.int64)
    for k in range(n):
        # Partial pivoting: bring the largest remaining entry of column k up.
        pivot_row = k + int(np.argmax(np.abs(a[k:, k])))
        if abs(a[pivot_row, k]) < pivot_threshold:
            raise ExecutionError(f"matrix is singular at elimination step {k}")
        pivots[k] = pivot_row
        if pivot_row != k:
            a[[k, pivot_row], :] = a[[pivot_row, k], :]
        # Multipliers for column k.
        a[k + 1:, k] /= a[k, k]
        # Rank-1 update of the trailing sub-matrix.
        if k + 1 < n:
            a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a, pivots


def lu_unpack(packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split packed LU storage into explicit ``L`` (unit diagonal) and ``U``."""
    n = packed.shape[0]
    lower = np.tril(packed, k=-1) + np.eye(n)
    upper = np.triu(packed)
    return lower, upper


def permutation_from_pivots(pivots: np.ndarray) -> np.ndarray:
    """Build the explicit permutation matrix ``P`` such that ``P A = L U``."""
    n = pivots.shape[0]
    perm = np.eye(n)
    for k, pivot_row in enumerate(pivots):
        if pivot_row != k:
            perm[[k, pivot_row], :] = perm[[pivot_row, k], :]
    return perm


def apply_pivots(vector_or_matrix: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Apply the row swaps recorded in ``pivots`` to a right-hand side."""
    result = np.array(vector_or_matrix, dtype=np.float64, copy=True)
    for k, pivot_row in enumerate(pivots):
        if pivot_row != k:
            result[[k, pivot_row]] = result[[pivot_row, k]]
    return result


def lu_reconstruct(packed: np.ndarray, pivots: np.ndarray) -> np.ndarray:
    """Rebuild the original matrix ``A`` from its packed factorisation.

    Mainly used by tests: ``lu_reconstruct(*lu_factor(A))`` should equal
    ``A`` up to round-off.
    """
    lower, upper = lu_unpack(packed)
    permuted = lower @ upper
    # P A = L U  =>  A = P^T (L U); undo the row swaps in reverse order.
    result = permuted
    for k in range(len(pivots) - 1, -1, -1):
        pivot_row = pivots[k]
        if pivot_row != k:
            result[[k, pivot_row], :] = result[[pivot_row, k], :]
    return result
