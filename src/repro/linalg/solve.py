"""Linear solves via LU factorisation — the fast path of Equation 2."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.linalg.lu import apply_pivots, lu_factor, lu_unpack


def lu_solve(factorisation: Tuple[np.ndarray, np.ndarray], rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` given the packed factorisation of ``A``.

    Parameters
    ----------
    factorisation:
        The ``(packed, pivots)`` pair returned by
        :func:`repro.linalg.lu.lu_factor`.
    rhs:
        Right-hand side vector ``(n,)`` or matrix ``(n, k)``.
    """
    packed, pivots = factorisation
    lower, upper = lu_unpack(packed)
    permuted = apply_pivots(rhs, pivots)
    intermediate = _forward(lower, permuted)
    return _backward(upper, intermediate)


def _forward(lower: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    from repro.linalg.triangular import forward_substitution

    return forward_substitution(lower, rhs, unit_diagonal=False)


def _backward(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    from repro.linalg.triangular import back_substitution

    return back_substitution(upper, rhs)


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``A x = b`` by LU factorisation with partial pivoting.

    This is the target of the paper's context-aware rewrite: about
    ``2/3 n^3`` flops for the factorisation plus two ``n^2`` triangular
    solves, versus ``~2 n^3`` for explicit inversion followed by a
    matrix-vector product.
    """
    factorisation = lu_factor(np.asarray(matrix, dtype=np.float64))
    return lu_solve(factorisation, np.asarray(rhs, dtype=np.float64))
