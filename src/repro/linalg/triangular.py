"""Triangular solves used by the LU-based linear solver."""

from __future__ import annotations

import numpy as np

from repro.utils.errors import ExecutionError


def forward_substitution(
    lower: np.ndarray, rhs: np.ndarray, unit_diagonal: bool = False
) -> np.ndarray:
    """Solve ``L y = b`` for lower-triangular ``L``.

    Parameters
    ----------
    lower:
        Lower-triangular square matrix.
    rhs:
        Right-hand side vector (n,) or matrix (n, k).
    unit_diagonal:
        When true the diagonal of ``L`` is taken to be all ones and is not
        read (packed-LU convention).
    """
    n = lower.shape[0]
    if lower.shape != (n, n):
        raise ExecutionError(f"expected a square matrix, got shape {lower.shape}")
    b = np.array(rhs, dtype=np.float64, copy=True)
    if b.shape[0] != n:
        raise ExecutionError(f"rhs has {b.shape[0]} rows, matrix has {n}")
    for i in range(n):
        if i > 0:
            b[i] -= lower[i, :i] @ b[:i]
        if not unit_diagonal:
            diag = lower[i, i]
            if diag == 0.0:
                raise ExecutionError(f"zero diagonal at row {i} in forward substitution")
            b[i] /= diag
    return b


def back_substitution(upper: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``U x = y`` for upper-triangular ``U``."""
    n = upper.shape[0]
    if upper.shape != (n, n):
        raise ExecutionError(f"expected a square matrix, got shape {upper.shape}")
    b = np.array(rhs, dtype=np.float64, copy=True)
    if b.shape[0] != n:
        raise ExecutionError(f"rhs has {b.shape[0]} rows, matrix has {n}")
    for i in range(n - 1, -1, -1):
        if i + 1 < n:
            b[i] -= upper[i, i + 1:] @ b[i + 1:]
        diag = upper[i, i]
        if diag == 0.0:
            raise ExecutionError(f"zero diagonal at row {i} in back substitution")
        b[i] /= diag
    return b
