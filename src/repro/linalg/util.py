"""Supporting linear-algebra utilities."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.linalg.lu import lu_factor
from repro.utils.errors import ExecutionError


def matmul(left: np.ndarray, right: np.ndarray) -> np.ndarray:
    """Matrix (or matrix-vector) product.

    Thin wrapper over ``numpy.matmul`` kept as a named substrate entry point
    so both the naive and the rewritten linear-solve paths multiply with the
    same primitive.
    """
    return np.matmul(np.asarray(left, dtype=np.float64), np.asarray(right, dtype=np.float64))


def determinant(matrix: np.ndarray) -> float:
    """Determinant computed from the LU factorisation."""
    packed, pivots = lu_factor(matrix)
    n = packed.shape[0]
    sign = 1.0
    for k in range(n):
        if pivots[k] != k:
            sign = -sign
    return float(sign * np.prod(np.diag(packed)))


def is_singular(matrix: np.ndarray, threshold: float = 1e-12) -> bool:
    """True when LU factorisation fails due to a vanishing pivot."""
    try:
        lu_factor(matrix, pivot_threshold=threshold)
    except ExecutionError:
        return True
    return False


def random_well_conditioned(
    n: int, seed: int = 0, diagonal_boost: Optional[float] = None
) -> np.ndarray:
    """Generate a random, diagonally dominant (hence well-conditioned) matrix.

    Used by tests and by the linear-solve benchmark (E5) to produce systems
    that neither inversion nor LU factorisation struggles with, so the
    measured gap reflects algorithmic cost rather than conditioning.
    """
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((n, n))
    boost = diagonal_boost if diagonal_boost is not None else float(n)
    matrix += np.eye(n) * boost
    return matrix
