"""Execution backends for byte-code programs.

Bohrium dispatches its byte-code to *vector engines* (OpenMP, OpenCL, CUDA).
We provide three Python equivalents:

* :class:`NumPyInterpreter` — the reference backend: executes one byte-code
  at a time on NumPy storage.  Used for correctness and for wall-clock
  benchmarks where "one byte-code = one full-array traversal" holds, exactly
  the cost structure the paper's transformations attack.
* :class:`FusingJIT` — clusters consecutive element-wise byte-codes into
  kernels before executing them, mimicking Bohrium's JIT fuser.
* :class:`SimulatedAccelerator` — executes via the interpreter for
  correctness but additionally *prices* the program with an explicit device
  cost model (kernel-launch latency, per-element cost, memory bandwidth),
  standing in for the GPU the paper targets.

All backends return an :class:`ExecutionResult` carrying the output arrays
and an :class:`ExecutionStats` record (kernel launches, elements traversed,
bytes moved, wall-clock and simulated time).
"""

from repro.runtime.memory import MemoryManager
from repro.runtime.instrumentation import ExecutionStats, ExecutionResult
from repro.runtime.backend import Backend, get_backend, register_backend, available_backends
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.kernel import Kernel, partition_into_kernels
from repro.runtime.jit import FusingJIT
from repro.runtime.simulator import SimulatedAccelerator, DeviceProfile, DEVICE_PROFILES
from repro.runtime.scheduler import split_into_batches

__all__ = [
    "MemoryManager",
    "ExecutionStats",
    "ExecutionResult",
    "Backend",
    "get_backend",
    "register_backend",
    "available_backends",
    "NumPyInterpreter",
    "Kernel",
    "partition_into_kernels",
    "FusingJIT",
    "SimulatedAccelerator",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "split_into_batches",
]
