"""Execution backends for byte-code programs.

Bohrium dispatches its byte-code to *vector engines* (OpenMP, OpenCL, CUDA).
We provide three Python equivalents:

* :class:`NumPyInterpreter` — the reference backend: executes one byte-code
  at a time on NumPy storage.  Used for correctness and for wall-clock
  benchmarks where "one byte-code = one full-array traversal" holds, exactly
  the cost structure the paper's transformations attack.
* :class:`FusingJIT` — clusters consecutive element-wise byte-codes into
  kernels before executing them, mimicking Bohrium's JIT fuser.
* :class:`ParallelBackend` — splits fused kernels and reductions into
  cache-sized contiguous tiles (decomposed once at plan time, cached with
  the execution plan) and executes independent tiles across a persistent
  thread pool, with tree-combined reduction partials and serial fallback
  for non-splittable byte-codes.
* :class:`SimulatedAccelerator` — executes via the interpreter for
  correctness but additionally *prices* the program with an explicit device
  cost model (kernel-launch latency, per-element cost, memory bandwidth),
  standing in for the GPU the paper targets.

Backends are selected through a registry (:func:`register_backend` /
:func:`get_backend`); the :class:`ExecutionEngine` sits on top of the
registry and adds the fingerprint → plan-cache → execute staging that lets
repeated flushes skip the optimizer and kernel partitioning entirely.

All backends return an :class:`ExecutionResult` carrying the output arrays
and an :class:`ExecutionStats` record (kernel launches, elements traversed,
bytes moved, wall-clock and simulated time, plan/kernel cache outcomes).
"""

from repro.runtime.memory import BufferDirective, BufferPool, MemoryManager
from repro.runtime.instrumentation import ExecutionStats, ExecutionResult
from repro.runtime.backend import Backend, get_backend, register_backend, available_backends
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.kernel import (
    Kernel,
    KernelTemplate,
    compile_kernel_template,
    kernel_slot_views,
    kernel_structural_key,
    partition_into_kernels,
)
from repro.runtime.jit import FusingJIT
from repro.runtime.parallel import ParallelBackend
from repro.runtime.simulator import SimulatedAccelerator, DeviceProfile, DEVICE_PROFILES
from repro.runtime.tiling import (
    SerialStep,
    TileDecomposition,
    TiledMapStep,
    TiledReduceStep,
    TileSpan,
    decompose,
    resolve_num_threads,
    slice_view,
)
from repro.runtime.plan import (
    ExecutionPlan,
    PlanCache,
    canonical_program_key,
    config_signature,
    merge_batches,
    program_base_order,
    program_fingerprint,
    split_into_batches,
)
from repro.runtime.memplan import MemoryPlan, attach_memory_plan, bind_memory_plan
from repro.runtime.engine import ExecutionEngine

__all__ = [
    "MemoryManager",
    "BufferPool",
    "BufferDirective",
    "MemoryPlan",
    "attach_memory_plan",
    "bind_memory_plan",
    "ExecutionStats",
    "ExecutionResult",
    "Backend",
    "get_backend",
    "register_backend",
    "available_backends",
    "NumPyInterpreter",
    "Kernel",
    "KernelTemplate",
    "compile_kernel_template",
    "kernel_slot_views",
    "kernel_structural_key",
    "partition_into_kernels",
    "FusingJIT",
    "ParallelBackend",
    "SerialStep",
    "TileDecomposition",
    "TiledMapStep",
    "TiledReduceStep",
    "TileSpan",
    "decompose",
    "resolve_num_threads",
    "slice_view",
    "SimulatedAccelerator",
    "DeviceProfile",
    "DEVICE_PROFILES",
    "ExecutionPlan",
    "PlanCache",
    "ExecutionEngine",
    "canonical_program_key",
    "config_signature",
    "program_base_order",
    "program_fingerprint",
    "split_into_batches",
    "merge_batches",
]
