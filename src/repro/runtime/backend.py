"""Backend interface and registry.

A backend turns a byte-code :class:`~repro.bytecode.program.Program` into
results.  Backends are registered by name so configuration and the lazy
front-end can select them with a string (``"interpreter"``, ``"jit"``,
``"parallel"``, ``"native"``, ``"simulator"``, ``"cluster"``, ``"dist"``).
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional

from repro.bytecode.program import Program
from repro.runtime.instrumentation import ExecutionResult
from repro.runtime.memory import MemoryManager
from repro.utils.errors import ExecutionError


class Backend(abc.ABC):
    """Abstract execution backend."""

    #: Human-readable backend name, set by subclasses.
    name: str = "abstract"

    @abc.abstractmethod
    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        """Execute ``program`` and return the resulting memory and statistics.

        Parameters
        ----------
        program:
            The byte-code program to run.
        memory:
            Optional pre-populated memory manager (input data).  When
            omitted a fresh, zero-initialised manager is created.
        """

    def run(self, program: Program, memory: Optional[MemoryManager] = None) -> ExecutionResult:
        """Alias of :meth:`execute` kept for readability at call sites."""
        return self.execute(program, memory)

    def prepare_plan(self, plan) -> None:
        """Hook: attach backend-specific artifacts to a freshly compiled plan.

        The execution engine calls this once per plan-cache miss (and per
        :meth:`~repro.runtime.engine.ExecutionEngine.prime`), inside the
        plan stage.  The base implementation attaches the liveness-driven
        :class:`~repro.runtime.memplan.MemoryPlan` — slot aliasing and
        zero-fill waivers are backend-independent, so every backend gets
        them for free.  Backends that precompute further per-program
        artifacts (the parallel backend's tile decomposition) override
        this, call ``super().prepare_plan(plan)`` and store their own
        artifacts alongside, so replays of the plan never recompute
        either.

        Under the ``check_ir`` knob the freshly attached artifacts are
        cross-checked (:mod:`repro.checks.plancheck`) before the plan can
        be cached; overriding backends re-invoke the check after attaching
        their own artifacts.
        """
        from repro.checks.plancheck import maybe_check_plan
        from repro.runtime.memplan import attach_memory_plan

        attach_memory_plan(plan)
        maybe_check_plan(plan)

    def execute_plan(
        self, plan, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        """Execute a program that was bound from ``plan``.

        ``program`` is the plan's optimized program rebound onto the
        current flush's base arrays; ``plan`` carries whatever
        :meth:`prepare_plan` attached.  The default installs the plan's
        memory directives (slot aliasing, zero-fill waivers) on the
        memory manager and delegates to :meth:`execute`; it covers every
        backend whose execution itself is plan-agnostic (interpreter,
        fusing JIT, cluster, simulator).

        The ``check_ir``-gated plan check runs here too — per execution,
        not just per compilation — so a plan corrupted *after* caching can
        never execute.
        """
        from repro.checks.plancheck import maybe_check_plan
        from repro.runtime.memplan import attach_memory_plan, bind_memory_plan

        attach_memory_plan(plan)
        maybe_check_plan(plan)
        memory = memory if memory is not None else MemoryManager()
        bind_memory_plan(plan, program, memory)
        return self.execute(program, memory)

    def cache_stats(self) -> Dict[str, int]:
        """Counters of any backend-local caches (compiled kernels, plans).

        The default backend has no caches; backends that do (the fusing JIT's
        compiled-kernel cache, the cluster executor's pricing plans) override
        this so the execution engine and the CLI can report them.
        """
        return {}


_BACKEND_FACTORIES: Dict[str, Callable[[], Backend]] = {}
_DEFAULTS_REGISTERED = False


def register_backend(name: str, factory: Callable[[], Backend]) -> None:
    """Register a backend factory under ``name`` (overwrites silently)."""
    _BACKEND_FACTORIES[name] = factory


def available_backends() -> tuple:
    """Names of every registered backend."""
    _ensure_default_backends()
    return tuple(sorted(_BACKEND_FACTORIES))


def get_backend(name_or_backend) -> Backend:
    """Resolve a backend instance from a name or pass an instance through."""
    if isinstance(name_or_backend, Backend):
        return name_or_backend
    if isinstance(name_or_backend, str):
        _ensure_default_backends()
        try:
            factory = _BACKEND_FACTORIES[name_or_backend]
        except KeyError:
            raise ExecutionError(
                f"unknown backend {name_or_backend!r}; available: {available_backends()}"
            ) from None
        return factory()
    raise TypeError(f"expected backend name or Backend, got {type(name_or_backend)!r}")


def _ensure_default_backends() -> None:
    """Lazily register the built-in backends (avoids import cycles).

    Guarded by a dedicated flag, not registry truthiness: a user backend
    registered before the first lookup must not suppress the built-ins.
    """
    global _DEFAULTS_REGISTERED
    if _DEFAULTS_REGISTERED:
        return
    _DEFAULTS_REGISTERED = True
    from repro.cluster.executor import ClusterExecutor
    from repro.dist.backend import DistributedBackend
    from repro.runtime.interpreter import NumPyInterpreter
    from repro.runtime.jit import FusingJIT
    from repro.runtime.native import NativeBackend
    from repro.runtime.parallel import ParallelBackend
    from repro.runtime.simulator import SimulatedAccelerator

    defaults = (
        ("interpreter", NumPyInterpreter),
        ("jit", FusingJIT),
        ("parallel", ParallelBackend),
        ("native", NativeBackend),
        ("simulator", SimulatedAccelerator),
        ("cluster", ClusterExecutor),
        ("dist", DistributedBackend),
    )
    for name, factory in defaults:
        # setdefault: a user factory registered under a built-in name
        # before the first lookup keeps precedence.
        _BACKEND_FACTORIES.setdefault(name, factory)
