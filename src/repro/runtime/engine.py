"""The execution engine: the staged flush → plan → backend pipeline.

Before this layer existed every flush ran the ad-hoc sequence "optimize the
pending program, then hand it to whatever backend the session resolved" —
re-paying the full fixed-point optimizer and kernel partitioning cost even
when the program was structurally identical to the previous flush.  The
:class:`ExecutionEngine` turns that sequence into three explicit stages:

1. **Fingerprint** — compute the canonical structural key of the program
   (:func:`~repro.runtime.plan.canonical_program_key`), tolerant of
   base-array identity so iterative workloads that allocate fresh
   temporaries every round still match.
2. **Plan** — look the fingerprint up in an LRU
   :class:`~repro.runtime.plan.PlanCache` (keyed additionally by backend
   name, pipeline signature and the optimization-relevant configuration).
   A hit rebinds the cached optimized program onto the new program's bases
   in one linear pass; a miss runs the optimization pipeline and caches the
   resulting :class:`~repro.runtime.plan.ExecutionPlan`.
3. **Execute** — dispatch the bound program through the backend registry
   (:func:`~repro.runtime.backend.get_backend`).  The engine resolves the
   backend once and keeps the instance, so backend-local caches (the fusing
   JIT's kernel cache) persist across flushes.

Every result's :class:`~repro.runtime.instrumentation.ExecutionStats`
carries the plan-cache hit/miss outcome and the middleware overhead
(``plan_time_seconds``) of the flush, so benchmarks can prove the reuse.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional

from repro.bytecode.program import Program
from repro.runtime.backend import Backend, get_backend
from repro.runtime.instrumentation import ExecutionResult
from repro.runtime.memory import MemoryManager
from repro.runtime.plan import (
    ExecutionPlan,
    PlanCache,
    canonical_program_key,
    config_signature,
    fingerprint_of_key,
)
from repro.utils.config import get_config


def _fusion_schedule_of(report):
    """The fusion schedule the pipeline's fusion pass recorded, if any."""
    from repro.core.schedule import fusion_schedule_of

    return fusion_schedule_of(report)


class ExecutionEngine:
    """Fingerprints, plans and executes byte-code programs.

    Parameters
    ----------
    backend:
        Backend instance or registered backend name; defaults to the
        configuration's ``default_backend``.
    optimize:
        Whether programs run through the transformation pipeline before
        execution; defaults to the configuration's ``optimize`` flag.
    pipeline:
        Custom :class:`~repro.core.pipeline.Pipeline`; defaults to the
        canonical pipeline (rebuilt lazily so configuration changes are
        honoured).
    plan_cache_size:
        Capacity of the LRU plan cache; defaults to the configuration's
        ``plan_cache_size``.
    """

    def __init__(
        self,
        backend: Optional[object] = None,
        optimize: Optional[bool] = None,
        pipeline=None,
        plan_cache_size: Optional[int] = None,
    ) -> None:
        config = get_config()
        self._backend_spec = backend if backend is not None else config.default_backend
        self._backend_instance: Optional[Backend] = None
        self.optimize_enabled = optimize if optimize is not None else config.optimize
        self._pipeline = pipeline
        self.plan_cache = PlanCache(plan_cache_size)
        #: Per-cache-key build latches: when several sessions first-flush
        #: the same fingerprint concurrently, exactly one runs the
        #: optimizer; the rest wait on its latch and replay the published
        #: plan.  Without this, concurrent first-flushes double-optimize
        #: and double-insert, skewing eviction order and the counters.
        self._inflight: Dict[tuple, threading.Event] = {}
        self._inflight_lock = threading.Lock()
        self._backend_lock = threading.Lock()
        #: Cross-session dedup counters: plans actually compiled by this
        #: engine, and flushes that waited behind a concurrent compile.
        self.plans_built = 0
        self.plan_waits = 0
        # Observability of the most recent flush; under concurrent
        # sessions these reflect *some* recent flush (reads are atomic
        # object reads, never torn), which is all reporting needs.
        self.last_report = None
        self.last_plan: Optional[ExecutionPlan] = None

    # ------------------------------------------------------------------ #
    # Backend resolution
    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> Backend:
        """The resolved backend instance (resolved once, then kept).

        Keeping the instance is load-bearing: backend-local caches such as
        the fusing JIT's compiled-kernel cache only amortize anything if the
        same backend object serves every flush.  Resolution is
        double-checked under a lock so concurrent first flushes share one
        instance instead of racing two into existence (and leaking one
        backend's worker pool).
        """
        instance = self._backend_instance
        if instance is None:
            with self._backend_lock:
                if self._backend_instance is None:
                    self._backend_instance = get_backend(self._backend_spec)
                instance = self._backend_instance
        return instance

    @property
    def backend_spec(self):
        """The backend name or instance the engine was configured with."""
        return self._backend_spec

    def set_backend(self, backend) -> None:
        """Switch the engine to a different backend (plans are keyed per backend).

        The previous instance's resources (the parallel backend's worker
        pool) are released eagerly instead of waiting for garbage
        collection; ``close()`` is recoverable, so a still-shared instance
        simply rebuilds its pool on next use.
        """
        previous = self._backend_instance
        self._backend_spec = backend
        self._backend_instance = None
        if previous is not None and previous is not backend:
            closer = getattr(previous, "close", None)
            if callable(closer):
                closer()

    # ------------------------------------------------------------------ #
    # The staged pipeline
    # ------------------------------------------------------------------ #

    def _pipeline_signature(self) -> tuple:
        if self._pipeline is None:
            return ("default",)
        return self._pipeline.signature()

    def _build_pipeline(self):
        if self._pipeline is not None:
            return self._pipeline
        from repro.core.pipeline import default_pipeline

        return default_pipeline()

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        """Run ``program`` through fingerprint → plan cache → backend.

        Returns the backend's :class:`ExecutionResult` with the plan-stage
        statistics (cache outcome, middleware overhead) filled in.
        """
        backend = self.backend
        plan_started = time.perf_counter()
        hit = False
        miss = False
        plan = None
        uncached_report = None
        if not self.optimize_enabled:
            self.last_report = None
            self.last_plan = None
            executable = program
        elif not get_config().plan_cache_enabled:
            report = self._build_pipeline().run(program)
            self.last_report = report
            self.last_plan = None
            executable = report.optimized
            uncached_report = report
        else:
            executable, plan, hit, miss = self._plan(program, backend)
        plan_seconds = time.perf_counter() - plan_started

        # Plan checks already charged to this plan belong to earlier
        # flushes; the delta after execution is what this flush paid.  (A
        # concurrent flush replaying the same shared plan may skew the
        # delta by its own checks — per-flush stats are observability, the
        # authoritative totals live in ``cache_stats()``.)
        plan_checks_before = plan.plan_checks_run if plan is not None and not miss else 0

        pool_before = memory.pool_counters() if memory is not None else None
        if memory is not None:
            memory.reset_peak_window()
        if plan is not None:
            result = backend.execute_plan(plan, executable, memory)
        else:
            if memory is not None:
                # Directives from a previous plan-bound flush must not leak
                # into a plan-less execution: a dead base's id can be
                # reused by a fresh base this program allocates.
                memory.apply_plan(None)
            result = backend.execute(executable, memory)
        stats = result.stats
        stats.plan_time_seconds = plan_seconds
        stats.plan_cache_hits += 1 if hit else 0
        stats.plan_cache_misses += 1 if miss else 0
        if miss and plan is not None and plan.report is not None:
            stats.ir_checks_run += plan.report.ir_checks_run
        elif uncached_report is not None:
            stats.ir_checks_run += uncached_report.ir_checks_run
        if plan is not None:
            stats.plan_checks_run += max(0, plan.plan_checks_run - plan_checks_before)
        self._capture_memory_stats(stats, result.memory, pool_before, plan)
        return result

    @staticmethod
    def _capture_memory_stats(stats, memory: MemoryManager, pool_before, plan) -> None:
        """Fill in the buffer-pool and peak-footprint counters for one flush.

        Pool counters are cumulative on the (session-lived) memory manager,
        so the per-flush numbers are deltas against the pre-flush snapshot;
        a backend-created fresh manager starts at zero and needs none.
        """
        after = memory.pool_counters()
        before = pool_before if pool_before is not None else {}
        stats.pool_hits += after["pool_hits"] - before.get("pool_hits", 0)
        stats.pool_misses += after["pool_misses"] - before.get("pool_misses", 0)
        stats.pool_bytes_reused += after["pool_bytes_reused"] - before.get(
            "pool_bytes_reused", 0
        )
        stats.actual_peak_bytes = memory.window_peak_bytes
        memory_plan = getattr(plan, "memory_plan", None) if plan is not None else None
        if memory_plan is not None:
            stats.planned_peak_bytes = memory_plan.planned_peak_bytes

    def _plan(self, program: Program, backend: Backend):
        """Stage 2: resolve an execution plan for ``program``.

        Returns ``(executable program, plan, hit, miss)``.  Lookup-or-build
        is guarded by a per-cache-key in-flight latch: the first flush of a
        fingerprint claims the builder role, every concurrent flush of the
        same key waits on its latch and then replays the published plan (a
        cross-session hit).  If the builder fails, waiters wake, find no
        plan, and compete to build it themselves — the latch can therefore
        never deadlock a fingerprint on one failed compile.
        """
        key, bases = canonical_program_key(program)
        fingerprint = fingerprint_of_key(key)
        cache_key = (
            fingerprint,
            backend.name,
            self._pipeline_signature(),
            config_signature(),
        )
        while True:
            plan = self.plan_cache.get(cache_key)
            if plan is not None:
                self.last_plan = plan
                report = plan.report
                self.last_report = report.replayed() if report is not None else None
                return plan.bind(bases), plan, True, False
            with self._inflight_lock:
                waiting_on = self._inflight.get(cache_key)
                if waiting_on is None:
                    # A builder may have published between the (miss-counted)
                    # lookup and here; peek so the re-check stays silent.
                    if self.plan_cache.peek(cache_key) is not None:
                        continue
                    latch = threading.Event()
                    self._inflight[cache_key] = latch
                    break
            self.plan_waits += 1
            waiting_on.wait()
        try:
            report = self._build_pipeline().run(program)
            report.fingerprint = fingerprint
            plan = ExecutionPlan(
                fingerprint=fingerprint,
                backend_name=backend.name,
                source_bases=bases,
                optimized=report.optimized,
                report=report,
                fusion_schedule=_fusion_schedule_of(report),
            )
            # Plan-time backend preparation (e.g. tile decomposition): paid
            # on the miss, replayed for free on every hit.
            backend.prepare_plan(plan)
            self.plan_cache.put(cache_key, plan)
            self.plans_built += 1
        finally:
            with self._inflight_lock:
                self._inflight.pop(cache_key, None)
            latch.set()
        self.last_plan = plan
        self.last_report = report
        return report.optimized, plan, False, True

    def prime(self, program: Program, report) -> ExecutionPlan:
        """Seed the plan cache with an already-computed optimization report.

        Callers that have just run the pipeline themselves (the CLI prints
        the report before executing) hand the result over instead of letting
        the first :meth:`execute` re-optimize the same program.  The primed
        entry counts as neither hit nor miss; subsequent executions of a
        structurally identical program hit it normally.
        """
        backend = self.backend
        key, bases = canonical_program_key(program)
        fingerprint = fingerprint_of_key(key)
        report.fingerprint = fingerprint
        plan = ExecutionPlan(
            fingerprint=fingerprint,
            backend_name=backend.name,
            source_bases=bases,
            optimized=report.optimized,
            report=report,
            fusion_schedule=_fusion_schedule_of(report),
        )
        backend.prepare_plan(plan)
        cache_key = (
            fingerprint,
            backend.name,
            self._pipeline_signature(),
            config_signature(),
        )
        self.plan_cache.put(cache_key, plan)
        self.plans_built += 1
        return plan

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> Dict[str, int]:
        """Plan-cache counters plus whatever the backend's caches report.

        Includes the process-wide static-check counters
        (:data:`repro.checks.COUNTERS`) — the authoritative totals of how
        often the ``check_ir`` analyzers actually ran, which test suites
        use to assert non-vacuity.
        """
        from repro.checks import COUNTERS

        stats = dict(self.plan_cache.stats())
        stats["plan_builds"] = self.plans_built
        stats["plan_waits"] = self.plan_waits
        stats.update(COUNTERS.snapshot())
        stats.update(self.backend.cache_stats())
        return stats
