"""Execution statistics and results returned by every backend."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.bytecode.opcodes import OpCode
from repro.bytecode.view import View
from repro.runtime.memory import MemoryManager


@dataclass
class ExecutionStats:
    """Counters describing one program execution.

    Attributes
    ----------
    instructions_executed:
        Number of byte-codes executed, counting fused payload instructions.
    kernel_launches:
        Number of kernel launches — every top-level non-system instruction
        is one launch; a fused instruction is a single launch.
    elements_processed:
        Total output elements produced across all launches.
    bytes_read / bytes_written:
        Memory traffic estimate derived from operand view sizes.
    opcode_counts:
        Histogram of executed op-codes.
    wall_time_seconds:
        Measured wall-clock execution time.
    simulated_time_seconds:
        Device-model time (only filled in by the simulated backend).
    plan_time_seconds:
        Middleware overhead of the flush: fingerprinting plus either the
        optimization pipeline (plan-cache miss) or the plan rebind (hit).
    plan_cache_hits / plan_cache_misses:
        Whether this execution reused a cached execution plan (filled in by
        the :class:`~repro.runtime.engine.ExecutionEngine`; sums meaningfully
        under :meth:`merge`).
    kernel_cache_hits / kernel_cache_misses:
        Compiled-kernel cache outcomes during this execution (filled in by
        the fusing JIT).
    native_compiles:
        C compiler invocations during this execution (native backend; a
        warm artifact cache keeps this at zero).
    native_disk_hits / native_memory_hits:
        Compiled artifacts served from the on-disk cache versus the
        in-process loaded-kernel cache.
    native_kernel_launches:
        Tiled map steps that executed through compiled native loops.
    native_fallbacks:
        Tiled map steps that fell back to interpreted kernel templates
        (unsupported op-codes/dtypes, aliasing hazards, compile failure or
        codegen disabled).
    native_mt_launches:
        Map steps (and compiled reductions) that ran as ONE
        ``repro_kernel_mt`` call, with the thread split performed inside
        the compiled artifact instead of by per-tile Python launches.
    native_reductions_compiled:
        Tiled reductions that executed through a compiled reduction
        kernel.
    native_reduction_fallbacks:
        Tiled reductions that ran on the interpreted tiled paths instead
        (no lowering for the form, compile failure, or
        ``codegen_reductions_enabled`` off).
    native_slots_elided:
        Kernel-local slots whose storage compiled launches elided
        entirely this execution (counted per launched step).
    tiles_executed:
        Number of tiles launched by the tiled parallel backend.
    tiled_instructions:
        Byte-codes that executed through the tiled path (fused payload
        instructions counted individually).
    serial_fallbacks:
        Non-system instructions the parallel backend had to execute
        serially (generators, linear algebra, non-splittable kernels).
    threads_used:
        Worker-thread count of the parallel backend for this execution
        (zero for other backends; :meth:`merge` keeps the maximum).
    pool_hits / pool_misses:
        Buffer-pool outcomes during this execution: how many base-array
        materializations were served from recycled storage versus fresh
        host allocations (filled in by the
        :class:`~repro.runtime.engine.ExecutionEngine`).
    pool_bytes_reused:
        Bytes of storage served from recycled buffers this execution.
    planned_peak_bytes:
        The memory plan's simulated peak footprint for this execution
        (zero when planning was disabled; :meth:`merge` keeps the
        maximum).
    actual_peak_bytes:
        The memory manager's measured high-water mark after this
        execution (:meth:`merge` keeps the maximum).
    ir_checks_run:
        Between-pass IR checks paid compiling this flush's plan (zero on
        plan-cache hits and with ``check_ir`` off; filled in by the
        :class:`~repro.runtime.engine.ExecutionEngine`).
    ir_check_failures:
        IR-check violations attributed to this flush.  A violation aborts
        the flush with an :class:`~repro.utils.errors.IRCheckError` before
        statistics are returned, so this stays zero on successful flushes;
        the field exists so merged/serialized stats share one schema with
        the process-wide counters in ``cache_stats()``.
    plan_checks_run:
        Plan-artifact soundness checks (memory plan, tiling) run for this
        flush (filled in by the engine; non-zero only under ``check_ir``).
    dist_workers_used:
        Worker-process count of the distributed backend for this execution
        (zero for other backends; :meth:`merge` keeps the maximum).
    dist_shard_launches:
        Shard launch frames sent to worker processes (one per participating
        worker per distributed step; never an empty shard).
    dist_halo_exchanges:
        Halo fetches stencil shards performed (one per stencil base per
        participating worker per launch).
    dist_halo_bytes:
        Bytes those halo fetches copied between shared-memory regions.
    dist_control_frames / dist_control_bytes:
        Control-channel traffic this execution: every frame exchanged with
        the pool and its pickled size.  This is the *entire* wire cost of
        the hot path.
    dist_payload_bytes:
        Bytes of NumPy array payload detected inside control frames.  The
        design invariant is that arrays travel only through shared memory,
        so this must stay zero; it is counted (not assumed) so the warm
        path's zero-copy claim is a measured fact.
    dist_bytes_migrated:
        Bytes copied from ordinary host storage into shared-memory
        segments when the backend adopted pre-existing arrays (zero on
        warm flushes — residency persists).
    backend_name:
        Which backend produced these statistics.
    """

    instructions_executed: int = 0
    kernel_launches: int = 0
    elements_processed: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    opcode_counts: Dict[OpCode, int] = field(default_factory=dict)
    wall_time_seconds: float = 0.0
    simulated_time_seconds: float = 0.0
    plan_time_seconds: float = 0.0
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    kernel_cache_hits: int = 0
    kernel_cache_misses: int = 0
    native_compiles: int = 0
    native_disk_hits: int = 0
    native_memory_hits: int = 0
    native_kernel_launches: int = 0
    native_fallbacks: int = 0
    native_mt_launches: int = 0
    native_reductions_compiled: int = 0
    native_reduction_fallbacks: int = 0
    native_slots_elided: int = 0
    tiles_executed: int = 0
    tiled_instructions: int = 0
    serial_fallbacks: int = 0
    threads_used: int = 0
    pool_hits: int = 0
    pool_misses: int = 0
    pool_bytes_reused: int = 0
    planned_peak_bytes: int = 0
    actual_peak_bytes: int = 0
    ir_checks_run: int = 0
    ir_check_failures: int = 0
    plan_checks_run: int = 0
    dist_workers_used: int = 0
    dist_shard_launches: int = 0
    dist_halo_exchanges: int = 0
    dist_halo_bytes: int = 0
    dist_control_frames: int = 0
    dist_control_bytes: int = 0
    dist_payload_bytes: int = 0
    dist_bytes_migrated: int = 0
    backend_name: str = ""

    def record_instruction(self, opcode: OpCode) -> None:
        """Count one executed instruction of ``opcode``."""
        self.instructions_executed += 1
        self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + 1

    def merge(self, other: "ExecutionStats") -> "ExecutionStats":
        """Fold another stats record into this one (in place) and return self."""
        self.instructions_executed += other.instructions_executed
        self.kernel_launches += other.kernel_launches
        self.elements_processed += other.elements_processed
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.wall_time_seconds += other.wall_time_seconds
        self.simulated_time_seconds += other.simulated_time_seconds
        self.plan_time_seconds += other.plan_time_seconds
        self.plan_cache_hits += other.plan_cache_hits
        self.plan_cache_misses += other.plan_cache_misses
        self.kernel_cache_hits += other.kernel_cache_hits
        self.kernel_cache_misses += other.kernel_cache_misses
        self.native_compiles += other.native_compiles
        self.native_disk_hits += other.native_disk_hits
        self.native_memory_hits += other.native_memory_hits
        self.native_kernel_launches += other.native_kernel_launches
        self.native_fallbacks += other.native_fallbacks
        self.native_mt_launches += other.native_mt_launches
        self.native_reductions_compiled += other.native_reductions_compiled
        self.native_reduction_fallbacks += other.native_reduction_fallbacks
        self.native_slots_elided += other.native_slots_elided
        self.tiles_executed += other.tiles_executed
        self.tiled_instructions += other.tiled_instructions
        self.serial_fallbacks += other.serial_fallbacks
        self.threads_used = max(self.threads_used, other.threads_used)
        self.pool_hits += other.pool_hits
        self.pool_misses += other.pool_misses
        self.pool_bytes_reused += other.pool_bytes_reused
        self.planned_peak_bytes = max(self.planned_peak_bytes, other.planned_peak_bytes)
        self.actual_peak_bytes = max(self.actual_peak_bytes, other.actual_peak_bytes)
        self.ir_checks_run += other.ir_checks_run
        self.ir_check_failures += other.ir_check_failures
        self.plan_checks_run += other.plan_checks_run
        self.dist_workers_used = max(self.dist_workers_used, other.dist_workers_used)
        self.dist_shard_launches += other.dist_shard_launches
        self.dist_halo_exchanges += other.dist_halo_exchanges
        self.dist_halo_bytes += other.dist_halo_bytes
        self.dist_control_frames += other.dist_control_frames
        self.dist_control_bytes += other.dist_control_bytes
        self.dist_payload_bytes += other.dist_payload_bytes
        self.dist_bytes_migrated += other.dist_bytes_migrated
        for opcode, count in other.opcode_counts.items():
            self.opcode_counts[opcode] = self.opcode_counts.get(opcode, 0) + count
        return self

    @property
    def total_bytes(self) -> int:
        """Total estimated memory traffic in bytes."""
        return self.bytes_read + self.bytes_written

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict summary used by benchmark reporting."""
        return {
            "instructions": self.instructions_executed,
            "kernels": self.kernel_launches,
            "elements": self.elements_processed,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "wall_time_s": self.wall_time_seconds,
            "simulated_time_s": self.simulated_time_seconds,
            "plan_time_s": self.plan_time_seconds,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "kernel_cache_hits": self.kernel_cache_hits,
            "kernel_cache_misses": self.kernel_cache_misses,
            "native_compiles": self.native_compiles,
            "native_disk_hits": self.native_disk_hits,
            "native_memory_hits": self.native_memory_hits,
            "native_kernel_launches": self.native_kernel_launches,
            "native_fallbacks": self.native_fallbacks,
            "native_mt_launches": self.native_mt_launches,
            "native_reductions_compiled": self.native_reductions_compiled,
            "native_reduction_fallbacks": self.native_reduction_fallbacks,
            "native_slots_elided": self.native_slots_elided,
            "tiles_executed": self.tiles_executed,
            "tiled_instructions": self.tiled_instructions,
            "serial_fallbacks": self.serial_fallbacks,
            "threads_used": self.threads_used,
            "pool_hits": self.pool_hits,
            "pool_misses": self.pool_misses,
            "pool_bytes_reused": self.pool_bytes_reused,
            "planned_peak_bytes": self.planned_peak_bytes,
            "actual_peak_bytes": self.actual_peak_bytes,
            "ir_checks_run": self.ir_checks_run,
            "ir_check_failures": self.ir_check_failures,
            "plan_checks_run": self.plan_checks_run,
            "dist_workers_used": self.dist_workers_used,
            "dist_shard_launches": self.dist_shard_launches,
            "dist_halo_exchanges": self.dist_halo_exchanges,
            "dist_halo_bytes": self.dist_halo_bytes,
            "dist_control_frames": self.dist_control_frames,
            "dist_control_bytes": self.dist_control_bytes,
            "dist_payload_bytes": self.dist_payload_bytes,
            "dist_bytes_migrated": self.dist_bytes_migrated,
        }


@dataclass
class ExecutionResult:
    """What a backend returns: the memory state plus execution statistics."""

    memory: MemoryManager
    stats: ExecutionStats

    def value(self, view: View) -> np.ndarray:
        """Read the final contents of ``view`` as a NumPy array (copy)."""
        return self.memory.read_view(view)

    def scalar(self, view: View) -> float:
        """Read a single-element view as a Python float."""
        array = self.value(view)
        if array.size != 1:
            raise ValueError(f"view has {array.size} elements, expected 1")
        return float(array.reshape(-1)[0])
