"""The reference backend: a straightforward NumPy interpreter.

Each byte-code is executed in program order as one NumPy operation over its
operand views — i.e. one full traversal of the data per byte-code, which is
exactly the cost structure the paper's transformations reduce (fewer
byte-codes over the same views means fewer traversals).
"""

from __future__ import annotations

import math
import time
from typing import Optional

import numpy as np

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode, REDUCE_TO_ELEMENTWISE
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.memory import MemoryManager
from repro.utils.errors import ExecutionError


def _scipy_erf():
    """Resolve scipy's vectorised erf, or ``None`` when scipy is absent.

    Kept as a separate seam so tests can monkeypatch it (returning
    ``None``) and exercise the pure-``math.erf`` fallback without having to
    uninstall scipy.
    """
    try:
        from scipy.special import erf as scipy_erf
    except ImportError:
        return None
    return scipy_erf


def _erf_fallback(values: np.ndarray) -> np.ndarray:
    """Element-by-element ``math.erf`` for hosts without scipy."""
    vectorised = np.vectorize(math.erf)
    return vectorised(values)


def _erf(values: np.ndarray) -> np.ndarray:
    """Vectorised error function (scipy when available, math.erf otherwise)."""
    implementation = _scipy_erf()
    if implementation is None:
        return _erf_fallback(values)
    return implementation(values)


class NumPyInterpreter(Backend):
    """Executes one byte-code at a time on NumPy storage."""

    name = "interpreter"

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        memory = memory if memory is not None else MemoryManager()
        stats = ExecutionStats(backend_name=self.name)
        start = time.perf_counter()
        for instruction in program:
            self._execute_instruction(instruction, memory, stats, top_level=True)
        stats.wall_time_seconds = time.perf_counter() - start
        return ExecutionResult(memory=memory, stats=stats)

    # ------------------------------------------------------------------ #
    # Instruction dispatch
    # ------------------------------------------------------------------ #

    def _execute_instruction(
        self,
        instruction: Instruction,
        memory: MemoryManager,
        stats: ExecutionStats,
        top_level: bool,
    ) -> None:
        opcode = instruction.opcode
        stats.record_instruction(opcode)
        if opcode is OpCode.BH_FUSED:
            if top_level:
                stats.kernel_launches += 1
            for inner in instruction.kernel or ():
                self._execute_instruction(inner, memory, stats, top_level=False)
            return
        if instruction.is_system():
            self._execute_system(instruction, memory)
            return
        if top_level:
            stats.kernel_launches += 1
        self._account_traffic(instruction, memory, stats)
        try:
            self._dispatch(instruction, memory)
        except ExecutionError:
            raise
        except Exception as exc:
            raise ExecutionError(
                f"failed executing {instruction.opcode.value}: {exc}"
            ) from exc

    def _account_traffic(
        self, instruction: Instruction, memory: MemoryManager, stats: ExecutionStats
    ) -> None:
        out = instruction.out
        if out is not None:
            stats.elements_processed += out.nelem
            stats.bytes_written += out.nbytes
        for operand in instruction.inputs:
            if is_view(operand):
                stats.bytes_read += operand.nbytes

    def _execute_system(self, instruction: Instruction, memory: MemoryManager) -> None:
        if instruction.opcode is OpCode.BH_FREE:
            for operand in instruction.operands:
                if is_view(operand):
                    memory.free(operand.base)
        elif instruction.opcode is OpCode.BH_SYNC:
            # SYNC forces materialization; in this eager interpreter the data
            # is already materialized, so just touch the allocation.
            for operand in instruction.operands:
                if is_view(operand):
                    memory.allocate(operand.base)
        # BH_NONE: nothing to do.

    def _operand_value(self, operand, memory: MemoryManager):
        if is_view(operand):
            return memory.view_array(operand)
        if is_constant(operand):
            return operand.as_numpy()
        raise ExecutionError(f"unsupported operand {operand!r}")

    def _dispatch(self, instruction: Instruction, memory: MemoryManager) -> None:
        opcode = instruction.opcode
        info = instruction.info
        out_view = instruction.out
        out = memory.view_array(out_view) if out_view is not None else None

        if opcode is OpCode.BH_IDENTITY:
            source = self._operand_value(instruction.inputs[0], memory)
            np.copyto(out, source, casting="unsafe")
            return

        if info.elementwise:
            inputs = [self._operand_value(op, memory) for op in instruction.inputs]
            self._elementwise(opcode, info.numpy_name, inputs, out)
            return

        if info.reduction:
            self._reduction(instruction, memory, out)
            return

        if opcode is OpCode.BH_RANGE:
            np.copyto(out, np.arange(out_view.nelem, dtype=out.dtype).reshape(out_view.shape))
            return

        if opcode is OpCode.BH_RANDOM:
            seed = int(instruction.constants[0].value)
            rng = np.random.default_rng(seed)
            np.copyto(out, rng.random(out_view.shape), casting="unsafe")
            return

        if info.extension:
            self._extension(instruction, memory, out)
            return

        raise ExecutionError(f"op-code {opcode.value} is not implemented by the interpreter")

    def _elementwise(self, opcode: OpCode, numpy_name, inputs, out) -> None:
        if opcode is OpCode.BH_ERF:
            np.copyto(out, _erf(inputs[0]), casting="unsafe")
            return
        if numpy_name is None:
            raise ExecutionError(f"no NumPy implementation registered for {opcode.value}")
        func = getattr(np, numpy_name)
        # Compute into a temporary then copy: using ufunc ``out=`` directly is
        # slightly faster but fails when input and output dtypes differ (for
        # example a comparison writing into a float view).
        result = func(*inputs)
        np.copyto(out, result, casting="unsafe")

    def _reduction(self, instruction: Instruction, memory: MemoryManager, out) -> None:
        elementwise_op = REDUCE_TO_ELEMENTWISE[instruction.opcode]
        numpy_name = {
            OpCode.BH_ADD: "add",
            OpCode.BH_MULTIPLY: "multiply",
            OpCode.BH_MAXIMUM: "maximum",
            OpCode.BH_MINIMUM: "minimum",
        }[elementwise_op]
        ufunc = getattr(np, numpy_name)
        source_view, axis_constant = instruction.inputs
        source = memory.view_array(source_view)
        axis = int(axis_constant.value)
        reduced = ufunc.reduce(source, axis=axis)
        np.copyto(out, np.asarray(reduced).reshape(out.shape), casting="unsafe")

    def _extension(self, instruction: Instruction, memory: MemoryManager, out) -> None:
        # Imported lazily to keep the byte-code/runtime layers importable
        # without the linear-algebra substrate (and to avoid import cycles).
        from repro import linalg

        opcode = instruction.opcode
        views = instruction.input_views
        if opcode is OpCode.BH_MATMUL:
            left = memory.view_array(views[0])
            right = memory.view_array(views[1])
            np.copyto(out, np.matmul(left, right), casting="unsafe")
        elif opcode is OpCode.BH_MATRIX_INVERSE:
            matrix = memory.read_view(views[0])
            np.copyto(out, linalg.inverse(matrix), casting="unsafe")
        elif opcode is OpCode.BH_LU:
            matrix = memory.read_view(views[0])
            packed, _pivots = linalg.lu_factor(matrix)
            np.copyto(out, packed, casting="unsafe")
        elif opcode is OpCode.BH_LU_SOLVE:
            matrix = memory.read_view(views[0])
            rhs = memory.read_view(views[1])
            np.copyto(out, linalg.solve(matrix, rhs), casting="unsafe")
        elif opcode is OpCode.BH_TRANSPOSE:
            source = memory.read_view(views[0])
            np.copyto(out, source.T, casting="unsafe")
        else:
            raise ExecutionError(f"extension op-code {opcode.value} is not implemented")
