"""The fusing JIT backend.

Clusters fusable element-wise byte-codes into kernels (one launch per
cluster) before executing, through the shared scheduling seam
(:func:`repro.core.schedule.compute_schedule`): under the default ``"dag"``
fusion scheduler non-adjacent byte-codes are legally reordered into
clusters, under ``"consecutive"`` only adjacent runs fuse.  Pre-fused
``BH_FUSED`` byte-codes (baked in by the optimizer) launch as compiled
kernels too, sharing templates with structurally identical unfused chains.
Non-element-wise byte-codes — reductions, extension methods, system
directives — are executed individually through the reference interpreter.

Compiled kernels are cached by their *canonical structural form* (see
:meth:`~repro.runtime.kernel.Kernel.structural_key`), not by operand
identity: two equivalent kernels that differ only in which temporary base
arrays they write through — the normal situation across loop iterations of
a repeated-flush workload — share a single compiled template, which is
launched with each kernel's concrete views.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.bytecode.program import Program
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.kernel import Kernel, KernelTemplate
from repro.runtime.memory import MemoryManager
from repro.utils.config import get_config
from repro.utils.locking import ContendedLock


class FusingJIT(Backend):
    """Kernel-fusing backend with a structural per-kernel compilation cache."""

    name = "jit"

    def __init__(self, max_kernel_size: Optional[int] = None) -> None:
        self.max_kernel_size = (
            max_kernel_size
            if max_kernel_size is not None
            else get_config().fusion_max_kernel_size
        )
        self._interpreter = NumPyInterpreter()
        self._kernel_cache: Dict[tuple, KernelTemplate] = {}
        # Covers both backend-local caches and their counters: concurrent
        # sessions sharing one engine share this instance too.
        self._cache_lock = ContendedLock()
        self.cache_hits = 0
        self.cache_misses = 0
        # Fusion schedules keyed by (fingerprint, schedule-relevant config):
        # warm plan-cache replays hand this backend the same (already
        # scheduled) program every flush, and the schedule is structural, so
        # one dependency-graph analysis serves them all.
        self._schedule_cache: "OrderedDict[tuple, object]" = OrderedDict()
        self._schedule_capacity = max(1, get_config().plan_cache_size)

    def _template(self, kernel: Kernel) -> KernelTemplate:
        key = kernel.structural_key()
        with self._cache_lock:
            cached = self._kernel_cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        from repro.runtime.kernel import compile_kernel_template

        # Compiled outside the lock; a concurrent miss of the same form
        # loses the setdefault race and adopts the winner's template.
        template = compile_kernel_template(kernel.instructions)
        with self._cache_lock:
            return self._kernel_cache.setdefault(key, template)

    def cache_stats(self) -> Dict[str, int]:
        """Cumulative compiled-kernel cache counters for this backend."""
        return {
            "kernel_cache_hits": self.cache_hits,
            "kernel_cache_misses": self.cache_misses,
            "kernel_cache_size": len(self._kernel_cache),
            "backend_lock_contentions": self._cache_lock.contentions,
        }

    def _partition(self, program: Program) -> List[object]:
        """Launch units for ``program`` via the shared scheduling seam."""
        from repro.core.schedule import compute_schedule
        from repro.runtime.plan import program_fingerprint

        # The key carries exactly the settings the schedule is computed
        # under: the instance's kernel-size snapshot (a constructor
        # override, like ParallelBackend's), not the live config knob the
        # computation ignores.
        config = get_config()
        key = (
            program_fingerprint(program),
            config.fusion_scheduler,
            config.fusion_cost_threshold,
            self.max_kernel_size,
        )
        with self._cache_lock:
            schedule = self._schedule_cache.get(key)
            if schedule is not None:
                self._schedule_cache.move_to_end(key)
        if schedule is None:
            schedule = compute_schedule(program, max_kernel_size=self.max_kernel_size)
            with self._cache_lock:
                schedule = self._schedule_cache.setdefault(key, schedule)
                while len(self._schedule_cache) > self._schedule_capacity:
                    self._schedule_cache.popitem(last=False)
        return schedule.partition(program)

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        memory = memory if memory is not None else MemoryManager()
        stats = ExecutionStats(backend_name=self.name)
        hits_before, misses_before = self.cache_hits, self.cache_misses
        start = time.perf_counter()
        for item in self._partition(program):
            if isinstance(item, Kernel):
                self._execute_kernel(item, memory, stats)
            else:
                self._interpreter._execute_instruction(item, memory, stats, top_level=True)
        stats.wall_time_seconds = time.perf_counter() - start
        stats.kernel_cache_hits = self.cache_hits - hits_before
        stats.kernel_cache_misses = self.cache_misses - misses_before
        return ExecutionResult(memory=memory, stats=stats)

    def _execute_kernel(self, kernel: Kernel, memory: MemoryManager, stats: ExecutionStats) -> None:
        stats.kernel_launches += 1
        if kernel.source is not None:
            # The kernel unwraps a pre-fused byte-code: keep the instruction
            # accounting identical to interpreting it (BH_FUSED + payload).
            stats.record_instruction(kernel.source.opcode)
        for instruction in kernel.instructions:
            stats.record_instruction(instruction.opcode)
            out = instruction.out
            if out is not None:
                stats.elements_processed += out.nelem
                stats.bytes_written += out.nbytes
            for view in instruction.reads():
                stats.bytes_read += view.nbytes
        template = self._template(kernel)
        template(memory, kernel.slot_views())
