"""The fusing JIT backend.

Clusters consecutive element-wise byte-codes into kernels (one launch per
cluster) before executing.  Non-element-wise byte-codes — reductions,
extension methods, system directives — are executed individually through
the reference interpreter.

Compiled kernels are cached by their *canonical structural form* (see
:meth:`~repro.runtime.kernel.Kernel.structural_key`), not by operand
identity: two equivalent kernels that differ only in which temporary base
arrays they write through — the normal situation across loop iterations of
a repeated-flush workload — share a single compiled template, which is
launched with each kernel's concrete views.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from repro.bytecode.program import Program
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.kernel import Kernel, KernelTemplate, partition_into_kernels
from repro.runtime.memory import MemoryManager
from repro.utils.config import get_config


class FusingJIT(Backend):
    """Kernel-fusing backend with a structural per-kernel compilation cache."""

    name = "jit"

    def __init__(self, max_kernel_size: Optional[int] = None) -> None:
        self.max_kernel_size = (
            max_kernel_size
            if max_kernel_size is not None
            else get_config().fusion_max_kernel_size
        )
        self._interpreter = NumPyInterpreter()
        self._kernel_cache: Dict[tuple, KernelTemplate] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def _template(self, kernel: Kernel) -> KernelTemplate:
        key = kernel.structural_key()
        cached = self._kernel_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        from repro.runtime.kernel import compile_kernel_template

        template = compile_kernel_template(kernel.instructions)
        self._kernel_cache[key] = template
        return template

    def cache_stats(self) -> Dict[str, int]:
        """Cumulative compiled-kernel cache counters for this backend."""
        return {
            "kernel_cache_hits": self.cache_hits,
            "kernel_cache_misses": self.cache_misses,
            "kernel_cache_size": len(self._kernel_cache),
        }

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        memory = memory if memory is not None else MemoryManager()
        stats = ExecutionStats(backend_name=self.name)
        hits_before, misses_before = self.cache_hits, self.cache_misses
        start = time.perf_counter()
        for item in partition_into_kernels(program, self.max_kernel_size):
            if isinstance(item, Kernel):
                self._execute_kernel(item, memory, stats)
            else:
                self._interpreter._execute_instruction(item, memory, stats, top_level=True)
        stats.wall_time_seconds = time.perf_counter() - start
        stats.kernel_cache_hits = self.cache_hits - hits_before
        stats.kernel_cache_misses = self.cache_misses - misses_before
        return ExecutionResult(memory=memory, stats=stats)

    def _execute_kernel(self, kernel: Kernel, memory: MemoryManager, stats: ExecutionStats) -> None:
        stats.kernel_launches += 1
        for instruction in kernel.instructions:
            stats.record_instruction(instruction.opcode)
            out = instruction.out
            if out is not None:
                stats.elements_processed += out.nelem
                stats.bytes_written += out.nbytes
            for view in instruction.reads():
                stats.bytes_read += view.nbytes
        template = self._template(kernel)
        template(memory, kernel.slot_views())
