"""Kernels: groups of element-wise byte-codes executed as one launch.

Bohrium's JIT fuses consecutive element-wise byte-codes that iterate over
the same index space into a single generated OpenCL/OpenMP kernel, so the
data is traversed once instead of once per byte-code.  We reproduce the
clustering logic and provide a "compiled" Python closure per kernel so the
:class:`~repro.runtime.jit.FusingJIT` backend can launch each cluster as a
unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode, opcode_info
from repro.bytecode.operand import is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.runtime.memory import MemoryManager
from repro.utils.errors import ExecutionError


@dataclass
class Kernel:
    """A fusable cluster of element-wise instructions.

    Attributes
    ----------
    instructions:
        The element-wise byte-codes in execution order.
    source:
        The pre-existing ``BH_FUSED`` instruction this kernel unwraps, when
        it was built from one (backends keep their statistics faithful by
        recording the fused op-code alongside the payload).
    """

    instructions: List[Instruction] = field(default_factory=list)
    source: Optional[Instruction] = None

    @property
    def size(self) -> int:
        """Number of fused byte-codes."""
        return len(self.instructions)

    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        """The common output shape of the fused byte-codes."""
        for instruction in self.instructions:
            out = instruction.out
            if out is not None:
                return out.shape
        return None

    def output_views(self) -> Tuple[View, ...]:
        """Views written by the kernel."""
        return tuple(v for instr in self.instructions for v in instr.writes())

    def input_views(self) -> Tuple[View, ...]:
        """Views read by the kernel."""
        return tuple(v for instr in self.instructions for v in instr.reads())

    def can_accept(self, instruction: Instruction, max_size: int) -> bool:
        """Whether ``instruction`` may be appended to this kernel.

        Fusion requires the candidate to be element-wise, the kernel to have
        room, and *every* view operand of the candidate — output **and**
        inputs — to share the kernel's iteration space (a broadcast or
        differently-shaped input view iterates a different space and must
        not be folded into the kernel's single loop; dtypes follow bases,
        so a shape-matched view is automatically dtype-consistent with any
        kernel view of the same base).

        On top of the iteration-space rule, loop-fusion legality: inside one
        fused loop a statement may consume a value an earlier statement
        produced only through the *identical* view.  A shifted or otherwise
        overlapping window would read elements the fused loop has already
        overwritten (or not yet written), diverging from sequential
        execution — the kernel is cut instead.
        """
        if not instruction.is_elementwise():
            return False
        if self.size >= max_size:
            return False
        if not self.instructions:
            return True
        out = instruction.out
        if out is None or self.shape != out.shape:
            return False
        for view in instruction.input_views:
            if view.shape != self.shape:
                return False
        # Flow/output dependencies: candidate touching a view the kernel
        # writes must do so through the identical view.
        for written in self.output_views():
            for view in instruction.views():
                if not view.same_view(written) and view.overlaps(written):
                    return False
        # Anti-dependency: candidate overwriting elements an earlier
        # statement reads through a different window.
        for view in instruction.writes():
            for read in self.input_views():
                if not view.same_view(read) and view.overlaps(read):
                    return False
        return True

    def append(self, instruction: Instruction) -> None:
        """Add one instruction to the cluster."""
        self.instructions.append(instruction)

    def as_instruction(self, tag: Optional[str] = None) -> Instruction:
        """Wrap the cluster into a single ``BH_FUSED`` byte-code."""
        return Instruction(OpCode.BH_FUSED, (), kernel=self.instructions, tag=tag)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def structural_key(self) -> tuple:
        """Canonical, base-identity-tolerant key for this kernel.

        Two kernels that perform the same operations over the same geometry
        — even on *different* base arrays (e.g. the fresh temporaries of two
        loop iterations) — share one key, and therefore one compiled
        template in the JIT's kernel cache.
        """
        return kernel_structural_key(self.instructions)

    def slot_views(self) -> Tuple[View, ...]:
        """This kernel's concrete views, in template slot order."""
        return kernel_slot_views(self.instructions)

    def compile(self) -> Callable[[MemoryManager], None]:
        """Return a closure that executes the whole kernel on a memory manager.

        The closure evaluates each fused byte-code with NumPy but is built
        once per kernel, mirroring how Bohrium compiles a fused kernel once
        and launches it many times.
        """
        key, slots, specs = _slot_walk(self.instructions)
        template = _compile_template(key, specs)

        def run(memory: MemoryManager) -> None:
            template(memory, slots)

        return run


class KernelTemplate:
    """A compiled kernel parameterized over its operand views.

    A template closes over *slot indices* instead of concrete views, so one
    compiled artifact serves every structurally identical kernel: the caller
    supplies the kernel's concrete views (from :func:`kernel_slot_views`) at
    launch time.  This is what lets the JIT's kernel cache share entries
    between equivalent kernels that differ only in their temporaries.
    """

    __slots__ = ("key", "num_slots", "_steps")

    def __init__(self, key: tuple, num_slots: int, steps) -> None:
        self.key = key
        self.num_slots = num_slots
        self._steps = tuple(steps)

    def __call__(self, memory: MemoryManager, views: Sequence[View]) -> None:
        if len(views) != self.num_slots:
            raise ExecutionError(
                f"kernel template expects {self.num_slots} view(s), got {len(views)}"
            )
        for step in self._steps:
            step(memory, views)


def _slot_walk(instructions: Sequence[Instruction]):
    """One canonical walk yielding the key, the slot views and step specs.

    The walk assigns a *slot* to each distinct view token (first-occurrence
    order); the structural key and the slot assignment come from the same
    traversal, so a template compiled from one kernel resolves correctly
    against the slot views of any kernel with an equal key.
    """
    from repro.runtime.plan import OperandEncoder

    encoder = OperandEncoder()
    key_parts = []
    slot_of = {}
    slot_views: List[View] = []
    specs = []
    for instruction in instructions:
        key_parts.append(encoder.encode_instruction(instruction))
        operand_refs = []
        for operand in instruction.operands:
            if is_constant(operand):
                operand_refs.append(("const", operand))
                continue
            token = encoder.encode(operand)
            slot = slot_of.get(token)
            if slot is None:
                slot = len(slot_views)
                slot_of[token] = slot
                slot_views.append(operand)
            operand_refs.append(("slot", slot))
        specs.append((instruction, tuple(operand_refs)))
    return tuple(key_parts), tuple(slot_views), specs


def kernel_structural_key(instructions: Sequence[Instruction]) -> tuple:
    """Canonical structural key of a kernel's instruction list."""
    key, _, _ = _slot_walk(instructions)
    return key


def kernel_slot_views(instructions: Sequence[Instruction]) -> Tuple[View, ...]:
    """The distinct views of a kernel, in template slot order."""
    _, slots, _ = _slot_walk(instructions)
    return slots


def compile_kernel_template(instructions: Sequence[Instruction]) -> KernelTemplate:
    """Compile an instruction list into a view-parameterized template."""
    key, _, specs = _slot_walk(instructions)
    return _compile_template(key, specs)


def prepare_kernel_launch(instructions: Sequence[Instruction]):
    """One canonical walk returning ``(key, slot views, template factory)``.

    Callers holding a template cache (the tiled parallel backend launches
    one template per tile every execution) need the structural key *and*
    the launch views; this pays the :func:`_slot_walk` traversal once for
    both, and the returned zero-argument factory compiles the template
    only when the key missed the cache.
    """
    key, slots, specs = _slot_walk(instructions)
    return key, slots, lambda: _compile_template(key, specs)


def _compile_template(key: tuple, specs) -> KernelTemplate:
    steps = [_compile_step(instruction, refs) for instruction, refs in specs]
    num_slots = 0
    for _, refs in specs:
        for kind, value in refs:
            if kind == "slot":
                num_slots = max(num_slots, value + 1)
    return KernelTemplate(key=key, num_slots=num_slots, steps=steps)


def _compile_step(instruction: Instruction, operand_refs):
    """Compile one element-wise byte-code into a (memory, views) step."""
    info = opcode_info(instruction.opcode)
    if not info.elementwise:
        raise ExecutionError(f"cannot compile non-element-wise {instruction.opcode} into a kernel")
    out_kind, out_ref = operand_refs[0]
    if out_kind != "slot":
        raise ExecutionError(f"{instruction.opcode} writes to a constant operand")
    out_slot = out_ref
    input_refs = operand_refs[1:]

    def resolve_inputs(memory: MemoryManager, views: Sequence[View]):
        return [
            ref.as_numpy() if kind == "const" else memory.view_array(views[ref])
            for kind, ref in input_refs
        ]

    if instruction.opcode is OpCode.BH_IDENTITY:

        def run_identity(memory: MemoryManager, views: Sequence[View]) -> None:
            out = memory.view_array(views[out_slot])
            np.copyto(out, resolve_inputs(memory, views)[0], casting="unsafe")

        return run_identity

    numpy_name = info.numpy_name
    if numpy_name is None:
        if instruction.opcode is OpCode.BH_ERF:

            def run_erf(memory: MemoryManager, views: Sequence[View]) -> None:
                from repro.runtime.interpreter import _erf

                out = memory.view_array(views[out_slot])
                np.copyto(out, _erf(resolve_inputs(memory, views)[0]), casting="unsafe")

            return run_erf

        # Generic fallback: rebind the instruction's view operands to the
        # launch-time slot views and dispatch through the interpreter.
        def run_fallback(memory: MemoryManager, views: Sequence[View]) -> None:
            from repro.runtime.interpreter import NumPyInterpreter

            operands = [
                ref if kind == "const" else views[ref] for kind, ref in operand_refs
            ]
            bound = Instruction(instruction.opcode, operands, tag=instruction.tag)
            NumPyInterpreter()._dispatch(bound, memory)

        return run_fallback

    func = getattr(np, numpy_name)

    def run(memory: MemoryManager, views: Sequence[View]) -> None:
        out = memory.view_array(views[out_slot])
        np.copyto(out, func(*resolve_inputs(memory, views)), casting="unsafe")

    return run


def partition_into_kernels(
    program: Program, max_kernel_size: Optional[int] = None
) -> List[object]:
    """Greedy fusion clustering of a program.

    Returns a list whose items are either :class:`Kernel` objects (clusters
    of consecutive fusable element-wise byte-codes) or bare
    :class:`Instruction` objects (reductions, extension methods, system
    byte-codes and anything else that cannot be fused).

    The clustering is the same "consecutive, same shape" policy Bohrium's
    simple fuser applies; a kernel is cut whenever the next instruction is
    not element-wise, has a different iteration space, or the kernel reached
    ``max_kernel_size`` (defaulting to the configuration's
    ``fusion_max_kernel_size``, so bare calls honour the knob).  The
    dependency-graph scheduler (:mod:`repro.core.schedule`) supersedes this
    policy behind the shared partitioning seam; this walk remains the
    ``"consecutive"`` mode and the low-level clustering primitive.
    """
    if max_kernel_size is None:
        from repro.utils.config import get_config

        max_kernel_size = get_config().fusion_max_kernel_size
    partition: List[object] = []
    current: Optional[Kernel] = None
    for instruction in program:
        if instruction.is_elementwise():
            if current is None:
                current = Kernel()
            if not current.can_accept(instruction, max_kernel_size):
                partition.append(current)
                current = Kernel()
            current.append(instruction)
            continue
        if current is not None and current.size > 0:
            partition.append(current)
            current = None
        partition.append(instruction)
    if current is not None and current.size > 0:
        partition.append(current)
    return partition
