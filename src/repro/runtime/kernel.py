"""Kernels: groups of element-wise byte-codes executed as one launch.

Bohrium's JIT fuses consecutive element-wise byte-codes that iterate over
the same index space into a single generated OpenCL/OpenMP kernel, so the
data is traversed once instead of once per byte-code.  We reproduce the
clustering logic and provide a "compiled" Python closure per kernel so the
:class:`~repro.runtime.jit.FusingJIT` backend can launch each cluster as a
unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode, opcode_info
from repro.bytecode.operand import is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.runtime.memory import MemoryManager
from repro.utils.errors import ExecutionError


@dataclass
class Kernel:
    """A fusable cluster of element-wise instructions.

    Attributes
    ----------
    instructions:
        The element-wise byte-codes in execution order.
    """

    instructions: List[Instruction] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of fused byte-codes."""
        return len(self.instructions)

    @property
    def shape(self) -> Optional[Tuple[int, ...]]:
        """The common output shape of the fused byte-codes."""
        for instruction in self.instructions:
            out = instruction.out
            if out is not None:
                return out.shape
        return None

    def output_views(self) -> Tuple[View, ...]:
        """Views written by the kernel."""
        return tuple(v for instr in self.instructions for v in instr.writes())

    def input_views(self) -> Tuple[View, ...]:
        """Views read by the kernel."""
        return tuple(v for instr in self.instructions for v in instr.reads())

    def can_accept(self, instruction: Instruction, max_size: int) -> bool:
        """Whether ``instruction`` may be appended to this kernel.

        Fusion requires the candidate to be element-wise, the kernel to have
        room, and the candidate's output shape to match the kernel's shape
        (all fused byte-codes share one iteration space).
        """
        if not instruction.is_elementwise():
            return False
        if self.size >= max_size:
            return False
        if not self.instructions:
            return True
        out = instruction.out
        return out is not None and self.shape == out.shape

    def append(self, instruction: Instruction) -> None:
        """Add one instruction to the cluster."""
        self.instructions.append(instruction)

    def as_instruction(self, tag: Optional[str] = None) -> Instruction:
        """Wrap the cluster into a single ``BH_FUSED`` byte-code."""
        return Instruction(OpCode.BH_FUSED, (), kernel=self.instructions, tag=tag)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def compile(self) -> Callable[[MemoryManager], None]:
        """Return a closure that executes the whole kernel on a memory manager.

        The closure evaluates each fused byte-code with NumPy but is built
        once per kernel, mirroring how Bohrium compiles a fused kernel once
        and launches it many times.
        """
        steps = []
        for instruction in self.instructions:
            steps.append(_compile_elementwise(instruction))

        def run(memory: MemoryManager) -> None:
            for step in steps:
                step(memory)

        return run


def _compile_elementwise(instruction: Instruction) -> Callable[[MemoryManager], None]:
    """Compile one element-wise byte-code into a memory -> None closure."""
    info = opcode_info(instruction.opcode)
    if not info.elementwise:
        raise ExecutionError(f"cannot compile non-element-wise {instruction.opcode} into a kernel")
    out_view = instruction.out
    inputs = instruction.inputs

    if instruction.opcode is OpCode.BH_IDENTITY:

        def run_identity(memory: MemoryManager) -> None:
            out = memory.view_array(out_view)
            source = inputs[0]
            value = source.as_numpy() if is_constant(source) else memory.view_array(source)
            np.copyto(out, value, casting="unsafe")

        return run_identity

    numpy_name = info.numpy_name
    if numpy_name is None:
        # Fall back to the interpreter's special cases (e.g. BH_ERF).
        from repro.runtime.interpreter import NumPyInterpreter

        interpreter = NumPyInterpreter()

        def run_fallback(memory: MemoryManager) -> None:
            interpreter._dispatch(instruction, memory)

        return run_fallback

    func = getattr(np, numpy_name)

    def run(memory: MemoryManager) -> None:
        out = memory.view_array(out_view)
        values = [
            operand.as_numpy() if is_constant(operand) else memory.view_array(operand)
            for operand in inputs
        ]
        np.copyto(out, func(*values), casting="unsafe")

    return run


def partition_into_kernels(
    program: Program, max_kernel_size: int = 32
) -> List[object]:
    """Greedy fusion clustering of a program.

    Returns a list whose items are either :class:`Kernel` objects (clusters
    of consecutive fusable element-wise byte-codes) or bare
    :class:`Instruction` objects (reductions, extension methods, system
    byte-codes and anything else that cannot be fused).

    The clustering is the same "consecutive, same shape" policy Bohrium's
    simple fuser applies; a kernel is cut whenever the next instruction is
    not element-wise, has a different iteration space, or the kernel reached
    ``max_kernel_size``.
    """
    partition: List[object] = []
    current: Optional[Kernel] = None
    for instruction in program:
        if instruction.is_elementwise():
            if current is None:
                current = Kernel()
            if not current.can_accept(instruction, max_kernel_size):
                partition.append(current)
                current = Kernel()
            current.append(instruction)
            continue
        if current is not None and current.size > 0:
            partition.append(current)
            current = None
        partition.append(instruction)
    if current is not None and current.size > 0:
        partition.append(current)
    return partition
