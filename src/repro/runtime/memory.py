"""Memory management for byte-code execution.

Base arrays are materialized lazily as flat NumPy allocations; views are
realized as strided windows over those allocations, so an instruction that
writes a view writes straight into its base storage — the semantics the
paper relies on when it reuses the result tensor as scratch space in the
power-expansion example.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.bytecode.base import BaseArray
from repro.bytecode.view import View
from repro.utils.errors import AllocationError


class MemoryManager:
    """Allocates, tracks and frees the NumPy storage behind base arrays."""

    def __init__(self) -> None:
        self._storage: Dict[int, np.ndarray] = {}
        self._bases: Dict[int, BaseArray] = {}
        self.bytes_allocated = 0
        self.peak_bytes = 0
        self.allocation_count = 0
        self.free_count = 0

    # ------------------------------------------------------------------ #
    # Base-level operations
    # ------------------------------------------------------------------ #

    def is_allocated(self, base: BaseArray) -> bool:
        """True when storage for ``base`` currently exists."""
        return id(base) in self._storage

    def allocate(self, base: BaseArray) -> np.ndarray:
        """Return the flat storage for ``base``, allocating it if needed.

        Fresh allocations are zero-initialised, matching Bohrium's behaviour
        for uninitialised operands.
        """
        key = id(base)
        if key not in self._storage:
            try:
                buffer = np.zeros(base.nelem, dtype=base.dtype.np_dtype)
            except MemoryError as exc:  # pragma: no cover - depends on host
                raise AllocationError(f"cannot allocate {base.nbytes} bytes for {base}") from exc
            self._storage[key] = buffer
            self._bases[key] = base
            self.bytes_allocated += base.nbytes
            self.peak_bytes = max(self.peak_bytes, self.bytes_allocated)
            self.allocation_count += 1
        return self._storage[key]

    def set_data(self, base: BaseArray, data: np.ndarray) -> None:
        """Initialise ``base`` storage from an existing NumPy array.

        The data is copied (flattened) into the base's flat buffer so later
        byte-codes may mutate it freely without aliasing the caller's array.
        """
        flat = np.asarray(data, dtype=base.dtype.np_dtype).reshape(-1)
        if flat.size != base.nelem:
            raise AllocationError(
                f"data with {flat.size} elements does not fit base of {base.nelem} elements"
            )
        buffer = self.allocate(base)
        np.copyto(buffer, flat)

    def free(self, base: BaseArray) -> None:
        """Release the storage behind ``base`` (no-op when not allocated)."""
        key = id(base)
        if key in self._storage:
            del self._storage[key]
            del self._bases[key]
            self.bytes_allocated -= base.nbytes
            self.free_count += 1

    def free_all(self) -> None:
        """Release every allocation."""
        for key in list(self._storage):
            base = self._bases[key]
            self.free(base)

    def live_bases(self) -> Iterable[BaseArray]:
        """The base arrays that currently have storage."""
        return tuple(self._bases.values())

    # ------------------------------------------------------------------ #
    # View-level operations
    # ------------------------------------------------------------------ #

    def view_array(self, view: View) -> np.ndarray:
        """Return a writable NumPy window realizing ``view``.

        The window shares memory with the base storage, so writes through it
        are visible to later instructions.
        """
        buffer = self.allocate(view.base)
        itemsize = view.base.dtype.itemsize
        strides_bytes = tuple(stride * itemsize for stride in view.strides)
        window = np.lib.stride_tricks.as_strided(
            buffer[view.offset:],
            shape=view.shape,
            strides=strides_bytes,
            writeable=True,
        )
        return window

    def read_view(self, view: View) -> np.ndarray:
        """Return a *copy* of the data behind ``view`` (safe to hold)."""
        return np.array(self.view_array(view), copy=True)

    def write_view(self, view: View, data) -> None:
        """Copy ``data`` (broadcastable) into the elements addressed by ``view``."""
        window = self.view_array(view)
        np.copyto(window, data)

    def clone(self) -> "MemoryManager":
        """Deep-copy the manager: same bases, copied buffers.

        Used by the semantic verifier, which executes the original and the
        optimized program from identical initial states.
        """
        other = MemoryManager()
        for key, buffer in self._storage.items():
            base = self._bases[key]
            other._storage[key] = buffer.copy()
            other._bases[key] = base
            other.bytes_allocated += base.nbytes
        other.peak_bytes = other.bytes_allocated
        return other
