"""Memory management for byte-code execution.

Base arrays are materialized lazily as flat NumPy allocations; views are
realized as strided windows over those allocations, so an instruction that
writes a view writes straight into its base storage — the semantics the
paper relies on when it reuses the result tensor as scratch space in the
power-expansion example.

Two layers of storage reuse sit below the manager:

* a size-class :class:`BufferPool` recycles the raw byte buffers of freed
  bases instead of returning them to the host, so iterative workloads stop
  paying an allocation per temporary per flush, and
* plan-directed *aliasing*: the execution plan's
  :class:`~repro.runtime.memplan.MemoryPlan` may bind several temporaries
  with disjoint lifetimes to one shared storage slot, and may waive the
  zero fill for bases the liveness analysis proves fully written before
  any read.  Without directives every allocation is zero-initialised,
  matching Bohrium's behaviour for uninitialised operands — bit-for-bit
  the pre-pool semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.bytecode.base import BaseArray
from repro.bytecode.view import View
from repro.utils.config import get_config
from repro.utils.errors import AllocationError
from repro.utils.locking import ContendedLock

#: Smallest size class the pool hands out; tiny buffers are not worth
#: recycling individually and round up to this.
_MIN_CLASS_BYTES = 64


def size_class(nbytes: int) -> int:
    """The pool size class for an allocation of ``nbytes``: next power of two."""
    if nbytes <= _MIN_CLASS_BYTES:
        return _MIN_CLASS_BYTES
    return 1 << (int(nbytes) - 1).bit_length()


@dataclass(frozen=True)
class BufferDirective:
    """One base's storage instruction from a bound memory plan.

    ``slot`` names a shared storage slot (``None`` for dedicated storage);
    ``slot_nbytes`` is the slot's capacity (the largest occupant).
    ``zero_fill`` is false only when liveness proved every element is
    written before it can be read.
    """

    slot: Optional[int]
    slot_nbytes: int
    zero_fill: bool


class BufferPool:
    """Recycles raw byte buffers in power-of-two size classes.

    Freed buffers are parked here instead of being released to the host;
    a later allocation of the same size class pops one back out.  The pool
    is bounded: once ``max_bytes`` worth of buffers are parked, further
    releases fall through to the host allocator's free.

    The pool is thread-safe: the size-class bins and every counter mutate
    only under one internal lock, so sessions sharing a pool (the
    multi-tenant service) can never double-hand-out a recycled buffer or
    lose counter updates to interleaved ``acquire``/``release`` calls.
    Host allocation itself happens outside the lock — only bin surgery is
    serialized.

    Parked buffers optionally carry the *owner* (tenant) that released
    them, which enables two things: per-tenant parked-bytes accounting,
    and the ``"fair"`` fairness policy, under which one tenant may park at
    most an equal share (``max_bytes / registered owners``) of the pool —
    a burst of large frees from one tenant then falls through to the host
    instead of monopolizing the recycling budget.  Ownership never
    restricts *acquisition*: any tenant may reuse any parked buffer,
    which is the point of sharing the pool.
    """

    def __init__(
        self, max_bytes: Optional[int] = None, fairness: str = "shared"
    ) -> None:
        if fairness not in ("shared", "fair"):
            raise ValueError(f"unknown fairness policy {fairness!r}")
        self.max_bytes = (
            max_bytes if max_bytes is not None else get_config().memory_pool_max_bytes
        )
        self.fairness = fairness
        self._bins: Dict[int, List[Tuple[Optional[object], np.ndarray]]] = {}
        self._parked_by_owner: Dict[object, int] = {}
        self._owners: set = set()
        self._lock = ContendedLock()
        self.bytes_held = 0
        self.peak_bytes_held = 0
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0
        self.discards = 0

    # ------------------------------------------------------------------ #
    # Tenant registration (fair-share accounting)
    # ------------------------------------------------------------------ #

    def register_owner(self, owner: object) -> None:
        """Enroll a tenant for fair-share accounting (idempotent)."""
        with self._lock:
            self._owners.add(owner)

    def unregister_owner(self, owner: object) -> None:
        """Drop a tenant; its still-parked buffers stay reusable by others."""
        with self._lock:
            self._owners.discard(owner)
            self._parked_by_owner.pop(owner, None)

    def fair_share_bytes(self) -> int:
        """The per-tenant parked-bytes cap under the ``"fair"`` policy."""
        with self._lock:
            if not self._owners:
                return self.max_bytes
            return self.max_bytes // len(self._owners)

    def parked_bytes_of(self, owner: object) -> int:
        """Bytes currently parked that ``owner`` released."""
        with self._lock:
            return self._parked_by_owner.get(owner, 0)

    # ------------------------------------------------------------------ #
    # Acquire / release
    # ------------------------------------------------------------------ #

    def _acquire(
        self, nbytes: int, owner: Optional[object] = None
    ) -> Tuple[np.ndarray, bool]:
        """Acquire plus a ``reused`` flag (per-tenant views need to know)."""
        cls = size_class(nbytes)
        with self._lock:
            bin_ = self._bins.get(cls)
            if bin_:
                parked_owner, buffer = bin_.pop()
                self.bytes_held -= cls
                if parked_owner is not None:
                    remaining = self._parked_by_owner.get(parked_owner, cls) - cls
                    self._parked_by_owner[parked_owner] = max(0, remaining)
                self.hits += 1
                self.bytes_reused += int(nbytes)
                return buffer, True
            self.misses += 1
        try:
            return np.empty(cls, dtype=np.uint8), False
        except MemoryError as exc:  # pragma: no cover - depends on host
            raise AllocationError(f"cannot allocate {cls} bytes") from exc

    def acquire(self, nbytes: int) -> np.ndarray:
        """A raw ``uint8`` buffer of ``size_class(nbytes)`` bytes, recycled if possible.

        The contents of a recycled buffer are whatever its previous owner
        left there — the caller decides whether a zero fill is needed.
        """
        return self._acquire(nbytes)[0]

    def _release(self, buffer: np.ndarray, owner: Optional[object] = None) -> bool:
        """Park ``buffer`` (returns True) or drop it (cap or fairness)."""
        cls = buffer.nbytes
        with self._lock:
            if self.bytes_held + cls > self.max_bytes:
                self.discards += 1
                return False
            if self.fairness == "fair" and owner is not None and self._owners:
                share = self.max_bytes // len(self._owners)
                if self._parked_by_owner.get(owner, 0) + cls > share:
                    self.discards += 1
                    return False
            self._bins.setdefault(cls, []).append((owner, buffer))
            self.bytes_held += cls
            self.peak_bytes_held = max(self.peak_bytes_held, self.bytes_held)
            if owner is not None:
                self._parked_by_owner[owner] = (
                    self._parked_by_owner.get(owner, 0) + cls
                )
            return True

    def release(self, buffer: np.ndarray) -> None:
        """Park ``buffer`` for reuse, or drop it when the pool is full."""
        self._release(buffer)

    def clear(self) -> None:
        """Drop every parked buffer (counters are preserved)."""
        with self._lock:
            self._bins.clear()
            self._parked_by_owner.clear()
            self.bytes_held = 0

    def stats(self) -> Dict[str, int]:
        """Counters for reporting: hits, misses, reused and held bytes."""
        with self._lock:
            return {
                "pool_hits": self.hits,
                "pool_misses": self.misses,
                "pool_bytes_reused": self.bytes_reused,
                "pool_bytes_held": self.bytes_held,
                "pool_peak_bytes_held": self.peak_bytes_held,
                "pool_discards": self.discards,
                "pool_lock_contentions": self._lock.contentions,
            }


class TenantPoolView:
    """A per-tenant window onto a shared :class:`BufferPool`.

    A :class:`MemoryManager` built over this view recycles through the
    *shared* pool (any tenant's freed buffer serves any tenant's next
    allocation) while its ``pool_counters()`` stay tenant-local — so the
    engine's per-flush counter deltas report this tenant's hits and
    misses, not the whole service's.  The view also tags every release
    with the tenant, which is what the pool's fairness policy and
    per-tenant parked-bytes accounting key on.
    """

    def __init__(self, pool: BufferPool, owner: object) -> None:
        self.shared = pool
        self.owner = owner
        self.hits = 0
        self.misses = 0
        self.bytes_reused = 0
        self.discards = 0
        pool.register_owner(owner)

    @property
    def max_bytes(self) -> int:
        return self.shared.max_bytes

    @property
    def bytes_held(self) -> int:
        return self.shared.bytes_held

    def acquire(self, nbytes: int) -> np.ndarray:
        buffer, reused = self.shared._acquire(nbytes, owner=self.owner)
        if reused:
            self.hits += 1
            self.bytes_reused += int(nbytes)
        else:
            self.misses += 1
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        if not self.shared._release(buffer, owner=self.owner):
            self.discards += 1

    def clear(self) -> None:
        """Clearing through a tenant view clears the shared pool."""
        self.shared.clear()

    def stats(self) -> Dict[str, int]:
        """Tenant-local counters plus the shared pool's occupancy."""
        return {
            "pool_hits": self.hits,
            "pool_misses": self.misses,
            "pool_bytes_reused": self.bytes_reused,
            "pool_bytes_held": self.shared.bytes_held,
            "pool_peak_bytes_held": self.shared.peak_bytes_held,
            "pool_discards": self.discards,
            "pool_lock_contentions": self.shared._lock.contentions,
        }


class MemoryManager:
    """Allocates, tracks and frees the NumPy storage behind base arrays."""

    def __init__(self, pool: Optional[BufferPool] = None) -> None:
        self._storage: Dict[int, np.ndarray] = {}
        self._bases: Dict[int, BaseArray] = {}
        #: Raw byte buffer backing each dedicated (non-slot) base.
        self._buffers: Dict[int, np.ndarray] = {}
        #: Plan directives for the current execution, keyed by id(base).
        self._directives: Dict[int, BufferDirective] = {}
        #: Shared slot buffers, keyed by (plan epoch, slot id): an epoch
        #: bump on every ``apply_plan`` guarantees a new plan's slot ids
        #: can never adopt a previous plan's buffer (whose capacity the
        #: new plan knows nothing about).
        self._slots: Dict[tuple, np.ndarray] = {}
        #: Accounted bytes per slot (the planned capacity, not the class).
        self._slot_bytes: Dict[tuple, int] = {}
        #: Which slot key (if any) currently backs each live base.
        self._slot_of: Dict[int, tuple] = {}
        #: Externally-owned storage (e.g. shared-memory segments adopted by
        #: the distributed backend), keyed by id(base): ``(release, token)``.
        #: Frees route to ``release`` instead of the buffer pool.
        self._external: Dict[int, tuple] = {}
        self._plan_epoch = 0
        #: The pool is always present; disabling pooling means a zero byte
        #: cap (every release falls through to the host), which keeps the
        #: allocation path single and the miss counter authoritative.  A
        #: service-owned session passes a :class:`TenantPoolView` here, so
        #: recycling is shared while the counters stay tenant-local.
        self.pool: BufferPool = pool if pool is not None else BufferPool()
        self.bytes_allocated = 0
        self.peak_bytes = 0
        #: High-water mark since :meth:`reset_peak_window` (the engine
        #: resets it per flush so per-execution statistics don't inherit
        #: an earlier flush's peak).
        self.window_peak_bytes = 0
        self.allocation_count = 0
        self.free_count = 0

    # ------------------------------------------------------------------ #
    # Plan directives
    # ------------------------------------------------------------------ #

    def apply_plan(self, directives: Optional[Dict[int, BufferDirective]]) -> None:
        """Install the directives of a freshly bound memory plan.

        Replaces any previous plan: stale directives must never outlive the
        execution they were bound for (a dead base's ``id`` can be reused by
        a fresh one).  Slot buffers of the previous plan are recycled
        through the pool unless a still-live base occupies them (they are
        released once that base is freed and the next plan is applied).
        """
        self.clear_plan()
        self._plan_epoch += 1
        if directives:
            self._directives = dict(directives)

    def clear_plan(self) -> None:
        """Forget the current plan's directives and release idle slot buffers."""
        self._directives = {}
        occupied = set(self._slot_of.values())
        for slot_key, buffer in list(self._slots.items()):
            if slot_key in occupied:
                continue
            del self._slots[slot_key]
            self.bytes_allocated -= self._slot_bytes.pop(slot_key)
            self.pool.release(buffer)

    def pool_counters(self) -> Dict[str, int]:
        """The pool's cumulative counters."""
        return self.pool.stats()

    @property
    def host_allocations(self) -> int:
        """Buffers actually requested from the host allocator (``np.empty``).

        Every allocation path goes through the pool, so this is exactly the
        pool's miss count; pool hits and slot reuse keep it flat on warm
        flushes.
        """
        return self.pool.misses

    def reset_peak_window(self) -> None:
        """Start a fresh per-execution peak window at the current level."""
        self.window_peak_bytes = self.bytes_allocated

    # ------------------------------------------------------------------ #
    # Base-level operations
    # ------------------------------------------------------------------ #

    def is_allocated(self, base: BaseArray) -> bool:
        """True when storage for ``base`` currently exists."""
        return id(base) in self._storage

    def _note_peak(self) -> None:
        self.peak_bytes = max(self.peak_bytes, self.bytes_allocated)
        self.window_peak_bytes = max(self.window_peak_bytes, self.bytes_allocated)

    def _carve(self, buffer: np.ndarray, base: BaseArray) -> np.ndarray:
        """The typed flat storage of ``base`` over the head of ``buffer``."""
        return buffer[: base.nbytes].view(base.dtype.np_dtype)

    def allocate(self, base: BaseArray, zero: Optional[bool] = None) -> np.ndarray:
        """Return the flat storage for ``base``, allocating it if needed.

        Fresh allocations are zero-initialised, matching Bohrium's behaviour
        for uninitialised operands — unless the current plan's directive for
        ``base`` waives the fill (liveness proved every element is written
        before it is read) and the zero policy is ``"auto"``, or the caller
        passes ``zero=False`` because it immediately overwrites the whole
        buffer (:meth:`set_data`).
        """
        key = id(base)
        existing = self._storage.get(key)
        if existing is not None:
            return existing
        directive = self._directives.get(key)
        if directive is not None and directive.slot is not None:
            slot_key = (self._plan_epoch, directive.slot)
            buffer = self._slots.get(slot_key)
            if buffer is None:
                buffer = self.pool.acquire(directive.slot_nbytes)
                self._slots[slot_key] = buffer
                self._slot_bytes[slot_key] = directive.slot_nbytes
                self.bytes_allocated += directive.slot_nbytes
                self._note_peak()
            storage = self._carve(buffer, base)
            self._slot_of[key] = slot_key
        else:
            buffer = self.pool.acquire(base.nbytes)
            storage = self._carve(buffer, base)
            self._buffers[key] = buffer
            self.bytes_allocated += base.nbytes
            self._note_peak()
        if zero is None:
            zero = directive is None or directive.zero_fill
            if get_config().memory_zero_policy == "always":
                zero = True
        if zero:
            storage.fill(0)
        self._storage[key] = storage
        self._bases[key] = base
        self.allocation_count += 1
        return storage

    def adopt_external(self, base, storage, release, token=None) -> np.ndarray:
        """Register externally-owned ``storage`` as the backing of ``base``.

        The distributed backend keeps arrays resident in shared-memory
        segments owned by its shard store; adoption makes that storage the
        base's storage for every ordinary path (``allocate`` returns it,
        ``view_array`` windows it, serial interpreter steps mutate it in
        place).  :meth:`free` calls ``release`` instead of recycling
        through the pool — the owner decides what "freed" means (the shard
        store parks the segment for reuse).  ``token`` is an opaque owner
        handle returned by :meth:`external_token` so the owner can
        recognise its own adoptions without a side table.
        """
        key = id(base)
        if key in self._storage:
            raise AllocationError(
                f"base {base.name or id(base)} already has storage; "
                "migrate (free, then adopt) instead of adopting over it"
            )
        storage = storage[: base.nelem]
        self._storage[key] = storage
        self._bases[key] = base
        self._external[key] = (release, token)
        self.bytes_allocated += base.nbytes
        self._note_peak()
        self.allocation_count += 1
        return storage

    def external_token(self, base: BaseArray):
        """The adoption token of ``base``, or ``None`` for ordinary storage."""
        entry = self._external.get(id(base))
        return entry[1] if entry is not None else None

    def set_data(self, base: BaseArray, data: np.ndarray) -> None:
        """Initialise ``base`` storage from an existing NumPy array.

        The data is copied (flattened) into the base's flat buffer so later
        byte-codes may mutate it freely without aliasing the caller's array.
        """
        flat = np.asarray(data, dtype=base.dtype.np_dtype).reshape(-1)
        if flat.size != base.nelem:
            raise AllocationError(
                f"data with {flat.size} elements does not fit base of {base.nelem} elements"
            )
        buffer = self.allocate(base, zero=False)
        np.copyto(buffer, flat)

    def free(self, base: BaseArray) -> None:
        """Release the storage behind ``base`` (no-op when not allocated).

        Dedicated buffers are recycled through the pool; a slot-backed base
        leaves its shared slot buffer in place for the slot's next occupant.
        """
        key = id(base)
        if key not in self._storage:
            return
        del self._storage[key]
        del self._bases[key]
        self.free_count += 1
        external = self._external.pop(key, None)
        if external is not None:
            # Externally-owned storage: the owner reclaims it.
            self.bytes_allocated -= base.nbytes
            external[0]()
            return
        if self._slot_of.pop(key, None) is not None:
            # Shared slot: the buffer is owned by the plan, not the base.
            return
        buffer = self._buffers.pop(key)
        self.bytes_allocated -= base.nbytes
        self.pool.release(buffer)

    def free_all(self) -> None:
        """Release every allocation (plan slots included)."""
        for key in list(self._storage):
            base = self._bases[key]
            self.free(base)
        self.clear_plan()

    def live_bases(self) -> Iterable[BaseArray]:
        """The base arrays that currently have storage."""
        return tuple(self._bases.values())

    # ------------------------------------------------------------------ #
    # View-level operations
    # ------------------------------------------------------------------ #

    def view_array(self, view: View) -> np.ndarray:
        """Return a writable NumPy window realizing ``view``.

        The window shares memory with the base storage, so writes through it
        are visible to later instructions.
        """
        buffer = self.allocate(view.base)
        itemsize = view.base.dtype.itemsize
        strides_bytes = tuple(stride * itemsize for stride in view.strides)
        window = np.lib.stride_tricks.as_strided(
            buffer[view.offset:],
            shape=view.shape,
            strides=strides_bytes,
            writeable=True,
        )
        return window

    def read_view(self, view: View) -> np.ndarray:
        """Return a *copy* of the data behind ``view`` (safe to hold)."""
        return np.array(self.view_array(view), copy=True)

    def write_view(self, view: View, data) -> None:
        """Copy ``data`` (broadcastable) into the elements addressed by ``view``."""
        window = self.view_array(view)
        np.copyto(window, data)

    def clone(self) -> "MemoryManager":
        """Deep-copy the manager: same bases, copied buffers.

        Used by the semantic verifier, which executes the original and the
        optimized program from identical initial states.  The clone gets
        dedicated storage for every base (slot sharing is a property of one
        plan-bound execution, not of the data), its own empty pool, and
        carries the accounting counters — including the true ``peak_bytes``
        high-water mark, which a fresh run from the cloned state could
        otherwise under-report.
        """
        other = MemoryManager()
        for key, storage in self._storage.items():
            base = self._bases[key]
            buffer = other.pool.acquire(base.nbytes)
            copied = other._carve(buffer, base)
            np.copyto(copied, storage)
            other._storage[key] = copied
            other._bases[key] = base
            other._buffers[key] = buffer
            other.bytes_allocated += base.nbytes
        other.peak_bytes = max(self.peak_bytes, other.bytes_allocated)
        other.window_peak_bytes = other.bytes_allocated
        other.allocation_count = self.allocation_count
        other.free_count = self.free_count
        return other
