"""Plan-time memory planning: liveness-driven buffer aliasing.

The optimizer's context-aware rewrites already lean on in-place storage
semantics (the power-expansion rewrite reuses the result tensor as scratch
space); this module extends the same idea to *every* temporary the runtime
materializes.  At plan-compilation time — once per plan-cache miss — the
optimized program's per-base lifetime intervals
(:func:`repro.core.analysis.live_intervals`) feed a linear-scan interval
allocator that:

* assigns temporaries with provably disjoint lifetimes to shared storage
  **slots** (one buffer, several bases over time),
* records **zero-fill waivers** for bases whose every element is written
  before it can be read (a recycled buffer can be handed over unzeroed),
* computes the **planned peak bytes** of the execution alongside the
  unplanned baseline, so benchmarks can assert the footprint reduction.

The result is a :class:`MemoryPlan`, cached inside the
:class:`~repro.runtime.plan.ExecutionPlan` exactly like the parallel
backend's tile decomposition: everything it stores is structural (canonical
base positions, byte sizes, boolean flags — never base identities), so a
warm plan-cache hit rebinds it onto the new flush's fresh bases in one
linear walk (:meth:`MemoryPlan.bind`) and replays the planning work for
free.

Safety invariants, mirroring the paper's "only if we do not use the
inverse for anything else" caveat:

* **observable bases are never aliased** — anything synced, read before
  its first in-program write (its value arrives from a previous flush or
  ``set_data``), or not freed within the program keeps dedicated storage;
* a slot is handed to its next occupant only after the previous occupant's
  *last use* — the trailing ``BH_FREE`` the front-end emits at the end of
  a batch does not delay reuse, because liveness already proves no access
  in between;
* a zero fill is waived only when a base-covering write precedes every
  read, so the differential harness stays bitwise-identical with planning
  on and off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bytecode.program import Program
from repro.core.analysis import BaseInterval, live_intervals
from repro.runtime.memory import BufferDirective, MemoryManager
from repro.runtime.plan import program_base_order
from repro.utils.config import Config, get_config


@dataclass
class MemoryPlan:
    """The replayable storage layout of one optimized program.

    Directives are keyed by *canonical base position* (first-use order, see
    :func:`~repro.runtime.plan.program_base_order`), never by base
    identity: the plan cache rebinds the optimized program onto fresh base
    arrays every flush, and the layout follows along positionally.
    """

    #: Canonical base position -> directive (slot assignment / zero waiver).
    directives: Dict[int, BufferDirective] = field(default_factory=dict)
    num_bases: int = 0
    num_slots: int = 0
    #: How many bases were folded onto shared slots.
    aliased_bases: int = 0
    #: Simulated peak bytes with slot sharing and last-use reclamation.
    planned_peak_bytes: int = 0
    #: Simulated peak bytes of the naive allocator (dedicated storage,
    #: reclaimed only at the ``BH_FREE``).
    unplanned_peak_bytes: int = 0
    #: Zero fills the plan waives per execution.
    zero_fills_waived: int = 0

    @classmethod
    def plan(cls, program: Program, config: Optional[Config] = None) -> "MemoryPlan":
        """Compute the storage layout for ``program`` (one linear scan)."""
        config = config if config is not None else get_config()
        order = program_base_order(program)
        position_of = {id(base): position for position, base in enumerate(order)}
        intervals = live_intervals(program)
        waive_zero = config.memory_zero_policy == "auto"

        directives: Dict[int, BufferDirective] = {}
        slots: List[_Slot] = []
        aliased = 0
        waived = 0
        for interval in intervals:  # already sorted by first access
            position = position_of[id(interval.base)]
            zero_fill = not (waive_zero and interval.fully_defined_before_read)
            if not zero_fill:
                waived += 1
            slot_id = None
            nbytes = interval.base.nbytes
            if interval.is_temporary:
                slot = _claim_slot(slots, interval)
                slot_id = slot.slot_id
                slot.capacity = max(slot.capacity, nbytes)
                slot.release_index = interval.last_use
                slot.first_start = min(slot.first_start, interval.start)
                slot.last_end = max(slot.last_end, interval.last_use)
                if len(slot.occupants) > 0:
                    aliased += 1
                slot.occupants.append(position)
            if slot_id is None and zero_fill:
                continue  # dedicated zeroed storage is the default anyway
            directives[position] = BufferDirective(
                slot=slot_id,
                slot_nbytes=nbytes if slot_id is None else 0,  # patched below
                zero_fill=zero_fill,
            )
        # Slot capacities are only final after the scan: patch them in.
        for slot in slots:
            for position in slot.occupants:
                directive = directives[position]
                directives[position] = BufferDirective(
                    slot=directive.slot,
                    slot_nbytes=slot.capacity,
                    zero_fill=directive.zero_fill,
                )

        planned, unplanned = _simulate_peaks(intervals, slots, len(program))
        return cls(
            directives=directives,
            num_bases=len(order),
            num_slots=len(slots),
            aliased_bases=aliased,
            planned_peak_bytes=planned,
            unplanned_peak_bytes=unplanned,
            zero_fills_waived=waived,
        )

    def bind(self, program: Program) -> Dict[int, BufferDirective]:
        """Map the layout onto ``program``'s concrete bases.

        ``program`` must be (a rebinding of) the program the plan was
        computed from; the walk is the same canonical enumeration, so
        position *i* of the bound program is position *i* of the planned
        one.  Returns ``id(base) -> directive`` ready for
        :meth:`~repro.runtime.memory.MemoryManager.apply_plan`.
        """
        bound: Dict[int, BufferDirective] = {}
        for position, base in enumerate(program_base_order(program)):
            directive = self.directives.get(position)
            if directive is not None:
                bound[id(base)] = directive
        return bound

    def stats(self) -> Dict[str, int]:
        """Planner counters for reporting."""
        return {
            "memory_plan_bases": self.num_bases,
            "memory_plan_slots": self.num_slots,
            "memory_plan_aliased_bases": self.aliased_bases,
            "memory_plan_planned_peak_bytes": self.planned_peak_bytes,
            "memory_plan_unplanned_peak_bytes": self.unplanned_peak_bytes,
            "memory_plan_zero_fills_waived": self.zero_fills_waived,
        }


@dataclass
class _Slot:
    """Linear-scan bookkeeping for one shared storage slot."""

    slot_id: int
    capacity: int
    #: Instruction index after which the current occupant is provably dead.
    release_index: int
    first_start: int
    last_end: int
    occupants: List[int] = field(default_factory=list)


def _claim_slot(slots: List[_Slot], interval: BaseInterval) -> _Slot:
    """The slot ``interval`` will occupy, reusing a released one when possible.

    Best fit first (smallest adequate capacity); otherwise the largest
    released slot is grown — its earlier occupants simply carve a prefix of
    the bigger buffer.  A fresh slot is opened only when every slot is
    still occupied at ``interval.start``.
    """
    released = [slot for slot in slots if slot.release_index < interval.start]
    adequate = [slot for slot in released if slot.capacity >= interval.base.nbytes]
    if adequate:
        return min(adequate, key=lambda slot: (slot.capacity, slot.slot_id))
    if released:
        return max(released, key=lambda slot: (slot.capacity, -slot.slot_id))
    slot = _Slot(
        slot_id=len(slots),
        capacity=interval.base.nbytes,
        release_index=interval.last_use,
        first_start=interval.start,
        last_end=interval.last_use,
    )
    slots.append(slot)
    return slot


def _simulate_peaks(
    intervals: List[BaseInterval], slots: List[_Slot], program_length: int
) -> Tuple[int, int]:
    """Planned vs. unplanned peak bytes over the program's timeline.

    Unplanned models the naive allocator: every base gets dedicated
    storage at its first access and releases it at its ``BH_FREE`` (or
    never).  Planned counts each shared slot once over the union of its
    occupants' lifetimes and dedicated bases as-is.
    """
    horizon = program_length + 1
    planned_deltas: Dict[int, int] = {}
    unplanned_deltas: Dict[int, int] = {}

    def add(deltas: Dict[int, int], start: int, stop: int, nbytes: int) -> None:
        deltas[start] = deltas.get(start, 0) + nbytes
        deltas[stop] = deltas.get(stop, 0) - nbytes

    for interval in intervals:
        nbytes = interval.base.nbytes
        release = interval.end + 1 if interval.freed else horizon
        add(unplanned_deltas, interval.start, release, nbytes)
        if interval.is_temporary:
            continue  # temporaries are counted once per slot, below
        add(planned_deltas, interval.start, release, nbytes)
    for slot in slots:
        add(planned_deltas, slot.first_start, slot.last_end + 1, slot.capacity)

    def peak(deltas: Dict[int, int]) -> int:
        level = 0
        highest = 0
        for _, delta in sorted(deltas.items()):
            level += delta
            highest = max(highest, level)
        return highest

    return peak(planned_deltas), peak(unplanned_deltas)


# --------------------------------------------------------------------------- #
# Plan attachment / binding (shared by every backend)
# --------------------------------------------------------------------------- #


def memory_plan_signature(config: Optional[Config] = None) -> tuple:
    """The settings a computed :class:`MemoryPlan` depends on."""
    config = config if config is not None else get_config()
    return (config.memory_plan_enabled, config.memory_zero_policy)


def attach_memory_plan(plan, config: Optional[Config] = None) -> None:
    """Compute and cache the memory plan on ``plan`` (idempotent per signature).

    Called from :meth:`~repro.runtime.backend.Backend.prepare_plan` on
    every plan-cache miss; replays of the plan skip straight to
    :func:`bind_memory_plan`.
    """
    config = config if config is not None else get_config()
    signature = memory_plan_signature(config)
    # Shared-plan safety: concurrent replays of one cached plan may both
    # notice a stale signature; the plan lock makes the (check, compute,
    # store) sequence atomic so no replay observes a half-swapped plan.
    with plan.lock:
        if plan.memory_signature == signature:
            return
        if config.memory_plan_enabled:
            plan.memory_plan = MemoryPlan.plan(plan.optimized, config)
        else:
            plan.memory_plan = None
        plan.memory_signature = signature


def bind_memory_plan(plan, program: Program, memory: MemoryManager) -> None:
    """Install ``plan``'s storage directives on ``memory`` for one execution.

    When the plan carries no memory plan the manager's directives are
    cleared instead — stale directives must never survive into an
    execution they were not bound for.
    """
    memory_plan = getattr(plan, "memory_plan", None)
    if memory_plan is None:
        memory.apply_plan(None)
        return
    memory.apply_plan(memory_plan.bind(program))
