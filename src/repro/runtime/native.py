"""The native backend: tiled execution through compiled C loop nests.

Subclasses the tiled parallel backend and replaces exactly one seam —
:meth:`~repro.runtime.parallel.ParallelBackend._map_launcher` — so the
plan-time tile decomposition, the memory planning, the reduction paths and
the serial interpreter fallbacks are *identical* to the parallel backend.
What changes is what runs per tile: when a kernel form lowers bitwise-safely
(:mod:`repro.codegen.loopir`), each tile calls into one compiled C function
instead of per-instruction NumPy dispatch; otherwise the step falls back to
the interpreted :class:`~repro.runtime.kernel.KernelTemplate`, making every
program executable regardless of codegen coverage.

Caching is three-layered:

1. a backend-local LRU from structural kernel key → launchable (or ``None``
   for forms that do not lower), so warm steps pay one dict lookup,
2. the process-wide loaded-artifact memo in :mod:`repro.codegen.cache`
   (content digest → ``CompiledKernel``), shared across backend instances,
3. the on-disk ``.so`` store, shared across processes and sessions.

Plans pre-compile their tiled map steps at plan time
(:meth:`prepare_plan`), so a warm plan-cache flush performs **zero**
lowering walks and zero compiler invocations.  Compile/cache outcomes are
counted cumulatively on the backend and windowed into each execution's
:class:`~repro.runtime.instrumentation.ExecutionStats`.
"""

from __future__ import annotations

import ctypes
import os
import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.bytecode.view import View
from repro.codegen.cache import (
    get_compiled_kernel,
    memory_cache_size,
    resolve_cache_dir,
)
from repro.codegen.compiler import CodegenError, select_mt_mode
from repro.codegen.emit_c import emit_kernel_source, emit_reduce_source
from repro.codegen.loopir import (
    LoopNest,
    LoweringError,
    ReduceNest,
    lower_kernel,
    lower_reduction,
)
from repro.runtime.kernel import prepare_kernel_launch
from repro.runtime.memory import MemoryManager
from repro.runtime.parallel import ParallelBackend
from repro.runtime.tiling import TiledMapStep, TiledReduceStep


class NativeKernelLaunch:
    """A compiled loop nest bound to its slot layout, launchable per tile.

    The call signature matches :class:`~repro.runtime.kernel.KernelTemplate`
    — ``(memory, views)`` with tile-sliced slot views — so the parallel
    scaffolding treats both interchangeably.  Geometry is marshalled per
    call (extents, byte strides, offset-folded base pointers); the foreign
    call releases the GIL, so tiles overlap on worker threads.
    """

    __slots__ = (
        "_fn",
        "_fn_mt",
        "_rank",
        "_itemsizes",
        "_dims_type",
        "_ptrs_type",
        "_strides_type",
        "elided_slots",
    )

    #: A compiled loop nest covers any geometry in one call, so the tiled
    #: scaffolding may run a whole map step as a single launch when no
    #: worker threads would consume the tiles (see ``_run_map``).
    single_pass = True

    def __init__(
        self,
        compiled,
        nest: LoopNest,
        slots: Sequence[View],
        mt_mode: str = "serial",
    ) -> None:
        self._fn = compiled.fn
        # The chunked entry point threads inside the artifact only in
        # pthread/openmp emission; a serial-mode artifact's mt symbol is a
        # plain forward, so multi-thread launches keep the per-tile path.
        self._fn_mt = compiled.fn_mt if mt_mode != "serial" else None
        self._rank = nest.rank
        self._itemsizes = tuple(view.dtype.itemsize for view in slots)
        #: Slots the compiled kernel keeps in registers: no storage is
        #: allocated or passed for them (the scaffolding skips their
        #: allocation too — see ``ParallelBackend._run_map``).
        self.elided_slots = nest.elided_slots
        num_slots = len(self._itemsizes)
        self._dims_type = ctypes.c_int64 * nest.rank
        self._ptrs_type = ctypes.c_void_p * num_slots
        self._strides_type = ctypes.c_int64 * (num_slots * nest.rank)

    @property
    def supports_mt(self) -> bool:
        """Whether one call can split the outer loop across in-kernel threads."""
        return self._fn_mt is not None

    def _marshal(self, memory: MemoryManager, views: Sequence[View]):
        rank = self._rank
        dims = self._dims_type(*views[0].shape)
        pointers = []
        strides = []
        for position, (view, itemsize) in enumerate(zip(views, self._itemsizes)):
            if position in self.elided_slots:
                pointers.append(0)
                strides.extend((0,) * rank)
                continue
            storage = memory.allocate(view.base)
            pointers.append(storage.ctypes.data + view.offset * itemsize)
            for stride in view.strides:
                strides.append(stride * itemsize)
        return dims, self._ptrs_type(*pointers), self._strides_type(*strides)

    def __call__(self, memory: MemoryManager, views: Sequence[View]) -> None:
        dims, pointers, strides = self._marshal(memory, views)
        self._fn(dims, pointers, strides)

    def launch_mt(
        self, memory: MemoryManager, views: Sequence[View], nthreads: int
    ) -> None:
        """Run the whole step as ONE foreign call; the artifact splits the
        outermost loop across its persistent worker pool."""
        dims, pointers, strides = self._marshal(memory, views)
        self._fn_mt(dims, pointers, strides, ctypes.c_int32(nthreads))


class NativeReduceLaunch:
    """A compiled reduction kernel bound to its geometry mapping.

    ABI (see :func:`repro.codegen.emit_c.emit_reduce_source`): ``dims`` are
    the *source* extents, ``ptrs`` is ``[source, output]``, and ``strides``
    carries the source byte strides followed by the output byte strides
    aligned to source axes with a zero lane at the reduced axis.
    """

    __slots__ = ("_fn", "_fn_mt", "_rank", "_axis", "_dims_type", "_ptrs_type", "_strides_type")

    def __init__(self, compiled, nest: ReduceNest, mt_mode: str = "serial") -> None:
        self._fn = compiled.fn
        self._fn_mt = compiled.fn_mt if mt_mode != "serial" else None
        self._rank = nest.rank
        self._axis = nest.axis
        self._dims_type = ctypes.c_int64 * nest.rank
        self._ptrs_type = ctypes.c_void_p * 2
        self._strides_type = ctypes.c_int64 * (2 * nest.rank)

    @property
    def supports_mt(self) -> bool:
        return self._fn_mt is not None

    def __call__(
        self,
        memory: MemoryManager,
        source_view: View,
        out_view: View,
        nthreads: int,
    ) -> bool:
        """Run the reduction; returns True when the chunked entry fired."""
        src_item = source_view.dtype.itemsize
        out_item = out_view.dtype.itemsize
        dims = self._dims_type(*source_view.shape)
        src_storage = memory.allocate(source_view.base)
        out_storage = memory.allocate(out_view.base)
        pointers = self._ptrs_type(
            src_storage.ctypes.data + source_view.offset * src_item,
            out_storage.ctypes.data + out_view.offset * out_item,
        )
        strides = [stride * src_item for stride in source_view.strides]
        out_position = 0
        for dim in range(self._rank):
            if dim == self._axis:
                strides.append(0)
            else:
                strides.append(out_view.strides[out_position] * out_item)
                out_position += 1
        packed = self._strides_type(*strides)
        if self._fn_mt is not None and nthreads > 1:
            self._fn_mt(dims, pointers, packed, ctypes.c_int32(nthreads))
            return True
        self._fn(dims, pointers, packed)
        return False


class NativeBackend(ParallelBackend):
    """Tiled executor that compiles eligible kernel forms to native code."""

    name = "native"

    def __init__(
        self,
        num_threads: Optional[int] = None,
        tile_elements: Optional[int] = None,
    ) -> None:
        super().__init__(num_threads=num_threads, tile_elements=tile_elements)
        # Structural kernel key (+ codegen signature) → NativeKernelLaunch,
        # or None for forms with no bitwise-safe lowering; LRU-bounded like
        # the engine's plan cache.
        self._native_cache: "OrderedDict[tuple, Optional[NativeKernelLaunch]]" = (
            OrderedDict()
        )
        self._native_capacity = 256
        self.native_compiles = 0
        self.native_disk_hits = 0
        self.native_memory_hits = 0
        self.native_kernel_launches = 0
        self.native_fallbacks = 0
        self.native_mt_launches = 0
        self.native_reductions_compiled = 0
        self.native_reduction_fallbacks = 0
        self.native_slots_elided = 0
        self.native_cache_hits = 0
        self.native_cache_misses = 0
        # Open stats window: counters snapshot taken when the engine first
        # touches the backend for a flush (prepare_plan), closed by
        # execute/execute_plan so plan-stage compiles land in that flush's
        # ExecutionStats.  Thread-local, because a service multiplexes many
        # concurrent flushes over this one instance and each flush's window
        # opens and closes on its own thread — a shared slot would tear.
        self._windows = threading.local()

    @property
    def _window_start(self) -> Optional[tuple]:
        return getattr(self._windows, "start", None)

    @_window_start.setter
    def _window_start(self, value: Optional[tuple]) -> None:
        self._windows.start = value

    # ------------------------------------------------------------------ #
    # Codegen resolution
    # ------------------------------------------------------------------ #

    def _codegen_signature(self, config) -> tuple:
        # The threading *mode* changes the emitted source and flags, so it
        # is part of the signature; the thread *count* is a runtime
        # argument of the artifact and deliberately is not.
        return (
            config.codegen_enabled,
            resolve_cache_dir(config.codegen_cache_dir),
            int(config.codegen_opt_level),
            config.codegen_disk_cache_enabled,
            select_mt_mode() if config.codegen_enabled else "serial",
            config.codegen_reductions_enabled,
        )

    def _resolve_codegen_threads(self, config, fallback: int) -> int:
        """The thread count handed to ``repro_kernel_mt`` launches.

        ``codegen_threads`` > ``REPRO_CODEGEN_THREADS`` env var > the
        parallel worker count.  Purely runtime: changing it never touches
        plan tilings or compiled artifacts.
        """
        threads = config.codegen_threads
        if threads is None:
            env = os.environ.get("REPRO_CODEGEN_THREADS")
            if env:
                try:
                    threads = int(env)
                except ValueError:
                    threads = None
        if threads is None:
            threads = fallback
        return max(1, int(threads))

    def _native_launch(
        self,
        key: tuple,
        slots: Sequence[View],
        instructions,
        local_slots: frozenset = frozenset(),
    ) -> Optional[NativeKernelLaunch]:
        """Resolve a kernel form to a compiled launchable, or ``None``.

        ``None`` — cached as such — means the form has no native lowering
        (or compilation failed); the caller uses the interpreted template.
        ``local_slots`` (plan-time liveness, part of the cache key) names
        slots whose stores the compiled kernel elides entirely.
        """
        config = self._effective_config()
        if not config.codegen_enabled:
            return None
        signature = self._codegen_signature(config)
        cache_key = (key, local_slots, signature)
        with self._cache_lock:
            if cache_key in self._native_cache:
                self._native_cache.move_to_end(cache_key)
                self.native_cache_hits += 1
                return self._native_cache[cache_key]
            self.native_cache_misses += 1
        # Lowering and compilation run outside the lock; concurrent misses
        # of one form may both walk here, but the process-wide digest memo
        # latches the actual compile to exactly one of them.
        launch: Optional[NativeKernelLaunch] = None
        outcome = None
        try:
            nest = lower_kernel(instructions, local_slots)
            mt_mode = select_mt_mode()
            source = emit_kernel_source(nest, mt_mode=mt_mode)
            compiled, outcome = get_compiled_kernel(
                source,
                opt_level=config.codegen_opt_level,
                cache_dir=config.codegen_cache_dir,
                use_disk=config.codegen_disk_cache_enabled,
                mt_mode=mt_mode,
            )
            launch = NativeKernelLaunch(compiled, nest, slots, mt_mode)
        except (LoweringError, CodegenError):
            # No lowering, no compiler, or a toolchain failure: degrade to
            # the interpreted template — and remember, so the next launch
            # of this form pays one dict lookup instead of re-diagnosing.
            launch = None
        with self._cache_lock:
            if outcome == "compiled":
                self.native_compiles += 1
            elif outcome == "disk":
                self.native_disk_hits += 1
            elif outcome == "memory":
                self.native_memory_hits += 1
            if cache_key not in self._native_cache:
                self._native_cache[cache_key] = launch
                while len(self._native_cache) > self._native_capacity:
                    self._native_cache.popitem(last=False)
            return self._native_cache[cache_key]

    def _native_reduce_launch(
        self, instruction, step: TiledReduceStep
    ) -> Optional[NativeReduceLaunch]:
        """Resolve a tiled reduction to a compiled launchable, or ``None``.

        Shares the backend LRU with map forms; the key is structural
        (opcode, dtypes, rank, axis, tiling shape), so one artifact serves
        every rebind and every array size of the same canonical reduction.
        """
        config = self._effective_config()
        if not (config.codegen_enabled and config.codegen_reductions_enabled):
            return None
        source = instruction.inputs[0]
        out = instruction.out
        if out is None:
            return None
        signature = self._codegen_signature(config)
        key = (
            "reduce",
            instruction.opcode,
            source.dtype.name,
            out.dtype.name,
            len(source.shape),
            int(instruction.constants[0].value),
            step.combine,
            step.tile_axis,
        )
        cache_key = (key, frozenset(), signature)
        with self._cache_lock:
            if cache_key in self._native_cache:
                self._native_cache.move_to_end(cache_key)
                self.native_cache_hits += 1
                return self._native_cache[cache_key]
            self.native_cache_misses += 1
        launch: Optional[NativeReduceLaunch] = None
        outcome = None
        try:
            nest = lower_reduction(instruction, step.combine, step.tile_axis)
            mt_mode = select_mt_mode()
            source_c = emit_reduce_source(nest, mt_mode=mt_mode)
            compiled, outcome = get_compiled_kernel(
                source_c,
                opt_level=config.codegen_opt_level,
                cache_dir=config.codegen_cache_dir,
                use_disk=config.codegen_disk_cache_enabled,
                mt_mode=mt_mode,
            )
            launch = NativeReduceLaunch(compiled, nest, mt_mode)
        except (LoweringError, CodegenError):
            launch = None
        with self._cache_lock:
            if outcome == "compiled":
                self.native_compiles += 1
            elif outcome == "disk":
                self.native_disk_hits += 1
            elif outcome == "memory":
                self.native_memory_hits += 1
            if cache_key not in self._native_cache:
                self._native_cache[cache_key] = launch
                while len(self._native_cache) > self._native_capacity:
                    self._native_cache.popitem(last=False)
            return self._native_cache[cache_key]

    # ------------------------------------------------------------------ #
    # Parallel-backend seams
    # ------------------------------------------------------------------ #

    def _map_launcher(self, instructions, step=None):
        key, slots, make_template = prepare_kernel_launch(instructions)
        local_slots = getattr(step, "local_slots", frozenset())
        launch = self._native_launch(key, slots, instructions, local_slots)
        if launch is not None:
            with self._cache_lock:
                self.native_kernel_launches += 1
                self.native_slots_elided += len(launch.elided_slots)
            return slots, launch
        with self._cache_lock:
            self.native_fallbacks += 1
        return slots, self._resolve_template(key, make_template)

    def _launch_map(self, launcher, slots, step, memory, stats, threads) -> None:
        """Collapse a multi-thread launch of a chunk-capable compiled
        kernel into ONE ``repro_kernel_mt`` call.

        The artifact block-partitions the outermost loop over its
        persistent in-kernel pool, so the whole fused step costs a single
        ctypes round (which releases the GIL) regardless of thread count.
        Hazard analysis already happened at plan time: only splittable
        nests become :class:`TiledMapStep`s, and serial-hazard nests never
        reach this seam.  Interpreted templates, serial-mode artifacts and
        single-thread launches keep the inherited per-tile machinery.
        """
        if isinstance(launcher, NativeKernelLaunch) and launcher.supports_mt:
            nthreads = self._resolve_codegen_threads(self._effective_config(), threads)
            if nthreads > 1:
                stats.tiles_executed += 1
                launcher.launch_mt(memory, slots, nthreads)
                with self._cache_lock:
                    self.native_mt_launches += 1
                return
        super()._launch_map(launcher, slots, step, memory, stats, threads)

    def _run_reduce(self, instruction, step, memory, stats, threads) -> None:
        """Run a tiled reduction through a compiled kernel when one exists.

        The compiled path is one foreign call: n-D forms chunk the
        partition axis into disjoint output slices; rank-1 combine forms
        collect per-chunk partials and tree-combine them inside the
        artifact in the tiled backend's fixed order.  Forms that do not
        lower (or with reductions disabled) fall back to the inherited
        interpreted tiled paths, counted as reduction fallbacks.
        """
        launch = self._native_reduce_launch(instruction, step)
        source_view = instruction.inputs[0]
        if launch is not None and 0 not in source_view.shape:
            stats.kernel_launches += 1
            stats.record_instruction(instruction.opcode)
            self._interpreter._account_traffic(instruction, memory, stats)
            stats.tiled_instructions += 1
            stats.tiles_executed += 1
            nthreads = self._resolve_codegen_threads(self._effective_config(), threads)
            used_mt = launch(memory, source_view, instruction.out, nthreads)
            with self._cache_lock:
                self.native_reductions_compiled += 1
                if used_mt:
                    self.native_mt_launches += 1
            return
        with self._cache_lock:
            self.native_reduction_fallbacks += 1
        super()._run_reduce(instruction, step, memory, stats, threads)

    def prepare_plan(self, plan) -> None:
        """Tile (inherited) and pre-compile the plan's kernel forms.

        Pre-compilation at plan time means a warm plan replay launches
        straight into cached artifacts; the ``native_signature`` stamp
        makes the warm path skip even the per-step slot walks.
        """
        if self._window_start is None:
            self._window_start = self._counters_snapshot()
        super().prepare_plan(plan)
        config = self._effective_config()
        with plan.lock:
            if not config.codegen_enabled or plan.tiling is None:
                plan.native_signature = None
                return
            signature = (self._codegen_signature(config), plan.tiling_signature)
            if plan.native_signature == signature:
                return
            for step in plan.tiling.steps:
                if isinstance(step, TiledReduceStep):
                    self._native_reduce_launch(plan.optimized[step.index], step)
                    continue
                if not isinstance(step, TiledMapStep):
                    continue
                instruction = plan.optimized[step.index]
                instructions = (
                    instruction.kernel if instruction.is_fused() else (instruction,)
                )
                key, slots, _ = prepare_kernel_launch(instructions)
                self._native_launch(key, slots, instructions, step.local_slots)
            plan.native_signature = signature

    # ------------------------------------------------------------------ #
    # Per-execution stats windows
    # ------------------------------------------------------------------ #

    def _counters_snapshot(self) -> tuple:
        return (
            self.native_compiles,
            self.native_disk_hits,
            self.native_memory_hits,
            self.native_kernel_launches,
            self.native_fallbacks,
            self.native_mt_launches,
            self.native_reductions_compiled,
            self.native_reduction_fallbacks,
            self.native_slots_elided,
        )

    def _close_window(self, stats) -> None:
        start = self._window_start
        self._window_start = None
        if start is None:
            return
        now = self._counters_snapshot()
        stats.native_compiles += now[0] - start[0]
        stats.native_disk_hits += now[1] - start[1]
        stats.native_memory_hits += now[2] - start[2]
        stats.native_kernel_launches += now[3] - start[3]
        stats.native_fallbacks += now[4] - start[4]
        stats.native_mt_launches += now[5] - start[5]
        stats.native_reductions_compiled += now[6] - start[6]
        stats.native_reduction_fallbacks += now[7] - start[7]
        stats.native_slots_elided += now[8] - start[8]

    def execute_plan(self, plan, program, memory=None):
        if self._window_start is None:
            self._window_start = self._counters_snapshot()
        try:
            result = super().execute_plan(plan, program, memory)
        except BaseException:
            self._window_start = None
            raise
        self._close_window(result.stats)
        return result

    def execute(self, program, memory=None):
        if self._window_start is None:
            self._window_start = self._counters_snapshot()
        try:
            result = super().execute(program, memory)
        except BaseException:
            self._window_start = None
            raise
        self._close_window(result.stats)
        return result

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> Dict[str, int]:
        stats = super().cache_stats()
        stats.update(
            {
                "native_compiles": self.native_compiles,
                "native_disk_hits": self.native_disk_hits,
                "native_memory_hits": self.native_memory_hits,
                "native_kernel_launches": self.native_kernel_launches,
                "native_fallbacks": self.native_fallbacks,
                "native_mt_launches": self.native_mt_launches,
                "native_reductions_compiled": self.native_reductions_compiled,
                "native_reduction_fallbacks": self.native_reduction_fallbacks,
                "native_slots_elided": self.native_slots_elided,
                "native_cache_hits": self.native_cache_hits,
                "native_cache_misses": self.native_cache_misses,
                "native_cache_size": len(self._native_cache),
                "native_loaded_artifacts": memory_cache_size(),
            }
        )
        return stats
