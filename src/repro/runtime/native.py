"""The native backend: tiled execution through compiled C loop nests.

Subclasses the tiled parallel backend and replaces exactly one seam —
:meth:`~repro.runtime.parallel.ParallelBackend._map_launcher` — so the
plan-time tile decomposition, the memory planning, the reduction paths and
the serial interpreter fallbacks are *identical* to the parallel backend.
What changes is what runs per tile: when a kernel form lowers bitwise-safely
(:mod:`repro.codegen.loopir`), each tile calls into one compiled C function
instead of per-instruction NumPy dispatch; otherwise the step falls back to
the interpreted :class:`~repro.runtime.kernel.KernelTemplate`, making every
program executable regardless of codegen coverage.

Caching is three-layered:

1. a backend-local LRU from structural kernel key → launchable (or ``None``
   for forms that do not lower), so warm steps pay one dict lookup,
2. the process-wide loaded-artifact memo in :mod:`repro.codegen.cache`
   (content digest → ``CompiledKernel``), shared across backend instances,
3. the on-disk ``.so`` store, shared across processes and sessions.

Plans pre-compile their tiled map steps at plan time
(:meth:`prepare_plan`), so a warm plan-cache flush performs **zero**
lowering walks and zero compiler invocations.  Compile/cache outcomes are
counted cumulatively on the backend and windowed into each execution's
:class:`~repro.runtime.instrumentation.ExecutionStats`.
"""

from __future__ import annotations

import ctypes
import threading
from collections import OrderedDict
from typing import Dict, Optional, Sequence, Tuple

from repro.bytecode.view import View
from repro.codegen.cache import (
    get_compiled_kernel,
    memory_cache_size,
    resolve_cache_dir,
)
from repro.codegen.compiler import CodegenError
from repro.codegen.emit_c import emit_kernel_source
from repro.codegen.loopir import LoopNest, LoweringError, lower_kernel
from repro.runtime.kernel import prepare_kernel_launch
from repro.runtime.memory import MemoryManager
from repro.runtime.parallel import ParallelBackend
from repro.runtime.tiling import TiledMapStep


class NativeKernelLaunch:
    """A compiled loop nest bound to its slot layout, launchable per tile.

    The call signature matches :class:`~repro.runtime.kernel.KernelTemplate`
    — ``(memory, views)`` with tile-sliced slot views — so the parallel
    scaffolding treats both interchangeably.  Geometry is marshalled per
    call (extents, byte strides, offset-folded base pointers); the foreign
    call releases the GIL, so tiles overlap on worker threads.
    """

    __slots__ = (
        "_fn",
        "_rank",
        "_itemsizes",
        "_dims_type",
        "_ptrs_type",
        "_strides_type",
        "elided_slots",
    )

    #: A compiled loop nest covers any geometry in one call, so the tiled
    #: scaffolding may run a whole map step as a single launch when no
    #: worker threads would consume the tiles (see ``_run_map``).
    single_pass = True

    def __init__(self, compiled, nest: LoopNest, slots: Sequence[View]) -> None:
        self._fn = compiled.fn
        self._rank = nest.rank
        self._itemsizes = tuple(view.dtype.itemsize for view in slots)
        #: Slots the compiled kernel keeps in registers: no storage is
        #: allocated or passed for them (the scaffolding skips their
        #: allocation too — see ``ParallelBackend._run_map``).
        self.elided_slots = nest.elided_slots
        num_slots = len(self._itemsizes)
        self._dims_type = ctypes.c_int64 * nest.rank
        self._ptrs_type = ctypes.c_void_p * num_slots
        self._strides_type = ctypes.c_int64 * (num_slots * nest.rank)

    def __call__(self, memory: MemoryManager, views: Sequence[View]) -> None:
        rank = self._rank
        dims = self._dims_type(*views[0].shape)
        pointers = []
        strides = []
        for position, (view, itemsize) in enumerate(zip(views, self._itemsizes)):
            if position in self.elided_slots:
                pointers.append(0)
                strides.extend((0,) * rank)
                continue
            storage = memory.allocate(view.base)
            pointers.append(storage.ctypes.data + view.offset * itemsize)
            for stride in view.strides:
                strides.append(stride * itemsize)
        self._fn(dims, self._ptrs_type(*pointers), self._strides_type(*strides))


class NativeBackend(ParallelBackend):
    """Tiled executor that compiles eligible kernel forms to native code."""

    name = "native"

    def __init__(
        self,
        num_threads: Optional[int] = None,
        tile_elements: Optional[int] = None,
    ) -> None:
        super().__init__(num_threads=num_threads, tile_elements=tile_elements)
        # Structural kernel key (+ codegen signature) → NativeKernelLaunch,
        # or None for forms with no bitwise-safe lowering; LRU-bounded like
        # the engine's plan cache.
        self._native_cache: "OrderedDict[tuple, Optional[NativeKernelLaunch]]" = (
            OrderedDict()
        )
        self._native_capacity = 256
        self.native_compiles = 0
        self.native_disk_hits = 0
        self.native_memory_hits = 0
        self.native_kernel_launches = 0
        self.native_fallbacks = 0
        self.native_cache_hits = 0
        self.native_cache_misses = 0
        # Open stats window: counters snapshot taken when the engine first
        # touches the backend for a flush (prepare_plan), closed by
        # execute/execute_plan so plan-stage compiles land in that flush's
        # ExecutionStats.  Thread-local, because a service multiplexes many
        # concurrent flushes over this one instance and each flush's window
        # opens and closes on its own thread — a shared slot would tear.
        self._windows = threading.local()

    @property
    def _window_start(self) -> Optional[tuple]:
        return getattr(self._windows, "start", None)

    @_window_start.setter
    def _window_start(self, value: Optional[tuple]) -> None:
        self._windows.start = value

    # ------------------------------------------------------------------ #
    # Codegen resolution
    # ------------------------------------------------------------------ #

    def _codegen_signature(self, config) -> tuple:
        return (
            config.codegen_enabled,
            resolve_cache_dir(config.codegen_cache_dir),
            int(config.codegen_opt_level),
            config.codegen_disk_cache_enabled,
        )

    def _native_launch(
        self,
        key: tuple,
        slots: Sequence[View],
        instructions,
        local_slots: frozenset = frozenset(),
    ) -> Optional[NativeKernelLaunch]:
        """Resolve a kernel form to a compiled launchable, or ``None``.

        ``None`` — cached as such — means the form has no native lowering
        (or compilation failed); the caller uses the interpreted template.
        ``local_slots`` (plan-time liveness, part of the cache key) names
        slots whose stores the compiled kernel elides entirely.
        """
        config = self._effective_config()
        if not config.codegen_enabled:
            return None
        signature = self._codegen_signature(config)
        cache_key = (key, local_slots, signature)
        with self._cache_lock:
            if cache_key in self._native_cache:
                self._native_cache.move_to_end(cache_key)
                self.native_cache_hits += 1
                return self._native_cache[cache_key]
            self.native_cache_misses += 1
        # Lowering and compilation run outside the lock; concurrent misses
        # of one form may both walk here, but the process-wide digest memo
        # latches the actual compile to exactly one of them.
        launch: Optional[NativeKernelLaunch] = None
        outcome = None
        try:
            nest = lower_kernel(instructions, local_slots)
            source = emit_kernel_source(nest)
            compiled, outcome = get_compiled_kernel(
                source,
                opt_level=config.codegen_opt_level,
                cache_dir=config.codegen_cache_dir,
                use_disk=config.codegen_disk_cache_enabled,
            )
            launch = NativeKernelLaunch(compiled, nest, slots)
        except (LoweringError, CodegenError):
            # No lowering, no compiler, or a toolchain failure: degrade to
            # the interpreted template — and remember, so the next launch
            # of this form pays one dict lookup instead of re-diagnosing.
            launch = None
        with self._cache_lock:
            if outcome == "compiled":
                self.native_compiles += 1
            elif outcome == "disk":
                self.native_disk_hits += 1
            elif outcome == "memory":
                self.native_memory_hits += 1
            if cache_key not in self._native_cache:
                self._native_cache[cache_key] = launch
                while len(self._native_cache) > self._native_capacity:
                    self._native_cache.popitem(last=False)
            return self._native_cache[cache_key]

    # ------------------------------------------------------------------ #
    # Parallel-backend seams
    # ------------------------------------------------------------------ #

    def _map_launcher(self, instructions, step=None):
        key, slots, make_template = prepare_kernel_launch(instructions)
        local_slots = getattr(step, "local_slots", frozenset())
        launch = self._native_launch(key, slots, instructions, local_slots)
        if launch is not None:
            with self._cache_lock:
                self.native_kernel_launches += 1
            return slots, launch
        with self._cache_lock:
            self.native_fallbacks += 1
        return slots, self._resolve_template(key, make_template)

    def prepare_plan(self, plan) -> None:
        """Tile (inherited) and pre-compile the plan's kernel forms.

        Pre-compilation at plan time means a warm plan replay launches
        straight into cached artifacts; the ``native_signature`` stamp
        makes the warm path skip even the per-step slot walks.
        """
        if self._window_start is None:
            self._window_start = self._counters_snapshot()
        super().prepare_plan(plan)
        config = self._effective_config()
        with plan.lock:
            if not config.codegen_enabled or plan.tiling is None:
                plan.native_signature = None
                return
            signature = (self._codegen_signature(config), plan.tiling_signature)
            if plan.native_signature == signature:
                return
            for step in plan.tiling.steps:
                if not isinstance(step, TiledMapStep):
                    continue
                instruction = plan.optimized[step.index]
                instructions = (
                    instruction.kernel if instruction.is_fused() else (instruction,)
                )
                key, slots, _ = prepare_kernel_launch(instructions)
                self._native_launch(key, slots, instructions, step.local_slots)
            plan.native_signature = signature

    # ------------------------------------------------------------------ #
    # Per-execution stats windows
    # ------------------------------------------------------------------ #

    def _counters_snapshot(self) -> tuple:
        return (
            self.native_compiles,
            self.native_disk_hits,
            self.native_memory_hits,
            self.native_kernel_launches,
            self.native_fallbacks,
        )

    def _close_window(self, stats) -> None:
        start = self._window_start
        self._window_start = None
        if start is None:
            return
        now = self._counters_snapshot()
        stats.native_compiles += now[0] - start[0]
        stats.native_disk_hits += now[1] - start[1]
        stats.native_memory_hits += now[2] - start[2]
        stats.native_kernel_launches += now[3] - start[3]
        stats.native_fallbacks += now[4] - start[4]

    def execute_plan(self, plan, program, memory=None):
        if self._window_start is None:
            self._window_start = self._counters_snapshot()
        try:
            result = super().execute_plan(plan, program, memory)
        except BaseException:
            self._window_start = None
            raise
        self._close_window(result.stats)
        return result

    def execute(self, program, memory=None):
        if self._window_start is None:
            self._window_start = self._counters_snapshot()
        try:
            result = super().execute(program, memory)
        except BaseException:
            self._window_start = None
            raise
        self._close_window(result.stats)
        return result

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def cache_stats(self) -> Dict[str, int]:
        stats = super().cache_stats()
        stats.update(
            {
                "native_compiles": self.native_compiles,
                "native_disk_hits": self.native_disk_hits,
                "native_memory_hits": self.native_memory_hits,
                "native_kernel_launches": self.native_kernel_launches,
                "native_fallbacks": self.native_fallbacks,
                "native_cache_hits": self.native_cache_hits,
                "native_cache_misses": self.native_cache_misses,
                "native_cache_size": len(self._native_cache),
                "native_loaded_artifacts": memory_cache_size(),
            }
        )
        return stats
