"""The tiled, multi-threaded shared-memory backend.

Executes an optimized program step-by-step following a plan-time
:class:`~repro.runtime.tiling.TileDecomposition`:

* tiled element-wise / fused steps launch one compiled
  :class:`~repro.runtime.kernel.KernelTemplate` per tile over row-sliced
  views — independent tiles are distributed over a persistent
  ``ThreadPoolExecutor``, and every tile's working set is cache-sized,
* tiled reductions either write disjoint output slices directly (n-D
  inputs, bit-identical to the serial reduction) or tree-combine per-tile
  partial results (full 1-D reductions),
* everything non-splittable — generators, dense linear algebra, system
  directives — falls back to the reference interpreter, serially and in
  program order.

Thread-safety model: tiles of one step write disjoint row blocks of NumPy
buffers, every base is allocated *before* tiles are submitted (so workers
never mutate the memory manager), and steps are separated by a join —
cross-step dependencies therefore never race.  NumPy releases the GIL on
large-buffer loops, so worker threads genuinely overlap on multi-core
hosts; on a single core the backend still wins by keeping each tile's
working set cache-resident across all fused operations instead of
streaming full arrays once per byte-code.

The tile decomposition itself is computed **once at plan time** (see
:meth:`prepare_plan`) and cached inside the
:class:`~repro.runtime.plan.ExecutionPlan`, so warm flushes through the
engine's plan cache pay zero re-tiling cost; plan-less executions amortize
through a backend-local fingerprint-keyed LRU instead.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import REDUCE_TO_ELEMENTWISE, opcode_info
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.cluster.partition import partition_length
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.kernel import KernelTemplate, prepare_kernel_launch
from repro.runtime.memory import MemoryManager
from repro.runtime.memplan import bind_memory_plan
from repro.runtime.plan import program_fingerprint
from repro.runtime.tiling import (
    SerialStep,
    TileDecomposition,
    TiledMapStep,
    TiledReduceStep,
    TileSpan,
    decompose,
    resolve_num_threads,
    slice_view,
)
from repro.utils.config import get_config
from repro.utils.locking import ContendedLock


class ParallelBackend(Backend):
    """Tiled multi-threaded executor with plan-time tile decomposition."""

    name = "parallel"

    def __init__(
        self,
        num_threads: Optional[int] = None,
        tile_elements: Optional[int] = None,
    ) -> None:
        """
        Parameters
        ----------
        num_threads:
            Worker-thread count; defaults to the configuration's
            ``parallel_num_threads`` (itself defaulting to the host's CPU
            count).
        tile_elements:
            Target elements per tile; defaults to the configuration's
            ``parallel_tile_elements``.
        """
        self._configured_threads = num_threads
        self._configured_tile_elements = tile_elements
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_size = 0
        self._interpreter = NumPyInterpreter()
        self._template_cache: Dict[tuple, KernelTemplate] = {}
        self.template_hits = 0
        self.template_misses = 0
        # (fusion schedule, decomposition) pairs for plan-less executions,
        # keyed by (fingerprint, tiling- and scheduling-relevant config);
        # plans carry their own decomposition of the already-scheduled
        # optimized program.
        self._tiling_cache: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._tiling_capacity = max(1, get_config().plan_cache_size)
        self.tiling_hits = 0
        self.tiling_misses = 0
        # One lock covers the backend-local caches (templates, tilings,
        # their counters) and pool construction: concurrent sessions
        # sharing this instance mutate them only under it.  Template and
        # schedule *construction* happens outside the lock; a rare
        # duplicate build is benign, a corrupted LRU is not.
        self._cache_lock = ContendedLock()

    # ------------------------------------------------------------------ #
    # Thread pool
    # ------------------------------------------------------------------ #

    def num_threads(self) -> int:
        """The effective worker-thread count for the next execution."""
        if self._configured_threads is not None:
            return max(1, int(self._configured_threads))
        return resolve_num_threads()

    def _executor(self, threads: int) -> ThreadPoolExecutor:
        """The persistent pool, rebuilt only when the thread count changes."""
        with self._cache_lock:
            if self._pool is None or self._pool_size != threads:
                if self._pool is not None:
                    self._pool.shutdown(wait=True)
                self._pool = ThreadPoolExecutor(
                    max_workers=threads, thread_name_prefix="repro-tile"
                )
                self._pool_size = threads
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; a new one is made on demand)."""
        with self._cache_lock:
            pool, self._pool, self._pool_size = self._pool, None, 0
        if pool is not None:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # Plan integration
    # ------------------------------------------------------------------ #

    def _effective_config(self):
        """The global configuration with this instance's overrides applied."""
        config = get_config()
        overrides = {}
        if self._configured_tile_elements is not None:
            overrides["parallel_tile_elements"] = self._configured_tile_elements
        if self._configured_threads is not None:
            overrides["parallel_num_threads"] = self._configured_threads
        return config.replace(**overrides) if overrides else config

    def _tiling_signature(self) -> tuple:
        """The tiling-relevant settings a decomposition depends on."""
        config = self._effective_config()
        return (
            config.parallel_tile_elements,
            config.parallel_serial_threshold,
            resolve_num_threads(config),
        )

    def _decompose(self, program: Program) -> TileDecomposition:
        return decompose(program, self._effective_config())

    def prepare_plan(self, plan) -> None:
        """Compute the tile decomposition once, at plan time.

        The engine calls this when a plan is compiled (or primed); the
        decomposition is structural, so it stays valid for every rebound
        replay of the plan — warm flushes skip re-tiling entirely.  The
        signature check covers instances with *constructor* overrides,
        which the engine's config-signature cache key cannot see: a plan
        tiled by a differently-configured instance is re-tiled, never
        replayed stale.
        """
        super().prepare_plan(plan)  # liveness-driven memory plan
        signature = self._tiling_signature()
        with plan.lock:
            if (
                getattr(plan, "tiling", None) is None
                or plan.tiling_signature != signature
            ):
                plan.tiling = self._decompose(plan.optimized)
                plan.tiling_signature = signature
        # The base class checked the plan before the tiling existed;
        # re-check now that it does (no-op unless ``check_ir`` is on).
        from repro.checks.plancheck import maybe_check_plan

        maybe_check_plan(plan)

    def execute_plan(
        self, plan, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        """Execute a bound program with its plan's cached decomposition."""
        self.prepare_plan(plan)
        memory = memory if memory is not None else MemoryManager()
        bind_memory_plan(plan, program, memory)
        return self._run(program, plan.tiling, memory)

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        """Execute without a plan; schedules and decompositions amortize via a local LRU.

        Plan-less programs have not been through the optimizer's fusion
        pass, so the backend runs the shared fusion-scheduling seam itself:
        the (structural) schedule clusters fusable byte-codes into kernels,
        and the tile decomposition is computed over the scheduled program.
        Both artifacts are cached by fingerprint; only the cheap linear
        materialization onto the concrete program is paid per execution.
        """
        from repro.core.schedule import compute_schedule, schedule_signature

        config = self._effective_config()
        key = (
            (program_fingerprint(program),)
            + self._tiling_signature()
            + schedule_signature(config)
        )
        with self._cache_lock:
            cached = self._tiling_cache.get(key)
            if cached is not None:
                self._tiling_cache.move_to_end(key)
                self.tiling_hits += 1
            else:
                self.tiling_misses += 1
        if cached is not None:
            schedule, tiling = cached
            executable = schedule.materialize(program)
        else:
            # Analysis runs outside the lock: concurrent first executions
            # of one fingerprint may both pay it, but the insert is atomic.
            schedule = compute_schedule(program, config)
            executable = schedule.materialize(program)
            tiling = decompose(executable, config)
            with self._cache_lock:
                self._tiling_cache[key] = (schedule, tiling)
                while len(self._tiling_cache) > self._tiling_capacity:
                    self._tiling_cache.popitem(last=False)
        return self._run(executable, tiling, memory)

    def cache_stats(self) -> Dict[str, int]:
        """Tile-template and decomposition cache counters."""
        return {
            "tile_template_hits": self.template_hits,
            "tile_template_misses": self.template_misses,
            "tile_template_size": len(self._template_cache),
            "tiling_cache_hits": self.tiling_hits,
            "tiling_cache_misses": self.tiling_misses,
            "tiling_cache_size": len(self._tiling_cache),
            "backend_lock_contentions": self._cache_lock.contentions,
        }

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def _run(
        self,
        program: Program,
        tiling: TileDecomposition,
        memory: Optional[MemoryManager],
    ) -> ExecutionResult:
        memory = memory if memory is not None else MemoryManager()
        stats = ExecutionStats(backend_name=self.name)
        threads = self.num_threads()
        stats.threads_used = threads
        start = time.perf_counter()
        for step in tiling.steps:
            instruction = program[step.index]
            if isinstance(step, SerialStep):
                if not instruction.is_system():
                    stats.serial_fallbacks += 1
                self._interpreter._execute_instruction(
                    instruction, memory, stats, top_level=True
                )
            elif isinstance(step, TiledMapStep):
                self._run_map(instruction, step, memory, stats, threads)
            else:
                self._run_reduce(instruction, step, memory, stats, threads)
        stats.wall_time_seconds = time.perf_counter() - start
        return ExecutionResult(memory=memory, stats=stats)

    def _scatter(self, tasks: List, threads: int) -> None:
        """Run thunks across the pool in contiguous blocks; serial when moot.

        One submitted future per worker (not per tile) keeps submission
        overhead independent of the tile count.
        """
        if threads <= 1 or len(tasks) <= 1:
            for task in tasks:
                task()
            return
        pool = self._executor(threads)
        workers = min(threads, len(tasks))

        def run_block(block: List) -> None:
            for task in block:
                task()

        futures = []
        for start, count in partition_length(len(tasks), workers):
            if count == 0:
                continue
            futures.append(pool.submit(run_block, tasks[start : start + count]))
        for future in futures:
            future.result()

    def _run_map(
        self,
        instruction: Instruction,
        step: TiledMapStep,
        memory: MemoryManager,
        stats: ExecutionStats,
        threads: int,
    ) -> None:
        instructions = instruction.kernel if instruction.is_fused() else (instruction,)
        stats.kernel_launches += 1
        if instruction.is_fused():
            stats.record_instruction(instruction.opcode)
        for inner in instructions:
            stats.record_instruction(inner.opcode)
            self._interpreter._account_traffic(inner, memory, stats)
        slots, launcher = self._map_launcher(instructions, step)
        # Allocate every base up front: worker threads must never mutate
        # the memory manager.  Slots the launcher elides (kernel-local
        # temporaries a compiled kernel keeps in registers) never
        # materialize at all.
        elided = getattr(launcher, "elided_slots", ())
        for position, view in enumerate(slots):
            if position not in elided:
                memory.allocate(view.base)
        stats.tiled_instructions += len(instructions)
        self._launch_map(launcher, slots, step, memory, stats, threads)

    def _launch_map(
        self,
        launcher,
        slots: Sequence[View],
        step: TiledMapStep,
        memory: MemoryManager,
        stats: ExecutionStats,
        threads: int,
    ) -> None:
        """Run one resolved map step over its tile spans (the launch seam).

        All bases are already allocated.  The native backend overrides this
        to collapse a multi-thread launch of a chunk-capable compiled
        kernel into a single in-kernel-threaded call.
        """
        spans = step.spans
        if threads <= 1 and len(spans) > 1 and getattr(launcher, "single_pass", False):
            # A compiled loop nest tiles only to feed worker threads; with
            # a single worker the whole step runs as one native call,
            # skipping every per-tile view slice and marshalling round.
            stats.tiles_executed += 1
            launcher(memory, slots)
            return
        stats.tiles_executed += len(spans)

        def tile_task(span: TileSpan):
            views = tuple(slice_view(view, span) for view in slots)

            def run() -> None:
                launcher(memory, views)

            return run

        self._scatter([tile_task(span) for span in spans], threads)

    def _map_launcher(self, instructions, step=None):
        """Resolve one tiled map step to ``(slot views, launcher)``.

        The launcher is called once per tile with the tile-sliced slot
        views.  One canonical walk yields both the cache key and the
        launch views; template compilation happens only on a key miss.
        The native backend overrides this seam to substitute a compiled
        loop nest when the kernel form lowers to C; ``step`` carries the
        plan-time liveness that decides which slots such a kernel may keep
        out of memory (unused by the interpreted templates).
        """
        key, slots, make_template = prepare_kernel_launch(instructions)
        return slots, self._resolve_template(key, make_template)

    def _resolve_template(self, key, make_template) -> KernelTemplate:
        """Interpreted-template cache lookup shared with subclasses."""
        with self._cache_lock:
            template = self._template_cache.get(key)
            if template is not None:
                self.template_hits += 1
                return template
            self.template_misses += 1
        template = make_template()
        with self._cache_lock:
            # A concurrent miss may have published first; keep one winner
            # so every future launch shares a single template object.
            return self._template_cache.setdefault(key, template)

    def _run_reduce(
        self,
        instruction: Instruction,
        step: TiledReduceStep,
        memory: MemoryManager,
        stats: ExecutionStats,
        threads: int,
    ) -> None:
        stats.kernel_launches += 1
        stats.record_instruction(instruction.opcode)
        self._interpreter._account_traffic(instruction, memory, stats)
        source_view, axis_constant = instruction.inputs
        axis = int(axis_constant.value)
        elementwise_op = REDUCE_TO_ELEMENTWISE[instruction.opcode]
        ufunc = getattr(np, opcode_info(elementwise_op).numpy_name)
        out_view = instruction.out
        memory.allocate(source_view.base)
        memory.allocate(out_view.base)
        spans = step.spans
        stats.tiles_executed += len(spans)
        stats.tiled_instructions += 1

        if not step.combine:
            # Each tile reduces its own rows into a disjoint output slice;
            # within a slice the element order matches the serial
            # reduction, so results are bit-identical.
            def slice_task(span: TileSpan):
                def run() -> None:
                    source = memory.view_array(
                        slice_view(source_view, span, axis=step.tile_axis)
                    )
                    out = memory.view_array(slice_view(out_view, span, axis=0))
                    reduced = ufunc.reduce(source, axis=axis)
                    np.copyto(out, np.asarray(reduced).reshape(out.shape), casting="unsafe")

                return run

            self._scatter([slice_task(span) for span in spans], threads)
            return

        # Full 1-D reduction: one partial per tile, tree-combined.
        partials: List[Optional[np.ndarray]] = [None] * len(spans)

        def partial_task(position: int, span: TileSpan):
            def run() -> None:
                source = memory.view_array(slice_view(source_view, span))
                partials[position] = ufunc.reduce(source, axis=0)

            return run

        self._scatter(
            [partial_task(position, span) for position, span in enumerate(spans)],
            threads,
        )
        values = partials
        while len(values) > 1:
            combined = [
                ufunc(values[i], values[i + 1]) for i in range(0, len(values) - 1, 2)
            ]
            if len(values) % 2:
                combined.append(values[-1])
            values = combined
        out = memory.view_array(out_view)
        np.copyto(out, np.asarray(values[0]).reshape(out.shape), casting="unsafe")
