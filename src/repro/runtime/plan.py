"""Execution plans: fingerprinted, cached artifacts of the middleware pipeline.

Repeated-flush workloads (the heat-equation stencil, parameter sweeps) hand
the runtime a *structurally identical* byte-code program hundreds of times —
only the base-array identities differ between iterations, because the
front-end allocates fresh temporaries each round.  Re-running the full
optimization pipeline and kernel partitioning for every flush wastes exactly
the middleware overhead the paper sets out to amortize.

This module provides the three pieces that make flushes cacheable:

* :func:`canonical_program_key` / :func:`program_fingerprint` — a canonical
  structural encoding of a program (op-codes, operand geometry, constants)
  that is *tolerant of base-array identity*: two programs that differ only
  in which concrete :class:`~repro.bytecode.base.BaseArray` objects they
  reference hash identically.
* :class:`ExecutionPlan` — the cached artifact: the optimized program, its
  optimization report and the canonical base enumeration it was derived
  from.  :meth:`ExecutionPlan.bind` rebinds the plan onto the base arrays of
  a new, structurally identical program in one linear pass — no optimizer.
* :class:`PlanCache` — a bounded LRU mapping cache keys to plans, with
  hit/miss/eviction counters surfaced through the execution statistics.

Batch splitting (formerly ``repro.runtime.scheduler``) also lives here: a
flush batch is the unit a plan describes, so "how much program does a plan
get to see" is a planning decision.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import Constant, is_constant, is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.utils.config import Config, get_config
from repro.utils.errors import ExecutionError
from repro.utils.locking import ContendedLock


# --------------------------------------------------------------------------- #
# Canonical encoding and fingerprinting
# --------------------------------------------------------------------------- #


class _BaseEnumerator:
    """Assigns dense indices to base arrays in first-use order."""

    def __init__(self) -> None:
        self.order: List[BaseArray] = []
        self._index: Dict[int, int] = {}

    def index_of(self, base: BaseArray) -> int:
        key = id(base)
        idx = self._index.get(key)
        if idx is None:
            idx = len(self.order)
            self._index[key] = idx
            self.order.append(base)
        return idx


def _encode_operand(operand, bases: _BaseEnumerator) -> tuple:
    if is_view(operand):
        return (
            "v",
            bases.index_of(operand.base),
            operand.base.nelem,
            operand.base.dtype.name,
            operand.offset,
            operand.shape,
            operand.strides,
        )
    if is_constant(operand):
        return ("c", operand.dtype.name, operand.value)
    raise ExecutionError(f"cannot encode operand {operand!r}")


def _encode_instruction(instruction: Instruction, bases: _BaseEnumerator) -> tuple:
    operands = tuple(_encode_operand(op, bases) for op in instruction.operands)
    if instruction.kernel is not None:
        payload = tuple(_encode_instruction(inner, bases) for inner in instruction.kernel)
        return (instruction.opcode.name, operands, payload)
    return (instruction.opcode.name, operands)


class OperandEncoder:
    """Stateful canonical encoder shared by program and kernel fingerprinting.

    Base arrays are numbered in first-use order, so the encoding of a view
    depends only on *which* base it references relative to the walk — not on
    the base's identity or auto-generated name.  Encoding is idempotent: the
    same operand always yields the same token for one encoder instance.
    """

    def __init__(self) -> None:
        self._bases = _BaseEnumerator()

    def encode(self, operand) -> tuple:
        """Canonical token for a view or constant operand."""
        return _encode_operand(operand, self._bases)

    def encode_instruction(self, instruction: Instruction) -> tuple:
        """Canonical token for a whole instruction (kernel payload included)."""
        return _encode_instruction(instruction, self._bases)

    @property
    def bases(self) -> Tuple[BaseArray, ...]:
        """Bases seen so far, in first-use (index) order."""
        return tuple(self._bases.order)


def _walk_instruction_bases(instruction: Instruction, enumerator: _BaseEnumerator) -> None:
    for operand in instruction.operands:
        if is_view(operand):
            enumerator.index_of(operand.base)
    if instruction.kernel is not None:
        for inner in instruction.kernel:
            _walk_instruction_bases(inner, enumerator)


def program_base_order(program: Program) -> Tuple[BaseArray, ...]:
    """The program's base arrays in canonical (first-use) order.

    Exactly the enumeration :func:`canonical_program_key` builds, without
    paying for the structural tokens.  Anything structural that a plan
    stores per base (the memory planner's slot assignments) is keyed by
    position in this order, so it can be rebound onto a structurally
    identical program by re-walking it the same way.
    """
    enumerator = _BaseEnumerator()
    for instruction in program:
        _walk_instruction_bases(instruction, enumerator)
    return tuple(enumerator.order)


def canonical_program_key(program: Program) -> Tuple[tuple, Tuple[BaseArray, ...]]:
    """Return ``(key, bases)`` for ``program``.

    ``key`` is a hashable structural encoding in which base arrays are
    replaced by their first-use index, so two flushes that allocate fresh
    temporaries each iteration produce equal keys.  ``bases`` is the base
    enumeration the key was built against, in index order — exactly what
    :meth:`ExecutionPlan.bind` needs to map a plan onto a new program.
    """
    enumerator = _BaseEnumerator()
    key = tuple(_encode_instruction(instr, enumerator) for instr in program)
    return key, tuple(enumerator.order)


def program_fingerprint(program: Program) -> str:
    """A stable hex digest of the program's canonical structural key."""
    key, _ = canonical_program_key(program)
    return fingerprint_of_key(key)


def fingerprint_of_key(key: tuple) -> str:
    """Hash a canonical key (from :func:`canonical_program_key`) to hex."""
    return hashlib.blake2b(repr(key).encode("utf-8"), digest_size=16).hexdigest()


#: Configuration fields that change what the optimizer produces; a plan
#: compiled under one combination must not be replayed under another.
_CONFIG_SIGNATURE_FIELDS = (
    "enabled_passes",
    "max_constant_merge_window",
    "power_expansion_limit",
    "fusion_max_kernel_size",
    # Fusion-scheduler knobs: the schedule (clustering and byte-code order)
    # is baked into a plan's optimized program, so switching the scheduling
    # policy or the merge-acceptance threshold must compile a fresh plan.
    "fusion_scheduler",
    "fusion_cost_threshold",
    "fixed_point_max_iterations",
    "verify_rewrites",
    "random_seed",
    # Tiling knobs: plans carry their tile decomposition (and the thread
    # count shapes how a plan is executed), so any change must miss the
    # cache and re-plan rather than replay a stale decomposition.
    "parallel_num_threads",
    "parallel_tile_elements",
    "parallel_serial_threshold",
    # Memory-planning knobs: plans carry their slot assignments and
    # zero-fill waivers, so toggling the planner or the zero policy must
    # compile a fresh plan rather than replay directives computed under
    # the other setting.  The pool cap is included because it bounds how
    # much recycled storage a planned execution may park.
    "memory_plan_enabled",
    "memory_pool_max_bytes",
    "memory_zero_policy",
    # Codegen knobs: the native backend pre-compiles a plan's kernels at
    # plan time, so a plan prepared with codegen off (all interpreted
    # templates) or against a different artifact cache must not replay as
    # if it were prepared under the current settings.
    "codegen_enabled",
    "codegen_cache_dir",
    "codegen_opt_level",
    "codegen_disk_cache_enabled",
    # codegen_threads is a *runtime* argument of compiled artifacts (the
    # chunked entry point takes it per call), but plans pre-resolve their
    # launchables and stamp the resolution signature, so the thread knob is
    # signed here to keep "which plan ran with which knobs" auditable;
    # reductions-enabled flips steps between compiled and interpreted
    # execution paths at prepare time.
    "codegen_threads",
    "codegen_reductions_enabled",
    # Distributed knobs: shard plans (one shard per worker, halo depths,
    # reduction span assignments) are attached to plans at prepare time and
    # the shared-memory budget bounds what an execution may allocate, so a
    # plan prepared under one worker count or halo mode must not replay
    # under another.
    "dist_num_workers",
    "dist_halo_mode",
    "dist_shm_max_bytes",
)


def config_signature(config: Optional[Config] = None) -> tuple:
    """The optimization-relevant slice of the configuration, as a cache key.

    Any change to these fields invalidates cached plans (the cache key no
    longer matches); unrelated fields such as ``default_backend`` do not.
    """
    config = config if config is not None else get_config()
    values = []
    for name in _CONFIG_SIGNATURE_FIELDS:
        value = getattr(config, name)
        if isinstance(value, list):
            value = tuple(value)
        values.append((name, value))
    return tuple(values)


# --------------------------------------------------------------------------- #
# Execution plans
# --------------------------------------------------------------------------- #


@dataclass
class ExecutionPlan:
    """A cached, replayable result of optimizing one flush batch.

    Attributes
    ----------
    fingerprint:
        Structural fingerprint of the *source* program the plan was built
        from.
    backend_name:
        Name of the backend the plan was prepared for.
    source_bases:
        The source program's base arrays in canonical (first-use) order.
        Binding maps these positionally onto the new program's bases.
    optimized:
        The optimized program, still referencing the source bases.
    report:
        The optimization report produced when the plan was compiled; replays
        of the plan hand out cached copies (see
        :meth:`~repro.core.pipeline.OptimizationReport.replayed`).
    tiling:
        Backend-attached tile decomposition (see
        :meth:`~repro.runtime.backend.Backend.prepare_plan` and
        :mod:`repro.runtime.tiling`).  Decompositions are structural —
        instruction indices and row spans, never base identities — so the
        one computed at plan time applies unchanged to every rebound
        replay of the plan.
    memory_plan:
        The liveness-driven :class:`~repro.runtime.memplan.MemoryPlan`
        attached at plan time (``None`` when memory planning is
        disabled).  Like ``tiling`` it is structural — slot assignments
        are keyed by canonical base position — so every rebound replay
        re-uses it via :meth:`~repro.runtime.memplan.MemoryPlan.bind`.
    hits:
        How many times this plan has been reused.
    """

    fingerprint: str
    backend_name: str
    source_bases: Tuple[BaseArray, ...]
    optimized: Program
    report: Optional[object] = None
    tiling: Optional[object] = None
    #: Tiling-relevant settings the decomposition was computed under
    #: (tile size, serial threshold, resolved thread count); backends
    #: re-tile when their effective settings no longer match.
    tiling_signature: Optional[tuple] = None
    memory_plan: Optional[object] = None
    #: Memory-planning settings the plan was computed under (enabled flag
    #: and zero policy); re-planned when the effective settings change.
    memory_signature: Optional[tuple] = None
    #: The :class:`~repro.core.schedule.FusionSchedule` the optimizer's
    #: fusion pass computed for this plan (``None`` when the pipeline ran
    #: without the fusion pass).  Purely structural — byte-code indices and
    #: counters — so, like ``tiling`` and ``memory_plan``, it replays
    #: unchanged for every rebound flush; its clustering and byte-code
    #: order are already baked into ``optimized``.
    fusion_schedule: Optional[object] = None
    #: Codegen settings (plus the tiling signature) the native backend last
    #: pre-compiled this plan's kernels under; lets warm replays skip the
    #: per-step kernel-form walks entirely.
    native_signature: Optional[tuple] = None
    #: Shard descriptors (per-step worker shards, halo specifications and
    #: reduction span assignments) the distributed backend planned for this
    #: plan.  Structural like ``tiling`` — spans and canonical base
    #: positions, never base identities or segment names — so rebound
    #: replays reuse it unchanged.
    dist_plan: Optional[object] = None
    #: Settings (tiling signature plus worker count) ``dist_plan`` was
    #: computed under; re-planned when they drift.
    dist_signature: Optional[tuple] = None
    hits: int = 0
    #: Plan-artifact soundness checks run against this plan (cumulative
    #: over preparations and executions; non-zero only under ``check_ir``).
    #: Bumped under ``lock`` because cached plans are shared.
    plan_checks_run: int = 0
    #: Serializes backend re-preparation of a *shared* plan: concurrent
    #: flushes replaying one cached plan may both notice a stale tiling or
    #: codegen signature and re-attach artifacts; the lock makes each
    #: (signature check, artifact store) pair atomic so a replay can never
    #: observe a decomposition mid-swap.  Reentrant, because backends
    #: chain ``super().prepare_plan`` under it.
    lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )
    _scratch_bases: Tuple[BaseArray, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        source_ids = {id(base) for base in self.source_bases}
        scratch = []
        seen = set()
        for base in self.optimized.bases():
            if id(base) not in source_ids and id(base) not in seen:
                seen.add(id(base))
                scratch.append(base)
        self._scratch_bases = tuple(scratch)

    def bind(self, bases: Tuple[BaseArray, ...]) -> Program:
        """Rebind the optimized program onto a new program's base arrays.

        ``bases`` is the canonical base enumeration of the new (structurally
        identical) source program, as returned by
        :func:`canonical_program_key`.  Views are rewritten base-for-base;
        optimizer-introduced scratch arrays (e.g. power-expansion
        temporaries) get a fresh allocation per bind, mirroring what a full
        re-optimization would have produced.

        The rebind is a single linear pass over the optimized program —
        this is the whole point: a cache hit replaces the fixed-point
        optimizer run with O(plan size) pointer surgery.
        """
        if len(bases) != len(self.source_bases):
            raise ExecutionError(
                f"cannot bind plan over {len(self.source_bases)} bases to a "
                f"program with {len(bases)} bases"
            )
        if all(old is new for old, new in zip(self.source_bases, bases)):
            # The iteration reused the same storage (arrays mutated in
            # place); the cached program is directly executable.
            return self.optimized.copy()
        mapping: Dict[int, BaseArray] = {
            id(old): new for old, new in zip(self.source_bases, bases)
        }
        for scratch in self._scratch_bases:
            mapping[id(scratch)] = BaseArray(scratch.nelem, scratch.dtype)
        view_cache: Dict[int, View] = {}
        return Program(
            self._bind_instruction(instr, mapping, view_cache) for instr in self.optimized
        )

    def _bind_instruction(
        self,
        instruction: Instruction,
        mapping: Dict[int, BaseArray],
        view_cache: Dict[int, View],
    ) -> Instruction:
        operands = tuple(
            self._bind_operand(op, mapping, view_cache) for op in instruction.operands
        )
        kernel = None
        if instruction.kernel is not None:
            kernel = tuple(
                self._bind_instruction(inner, mapping, view_cache)
                for inner in instruction.kernel
            )
        return Instruction(instruction.opcode, operands, kernel=kernel, tag=instruction.tag)

    def _bind_operand(self, operand, mapping, view_cache):
        if is_constant(operand):
            return operand
        cached = view_cache.get(id(operand))
        if cached is not None:
            return cached
        new_base = mapping.get(id(operand.base))
        if new_base is None:
            raise ExecutionError(
                f"plan references base {operand.base.name!r} with no binding"
            )
        bound = View(new_base, operand.offset, operand.shape, operand.strides)
        view_cache[id(operand)] = bound
        return bound


# --------------------------------------------------------------------------- #
# The plan cache
# --------------------------------------------------------------------------- #


class PlanCache:
    """A bounded LRU cache of :class:`ExecutionPlan` objects.

    Keys are whatever the engine derives them from (program fingerprint plus
    backend name, pipeline signature and configuration signature); the cache
    itself only requires them to be hashable.

    The cache is thread-safe: lookup (with its LRU reordering), insertion,
    eviction and the counters all mutate under one internal lock, so many
    sessions sharing one engine — the multi-tenant service — can never
    corrupt the recency order or lose hit/miss updates.  Contended
    acquisitions are counted and surfaced in :meth:`stats`.
    """

    def __init__(self, max_plans: Optional[int] = None) -> None:
        self.max_plans = (
            max_plans if max_plans is not None else get_config().plan_cache_size
        )
        if self.max_plans < 1:
            raise ValueError(f"plan cache needs room for at least one plan, got {self.max_plans}")
        self._plans: "OrderedDict[tuple, ExecutionPlan]" = OrderedDict()
        self._lock = ContendedLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def get(self, key) -> Optional[ExecutionPlan]:
        """Look up a plan, counting the hit/miss and refreshing recency."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
                return None
            self._plans.move_to_end(key)
            self.hits += 1
            plan.hits += 1
            return plan

    def peek(self, key) -> Optional[ExecutionPlan]:
        """Look up a plan without touching recency or the counters.

        The engine's in-flight latch re-checks the cache after waiting for
        a concurrent builder; that second look must not inflate the hit
        statistics the stress suite asserts on.
        """
        with self._lock:
            return self._plans.get(key)

    def put(self, key, plan: ExecutionPlan) -> None:
        """Insert a plan, evicting the least recently used entry if full."""
        with self._lock:
            if key in self._plans:
                self._plans.move_to_end(key)
            self._plans[key] = plan
            while len(self._plans) > self.max_plans:
                self._plans.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every cached plan (counters are preserved)."""
        with self._lock:
            self._plans.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for reporting: hits, misses, evictions, current size."""
        with self._lock:
            return {
                "plan_cache_hits": self.hits,
                "plan_cache_misses": self.misses,
                "plan_cache_evictions": self.evictions,
                "plan_cache_size": len(self._plans),
                "plan_cache_capacity": self.max_plans,
                "plan_cache_contentions": self._lock.contentions,
            }


# --------------------------------------------------------------------------- #
# Batch splitting (absorbed from the former repro.runtime.scheduler)
# --------------------------------------------------------------------------- #


def split_into_batches(program: Program, split_on_sync: bool = True) -> List[Program]:
    """Split ``program`` into flush batches.

    Bohrium buffers byte-codes until a *flush point* — a ``BH_SYNC`` (the
    Python program observes a value) or the end of the program — and hands
    each batch to the vector engine.  Each batch ends right after a
    ``BH_SYNC`` instruction (inclusive) when ``split_on_sync`` is true;
    otherwise the whole program is one batch.  Empty batches are never
    produced.  A batch is the unit an :class:`ExecutionPlan` describes.
    """
    if not split_on_sync:
        return [program.copy()] if len(program) else []
    batches: List[Program] = []
    current = Program()
    for instruction in program:
        current.append(instruction)
        if instruction.opcode is OpCode.BH_SYNC:
            batches.append(current)
            current = Program()
    if len(current):
        batches.append(current)
    return batches


def merge_batches(batches: List[Program]) -> Program:
    """Concatenate batches back into a single program."""
    merged = Program()
    for batch in batches:
        merged.extend(batch)
    return merged
