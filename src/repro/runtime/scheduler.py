"""Batch scheduling of byte-code programs.

Bohrium buffers byte-codes until a *flush point* — a ``BH_SYNC`` (the Python
program observes a value) or the end of the program — and hands each batch
to the vector engine.  The optimizer operates on exactly these batches, so
the scheduler is where "how much program does a transformation get to see"
is decided.
"""

from __future__ import annotations

from typing import List

from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program


def split_into_batches(program: Program, split_on_sync: bool = True) -> List[Program]:
    """Split ``program`` into flush batches.

    Each batch ends right after a ``BH_SYNC`` instruction (inclusive) when
    ``split_on_sync`` is true; otherwise the whole program is one batch.
    Empty batches are never produced.
    """
    if not split_on_sync:
        return [program.copy()] if len(program) else []
    batches: List[Program] = []
    current = Program()
    for instruction in program:
        current.append(instruction)
        if instruction.opcode is OpCode.BH_SYNC:
            batches.append(current)
            current = Program()
    if len(current):
        batches.append(current)
    return batches


def merge_batches(batches: List[Program]) -> Program:
    """Concatenate batches back into a single program."""
    merged = Program()
    for batch in batches:
        merged.extend(batch)
    return merged
