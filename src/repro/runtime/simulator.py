"""Simulated accelerator backend with an explicit device cost model.

The paper's motivation is a GPU/multicore vector engine, which we cannot run
here.  Following the substitution rule, this backend executes programs with
the NumPy interpreter for correctness but *prices* them against a device
profile: a fixed kernel-launch latency, a peak floating-point rate and a
peak memory bandwidth.  Each kernel's simulated time is::

    launch_overhead + max(flops / flop_rate, bytes / bandwidth)

which is the standard roofline estimate.  The simulated time is what the
benchmark harness reports alongside wall-clock, and it is where the paper's
"fewer byte-codes => fewer kernels => faster" claim shows up most cleanly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.bytecode.instruction import Instruction
from repro.bytecode.opcodes import OpCode
from repro.bytecode.operand import is_view
from repro.bytecode.program import Program
from repro.runtime.backend import Backend
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.interpreter import NumPyInterpreter
from repro.runtime.memory import MemoryManager
from repro.utils.errors import CostModelError


#: Approximate floating-point operations per output element for each
#: element-wise / reduction op-code.  Transcendentals and ``pow`` are far
#: more expensive than one fused-multiply-add, which is precisely why the
#: paper's power-expansion rewrite pays off.
FLOP_WEIGHTS: Dict[OpCode, float] = {
    OpCode.BH_IDENTITY: 0.0,
    OpCode.BH_ADD: 1.0,
    OpCode.BH_SUBTRACT: 1.0,
    OpCode.BH_MULTIPLY: 1.0,
    OpCode.BH_DIVIDE: 4.0,
    OpCode.BH_MOD: 4.0,
    OpCode.BH_NEGATIVE: 1.0,
    OpCode.BH_ABSOLUTE: 1.0,
    OpCode.BH_RECIPROCAL: 4.0,
    # pow() on real hardware costs on the order of a hundred cycles per
    # element (it goes through exp/log), which is what makes the paper's
    # expansion into a handful of one-flop multiplies profitable.
    OpCode.BH_POWER: 150.0,
    OpCode.BH_SQRT: 8.0,
    OpCode.BH_EXP: 20.0,
    OpCode.BH_LOG: 20.0,
    OpCode.BH_SIN: 20.0,
    OpCode.BH_COS: 20.0,
    OpCode.BH_TAN: 24.0,
    OpCode.BH_ARCSIN: 24.0,
    OpCode.BH_ARCCOS: 24.0,
    OpCode.BH_ARCTAN: 24.0,
    OpCode.BH_ERF: 30.0,
    OpCode.BH_MAXIMUM: 1.0,
    OpCode.BH_MINIMUM: 1.0,
    OpCode.BH_GREATER: 1.0,
    OpCode.BH_GREATER_EQUAL: 1.0,
    OpCode.BH_LESS: 1.0,
    OpCode.BH_LESS_EQUAL: 1.0,
    OpCode.BH_EQUAL: 1.0,
    OpCode.BH_NOT_EQUAL: 1.0,
    OpCode.BH_LOGICAL_AND: 1.0,
    OpCode.BH_LOGICAL_OR: 1.0,
    OpCode.BH_LOGICAL_NOT: 1.0,
    OpCode.BH_ADD_REDUCE: 1.0,
    OpCode.BH_MULTIPLY_REDUCE: 1.0,
    OpCode.BH_MAXIMUM_REDUCE: 1.0,
    OpCode.BH_MINIMUM_REDUCE: 1.0,
    OpCode.BH_RANGE: 1.0,
    OpCode.BH_RANDOM: 10.0,
    OpCode.BH_TRANSPOSE: 0.0,
}


@dataclass(frozen=True)
class DeviceProfile:
    """Performance parameters of a simulated device.

    Attributes
    ----------
    name:
        Profile name (``"gpu"``, ``"multicore"``, ``"single_core"``).
    kernel_launch_overhead_s:
        Fixed latency charged per kernel launch.
    flops_per_second:
        Peak floating-point rate.
    bytes_per_second:
        Peak memory bandwidth.
    """

    name: str
    kernel_launch_overhead_s: float
    flops_per_second: float
    bytes_per_second: float

    def roofline_time(self, flops: float, bytes_moved: float) -> float:
        """Roofline execution-time estimate for one kernel (without launch)."""
        compute_time = flops / self.flops_per_second if self.flops_per_second else 0.0
        memory_time = bytes_moved / self.bytes_per_second if self.bytes_per_second else 0.0
        return max(compute_time, memory_time)


DEVICE_PROFILES: Dict[str, DeviceProfile] = {
    # Numbers are order-of-magnitude figures for a 2016-era discrete GPU,
    # a quad-core CPU using all cores, and a single core with the GIL held —
    # the three execution targets the paper contrasts.
    "gpu": DeviceProfile(
        name="gpu",
        kernel_launch_overhead_s=10e-6,
        flops_per_second=4e12,
        bytes_per_second=300e9,
    ),
    "multicore": DeviceProfile(
        name="multicore",
        kernel_launch_overhead_s=2e-6,
        flops_per_second=2e11,
        bytes_per_second=40e9,
    ),
    "single_core": DeviceProfile(
        name="single_core",
        kernel_launch_overhead_s=0.5e-6,
        flops_per_second=3e10,
        bytes_per_second=20e9,
    ),
}


def instruction_flops(instruction: Instruction) -> float:
    """Floating-point work of one byte-code under the cost model."""
    opcode = instruction.opcode
    if instruction.is_system():
        return 0.0
    if opcode is OpCode.BH_FUSED:
        return sum(instruction_flops(inner) for inner in instruction.kernel or ())
    out = instruction.out
    nelem = out.nelem if out is not None else 0
    if opcode in FLOP_WEIGHTS:
        return FLOP_WEIGHTS[opcode] * nelem
    # Dense linear-algebra extension methods: flop counts from their
    # classical algorithm complexity.
    views = instruction.input_views
    if opcode is OpCode.BH_MATMUL:
        a = views[0]
        n, k = a.shape
        m = views[1].shape[1] if views[1].ndim == 2 else 1
        return 2.0 * n * k * m
    if opcode is OpCode.BH_MATRIX_INVERSE:
        n = views[0].shape[0]
        return 2.0 * n ** 3
    if opcode is OpCode.BH_LU:
        n = views[0].shape[0]
        return (2.0 / 3.0) * n ** 3
    if opcode is OpCode.BH_LU_SOLVE:
        n = views[0].shape[0]
        rhs_cols = views[1].shape[1] if views[1].ndim == 2 else 1
        return (2.0 / 3.0) * n ** 3 + 2.0 * n ** 2 * rhs_cols
    raise CostModelError(f"no flop model for op-code {opcode.value}")


def instruction_bytes(instruction: Instruction) -> float:
    """Memory traffic (bytes) of one byte-code under the cost model."""
    if instruction.is_system():
        return 0.0
    if instruction.opcode is OpCode.BH_FUSED:
        # A fused kernel streams each distinct operand once, not once per
        # fused byte-code: count unique views only.
        seen = set()
        total = 0.0
        for inner in instruction.kernel or ():
            for view in inner.views():
                key = (id(view.base), view.offset, view.shape, view.strides)
                if key not in seen:
                    seen.add(key)
                    total += view.nbytes
        return total
    total = 0.0
    out = instruction.out
    if out is not None:
        total += out.nbytes
    for operand in instruction.inputs:
        if is_view(operand):
            total += operand.nbytes
    return total


def simulate_program_time(program: Program, profile: DeviceProfile) -> float:
    """Total simulated seconds to execute ``program`` on ``profile``.

    Every top-level non-system byte-code is one kernel launch.
    """
    total = 0.0
    for instruction in program:
        if instruction.is_system():
            continue
        flops = instruction_flops(instruction)
        bytes_moved = instruction_bytes(instruction)
        total += profile.kernel_launch_overhead_s + profile.roofline_time(flops, bytes_moved)
    return total


class SimulatedAccelerator(Backend):
    """Backend that executes on NumPy but reports device-model timings."""

    name = "simulator"

    def __init__(self, profile: str = "gpu") -> None:
        if isinstance(profile, DeviceProfile):
            self.profile = profile
        else:
            try:
                self.profile = DEVICE_PROFILES[profile]
            except KeyError:
                raise CostModelError(
                    f"unknown device profile {profile!r}; available: {tuple(DEVICE_PROFILES)}"
                ) from None
        self._interpreter = NumPyInterpreter()

    def execute(
        self, program: Program, memory: Optional[MemoryManager] = None
    ) -> ExecutionResult:
        start = time.perf_counter()
        result = self._interpreter.execute(program, memory)
        result.stats.backend_name = self.name
        result.stats.wall_time_seconds = time.perf_counter() - start
        result.stats.simulated_time_seconds = simulate_program_time(program, self.profile)
        return result

    def estimate(self, program: Program) -> float:
        """Price a program without executing it (pure cost-model query)."""
        return simulate_program_time(program, self.profile)
