"""Tile decomposition: splitting kernels into cache-sized contiguous tiles.

The tiled parallel backend executes fused element-wise kernels and axis
reductions tile-by-tile: each tile is a contiguous block of rows of the
kernel's iteration space, sized so its working set fits in cache, and
independent tiles can run on different worker threads.  This module holds
the *plan-time* half of that backend: deciding which instructions of an
optimized program are splittable, and pre-computing the tile boundaries.

The decomposition is deliberately **structural**: steps reference
instructions by program index and tiles by (start row, row count), never by
base-array identity.  :meth:`~repro.runtime.plan.ExecutionPlan.bind`
preserves instruction order, shapes and strides exactly — only base
identities change — so one decomposition, computed once when a plan is
compiled, replays verbatim against every rebound program the plan serves.
Warm flushes therefore pay zero re-tiling cost.

Splittability rules (serial fallback otherwise):

* element-wise instructions and fused kernels: every view operand must
  share the kernel's shape, the iteration space must clear the configured
  serial threshold, and no written view may overlap a differently-shaped
  window of the same base (row-aligned dependencies — an instruction
  reading exactly the view another wrote — stay inside a tile and are
  safe; shifted/overlapping windows would leak across tiles).
* reductions: n-D inputs are tiled along a non-reduced axis, so every tile
  writes a disjoint slice of the output and results are bit-identical to
  the serial reduction.  Full 1-D reductions produce one partial per tile,
  tree-combined by the backend.
* everything else — generators (``BH_RANDOM``, ``BH_RANGE``), extension
  methods (dense linear algebra), system directives — is serial, mirroring
  the splittable-versus-serial split of :mod:`repro.cluster.partition`,
  whose block distribution (:func:`~repro.cluster.partition.partition_length`)
  also computes the tile spans here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.bytecode.instruction import Instruction
from repro.bytecode.operand import is_view
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.cluster.partition import partition_length
from repro.utils.config import Config, get_config


@dataclass(frozen=True)
class TileSpan:
    """One contiguous block of rows along a tiled axis."""

    start: int
    count: int


@dataclass(frozen=True)
class SerialStep:
    """An instruction executed whole, in program order, on one thread."""

    index: int
    reason: str


@dataclass(frozen=True)
class TiledMapStep:
    """An element-wise instruction or fused kernel split into row tiles.

    Every view of the instruction is sliced with the same spans along its
    first axis; tiles touch disjoint rows of every written view, so they
    are independent.

    ``local_slots`` names the kernel's template slots (see
    :func:`repro.runtime.kernel.kernel_slot_views`) whose base arrays are
    *kernel-local*: the base's lifetime **ends** inside this instruction —
    its last access in the whole program happens here, it is freed and
    never synced.  Earlier accesses at other program indices are allowed
    (they are dead defs this kernel overwrites); within-kernel soundness
    (the first reference here must be a store) is re-checked by
    :func:`repro.codegen.loopir._elidable_slots`.  Slot indices are
    structural, so the set survives plan rebinding; backends that compile
    kernels use it to keep such temporaries out of memory entirely.
    """

    index: int
    spans: Tuple[TileSpan, ...]
    local_slots: frozenset = frozenset()


@dataclass(frozen=True)
class TiledReduceStep:
    """An axis reduction split into row tiles.

    ``combine`` is false when tiling runs along a *non-reduced* axis: each
    tile reduces its own rows and writes a disjoint slice of the output
    (bit-identical to the serial reduction).  It is true for full 1-D
    reductions, where each tile yields one partial result and the backend
    tree-combines the partials.
    """

    index: int
    spans: Tuple[TileSpan, ...]
    tile_axis: int
    combine: bool


@dataclass(frozen=True)
class TileDecomposition:
    """The plan-time tiling of one optimized program."""

    steps: Tuple[object, ...]

    @property
    def num_tiles(self) -> int:
        """Total tile count across every tiled step."""
        return sum(len(step.spans) for step in self.steps if not isinstance(step, SerialStep))

    @property
    def tiled_steps(self) -> Tuple[object, ...]:
        """The steps that run tile-parallel."""
        return tuple(step for step in self.steps if not isinstance(step, SerialStep))

    @property
    def serial_steps(self) -> Tuple[SerialStep, ...]:
        """The steps that fall back to serial execution."""
        return tuple(step for step in self.steps if isinstance(step, SerialStep))


def slice_view(view: View, span: TileSpan, axis: int = 0) -> View:
    """The sub-view addressing ``span`` along ``axis`` of ``view``.

    Same windowing arithmetic as :func:`repro.cluster.partition.partition_view`,
    generalized to any axis: the offset advances by whole strides, shape
    shrinks along the axis, strides are unchanged.
    """
    offset = view.offset + span.start * view.strides[axis]
    shape = view.shape[:axis] + (span.count,) + view.shape[axis + 1 :]
    return View(view.base, offset, shape, view.strides)


def resolve_num_threads(config: Optional[Config] = None) -> int:
    """The effective parallel worker count for ``config``.

    ``parallel_num_threads`` when set, otherwise the host's CPU count.
    """
    config = config if config is not None else get_config()
    threads = config.parallel_num_threads
    if threads is None:
        threads = os.cpu_count() or 1
    return max(1, int(threads))


def spans_for(
    rows: int, row_elements: int, tile_elements: int, min_tiles: int = 1
) -> Tuple[TileSpan, ...]:
    """Split ``rows`` rows of ``row_elements`` each into cache-sized spans.

    The tile count is chosen so each tile holds about ``tile_elements``
    elements — but never fewer than ``min_tiles`` (the worker count, so a
    mid-size workload still feeds every thread) nor more than ``rows``.
    The rows are then block-distributed with the cluster layer's
    :func:`~repro.cluster.partition.partition_length` so spans differ in
    size by at most one row.
    """
    rows_per_tile = max(1, tile_elements // max(1, row_elements))
    num_tiles = max(1, -(-rows // rows_per_tile), min_tiles)
    num_tiles = min(num_tiles, max(1, rows))
    return tuple(
        TileSpan(start, count)
        for start, count in partition_length(rows, num_tiles)
        if count > 0
    )


# --------------------------------------------------------------------------- #
# Splittability analysis
# --------------------------------------------------------------------------- #


def _map_serial_reason(
    instructions: Sequence[Instruction], config: Config
) -> Optional[str]:
    """Why a (fused) element-wise instruction list cannot be row-tiled.

    Returns ``None`` when tiling is safe.
    """
    shape = None
    for instruction in instructions:
        out = instruction.out
        if out is not None:
            shape = out.shape
            break
    if shape is None or len(shape) == 0:
        return "no output iteration space"
    views = []
    for instruction in instructions:
        for operand in instruction.operands:
            if is_view(operand):
                views.append(operand)
    for view in views:
        if view.shape != shape:
            return "operand shape differs from kernel shape"
    nelem = 1
    for dim in shape:
        nelem *= dim
    if nelem < config.parallel_serial_threshold:
        return "below serial threshold"
    if shape[0] < 2:
        return "single row"
    writes = [v for instruction in instructions for v in instruction.writes()]
    for write in writes:
        for other in views:
            if other is write or other.same_view(write):
                continue
            if write.overlaps(other):
                return "overlapping windows of one base"
    return None


def _decompose_map(
    index: int, instruction: Instruction, config: Config
) -> object:
    instructions = instruction.kernel if instruction.is_fused() else (instruction,)
    reason = _map_serial_reason(instructions, config)
    if reason is not None:
        return SerialStep(index=index, reason=reason)
    out_shape = next(i.out.shape for i in instructions if i.out is not None)
    rows = out_shape[0]
    row_elements = 1
    for dim in out_shape[1:]:
        row_elements *= dim
    spans = spans_for(
        rows, row_elements, config.parallel_tile_elements, resolve_num_threads(config)
    )
    return TiledMapStep(index=index, spans=spans)


def _decompose_reduce(
    index: int, instruction: Instruction, config: Config
) -> object:
    source = instruction.inputs[0]
    out = instruction.out
    if not is_view(source) or out is None:
        return SerialStep(index=index, reason="malformed reduction")
    axis = int(instruction.constants[0].value)
    if source.nelem < config.parallel_serial_threshold:
        return SerialStep(index=index, reason="below serial threshold")
    if out.base is source.base and out.overlaps(source):
        return SerialStep(index=index, reason="output aliases reduction input")
    if source.ndim == 1:
        # Full reduction to one value: per-tile partials, tree-combined.
        if out.nelem != 1:
            return SerialStep(index=index, reason="malformed reduction")
        spans = spans_for(
            source.shape[0], 1, config.parallel_tile_elements, resolve_num_threads(config)
        )
        if len(spans) < 2:
            return SerialStep(index=index, reason="single tile")
        return TiledReduceStep(index=index, spans=spans, tile_axis=0, combine=True)
    # n-D: tile along a non-reduced axis so each tile owns a disjoint
    # output slice.  The tiled source axis always maps to output axis 0.
    tile_axis = 1 if axis == 0 else 0
    rows = source.shape[tile_axis]
    if rows < 2:
        return SerialStep(index=index, reason="single row")
    if len(out.shape) == 0 or out.shape[0] != rows:
        return SerialStep(index=index, reason="output not sliceable with input")
    row_elements = source.nelem // rows
    spans = spans_for(
        rows, row_elements, config.parallel_tile_elements, resolve_num_threads(config)
    )
    return TiledReduceStep(index=index, spans=spans, tile_axis=tile_axis, combine=False)


def _local_slot_indices(index: int, instruction: Instruction, defuse) -> frozenset:
    """Template slots of one map step whose bases are kernel-local.

    A base qualifies when its *last* access in the whole program happens at
    this program index, it is explicitly freed, and it is never synced:
    nothing after or outside the program can observe what this kernel
    writes, so a compiled kernel may keep the value in registers and never
    materialize the storage.  Accesses at earlier indices are permitted —
    they are dead defs (or reads of them) this kernel's first store
    overwrites; a kernel that instead *reads* the base before storing keeps
    its memory lane (:func:`repro.codegen.loopir._elidable_slots` rejects
    load-before-store slots), so earlier-produced values are never lost.
    """
    from repro.runtime.kernel import kernel_slot_views

    instructions = instruction.kernel if instruction.is_fused() else (instruction,)
    local = set()
    for position, view in enumerate(kernel_slot_views(instructions)):
        base_id = id(view.base)
        if base_id in defuse.synced or base_id not in defuse.freed:
            continue
        accesses = defuse.accesses.get(base_id, ())
        if accesses and max(access.index for access in accesses) == index:
            local.add(position)
    return frozenset(local)


def decompose(program: Program, config: Optional[Config] = None) -> TileDecomposition:
    """Compute the tile decomposition of ``program``.

    This is the plan-time analysis: one walk classifying every instruction
    as tiled or serial and fixing the tile spans.  The result applies to
    any program with the same canonical structural key (see module
    docstring), so plans cache it across rebinds — ``local_slots`` included,
    because slot indices and liveness are structural, not identity-bound.
    """
    from repro.core.analysis import DefUse

    config = config if config is not None else get_config()
    defuse = None
    steps = []
    for index, instruction in enumerate(program):
        if instruction.is_system():
            steps.append(SerialStep(index=index, reason="system"))
        elif instruction.is_fused() or instruction.is_elementwise():
            step = _decompose_map(index, instruction, config)
            if isinstance(step, TiledMapStep):
                if defuse is None:
                    defuse = DefUse.analyze(program)
                step = TiledMapStep(
                    index=step.index,
                    spans=step.spans,
                    local_slots=_local_slot_indices(index, instruction, defuse),
                )
            steps.append(step)
        elif instruction.is_reduction():
            steps.append(_decompose_reduce(index, instruction, config))
        elif instruction.is_extension():
            steps.append(SerialStep(index=index, reason="extension"))
        else:
            steps.append(SerialStep(index=index, reason="generator"))
    return TileDecomposition(steps=tuple(steps))
