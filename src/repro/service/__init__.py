"""Multi-tenant array service: many sessions, one thread-safe engine.

A long-lived middleware process serves thousands of concurrent tenants;
each records byte-code through its own lightweight session while every
flush funnels into one shared :class:`~repro.runtime.engine.ExecutionEngine`
— so a plan optimized for one tenant's fingerprint is a cache hit for
every other tenant running the same structural workload, and compiled
native kernels amortize across the whole fleet instead of per session.

* :class:`ArrayService` — owns the shared engine, the shared byte-capped
  :class:`~repro.runtime.memory.BufferPool`, and admission control.
* :class:`ServiceSession` — a per-tenant session handle: isolated
  :class:`~repro.runtime.memory.MemoryManager` over a per-tenant view of
  the shared pool, flushes gated by admission control.
* :class:`AdmissionController` — bounded in-flight flushes with
  backpressure, per-tenant queue caps and timeout-with-clean-rejection
  (:class:`~repro.utils.errors.ServiceOverloadError`).
* :func:`run_service_stress` — the deterministic N-threads × M-sessions
  hammer used by the stress suite and ``repro-opt --serve-stress``.
"""

from repro.service.core import (
    AdmissionController,
    ArrayService,
    ServiceSession,
    clone_program_with_fresh_bases,
    run_service_stress,
)

__all__ = [
    "AdmissionController",
    "ArrayService",
    "ServiceSession",
    "clone_program_with_fresh_bases",
    "run_service_stress",
]
