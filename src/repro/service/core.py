"""The multi-tenant array service: sessions share one thread-safe engine.

The paper's middleware sits between many user programs and one set of
expensive artifacts — optimized plans, compiled kernels, recycled buffers.
This module is the layer that actually *shares* them: an
:class:`ArrayService` owns a single :class:`~repro.runtime.engine.ExecutionEngine`
(whose plan cache is keyed structurally, so one tenant's optimization run
is every tenant's cache hit) and a single byte-capped
:class:`~repro.runtime.memory.BufferPool`, and hands out per-tenant
:class:`ServiceSession` handles whose recorded programs, live arrays and
statistics stay fully isolated.

Admission control keeps the shared engine from being overrun: flushes are
admitted against a global in-flight cap (backpressure: excess flushes wait),
a per-tenant cap (one tenant cannot occupy the whole service; excess
submissions from an already-saturated tenant are rejected immediately), and
a timeout (a flush that cannot be admitted in time fails with a clean
:class:`~repro.utils.errors.ServiceOverloadError` — nothing executed, the
session still usable).

Lock ordering (see ``docs/architecture.md`` §9): admission is decided
before any engine lock is taken and released after all are dropped, so the
admission condition variable sits strictly *above* the engine/pool/codegen
locks and can never participate in a cycle with them.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.bytecode.base import BaseArray
from repro.bytecode.instruction import Instruction
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.bytecode.operand import is_constant
from repro.frontend.session import Session
from repro.runtime.engine import ExecutionEngine
from repro.runtime.instrumentation import ExecutionResult, ExecutionStats
from repro.runtime.memory import BufferPool, MemoryManager, TenantPoolView
from repro.runtime.plan import program_base_order
from repro.utils.config import get_config
from repro.utils.errors import ExecutionError, ServiceOverloadError
from repro.utils.locking import SingleOwner


class AdmissionController:
    """Bounded admission of flushes into the shared engine.

    Three policies compose, all over one condition variable:

    * **Global cap** (``max_inflight``): at most this many flushes execute
      concurrently; further arrivals block (backpressure) until a slot
      frees or the timeout expires.
    * **Per-tenant cap** (``tenant_max_inflight``): a tenant with this many
      flushes already admitted-or-waiting is rejected *immediately* — a
      runaway tenant queues against itself, not against the fleet.
    * **Timeout** (``timeout_seconds``): a waiter that cannot be admitted
      in time is rejected with :class:`ServiceOverloadError`.

    Rejections are clean by construction: they happen strictly before the
    engine sees the program, so no partial execution ever needs undoing.
    """

    def __init__(
        self,
        max_inflight: Optional[int] = None,
        tenant_max_inflight: Optional[int] = None,
        timeout_seconds: Optional[float] = None,
    ) -> None:
        config = get_config()
        self.max_inflight = (
            max_inflight if max_inflight is not None else config.service_max_inflight
        )
        self.tenant_max_inflight = (
            tenant_max_inflight
            if tenant_max_inflight is not None
            else config.service_tenant_max_inflight
        )
        self.timeout_seconds = (
            timeout_seconds
            if timeout_seconds is not None
            else config.service_admission_timeout_seconds
        )
        if self.max_inflight < 1:
            raise ValueError(
                f"service needs at least one in-flight slot, got {self.max_inflight}"
            )
        if self.tenant_max_inflight < 1:
            raise ValueError(
                "each tenant needs at least one in-flight slot, "
                f"got {self.tenant_max_inflight}"
            )
        self._cond = threading.Condition()
        self._inflight = 0
        #: Admitted-or-waiting flushes per tenant (the per-tenant queue cap
        #: counts waiters too, so a stuck tenant cannot pile up waiters).
        self._pending: Dict[object, int] = {}
        self.admitted = 0
        self.rejected_tenant_cap = 0
        self.rejected_timeout = 0
        self.waits = 0
        self.peak_inflight = 0

    def admit(self, tenant: object) -> None:
        """Block until ``tenant`` may flush, or raise :class:`ServiceOverloadError`."""
        with self._cond:
            pending = self._pending.get(tenant, 0)
            if pending >= self.tenant_max_inflight:
                self.rejected_tenant_cap += 1
                raise ServiceOverloadError(
                    f"tenant {tenant!r} already has {pending} flush(es) "
                    f"in flight or queued (cap {self.tenant_max_inflight})"
                )
            self._pending[tenant] = pending + 1
            # The deadline is fixed up front on the monotonic clock, so
            # repeated wakeups (other tenants winning the freed slot) can
            # never stretch one admission beyond the configured timeout.
            deadline = time.monotonic() + self.timeout_seconds
            waited = False
            while self._inflight >= self.max_inflight:
                if not waited:
                    waited = True
                    self.waits += 1
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    if self._inflight < self.max_inflight:
                        break
                    self._uncount(tenant)
                    self.rejected_timeout += 1
                    raise ServiceOverloadError(
                        f"no in-flight slot freed within {self.timeout_seconds}s "
                        f"(cap {self.max_inflight}); flush rejected cleanly"
                    )
            self._inflight += 1
            self.peak_inflight = max(self.peak_inflight, self._inflight)
            self.admitted += 1

    def release(self, tenant: object) -> None:
        """Return ``tenant``'s in-flight slot and wake one waiter."""
        with self._cond:
            self._inflight -= 1
            self._uncount(tenant)
            self._cond.notify()

    def _uncount(self, tenant: object) -> None:
        """Drop one pending count for ``tenant`` (caller holds the lock)."""
        remaining = self._pending.get(tenant, 1) - 1
        if remaining > 0:
            self._pending[tenant] = remaining
        else:
            self._pending.pop(tenant, None)

    def stats(self) -> Dict[str, int]:
        """Admission counters for the service's statistics report."""
        with self._cond:
            return {
                "admitted": self.admitted,
                "rejected_tenant_cap": self.rejected_tenant_cap,
                "rejected_timeout": self.rejected_timeout,
                "waits": self.waits,
                "inflight": self._inflight,
                "peak_inflight": self.peak_inflight,
                "max_inflight": self.max_inflight,
                "tenant_max_inflight": self.tenant_max_inflight,
            }


class ServiceSession(Session):
    """One tenant's handle onto a shared :class:`ArrayService`.

    A thin :class:`~repro.frontend.session.Session` whose engine is the
    service's shared engine and whose memory manager recycles through a
    per-tenant view of the shared buffer pool.  Everything tenant-visible —
    pending byte-code, live base arrays, flush statistics — lives on this
    object and never leaks across tenants; everything expensive — plans,
    compiled kernels, parked buffers — is shared underneath.

    Each session is contractually single-threaded (one tenant, one driver
    thread at a time); a :class:`~repro.utils.locking.SingleOwner` guard
    turns a violation into an immediate
    :class:`~repro.utils.errors.ConcurrencyError` instead of a silent race
    between two threads mutating one pending program.
    """

    def __init__(self, service: "ArrayService", tenant: object) -> None:
        super().__init__(
            engine=service.engine,
            memory=MemoryManager(pool=TenantPoolView(service.pool, tenant)),
        )
        self.service = service
        self.tenant = tenant
        self.closed = False
        self._guard = SingleOwner(f"session of tenant {tenant!r}")

    def _ensure_open(self) -> None:
        if self.closed:
            raise ExecutionError(
                f"session of tenant {self.tenant!r} is closed"
            )

    def flush(self, sync_views=()) -> Optional[ExecutionResult]:
        """Flush under admission control (may raise :class:`ServiceOverloadError`).

        An admission rejection is raised *before* the pending program is
        consumed: the recorded byte-code stays pending, so the tenant can
        simply retry the flush after backing off.
        """
        with self._guard:
            self._ensure_open()
            if (
                len(self.pending) == 0
                and not sync_views
                and not self._deferred_frees
            ):
                return None
            self.service.admission.admit(self.tenant)
            try:
                return super().flush(sync_views)
            finally:
                self.service.admission.release(self.tenant)

    def execute(self, program: Program) -> ExecutionResult:
        """Run an already-built byte-code program through the shared engine.

        The raw-program seam used by the stress harness and by callers that
        construct byte-code directly (e.g. from a parsed listing) instead of
        recording through the lazy front-end.  Counts as a flush: admission
        control applies and the result lands in ``stats_history``.
        """
        with self._guard:
            self._ensure_open()
            self.service.admission.admit(self.tenant)
            try:
                result = self.engine.execute(program, self.memory)
            finally:
                self.service.admission.release(self.tenant)
            self.memory = result.memory
            self.stats_history.append(result.stats)
            self.flush_count += 1
            return result

    def close(self) -> None:
        """Release the tenant's live arrays back to the shared pool.

        Idempotent.  Already-parked buffers the tenant released stay in the
        pool for other tenants to reuse — evicting them would throw away
        exactly the reuse the shared pool exists for.
        """
        with self._guard:
            if self.closed:
                return
            self.closed = True
            self.memory.free_all()
            self.service.pool.unregister_owner(self.tenant)


class ArrayService:
    """Owns the shared engine, pool and admission control; vends sessions.

    Parameters mirror the ``service_*`` configuration knobs; passing any
    explicitly overrides the configuration for this service instance.  The
    service is itself thread-safe: sessions may be opened, closed and
    flushed from many threads concurrently (each individual session still
    belongs to one thread at a time).
    """

    def __init__(
        self,
        backend: Optional[object] = None,
        optimize: Optional[bool] = None,
        pipeline=None,
        plan_cache_size: Optional[int] = None,
        max_inflight: Optional[int] = None,
        tenant_max_inflight: Optional[int] = None,
        admission_timeout: Optional[float] = None,
        pool_max_bytes: Optional[int] = None,
        fairness: Optional[str] = None,
    ) -> None:
        config = get_config()
        self.engine = ExecutionEngine(
            backend=backend,
            optimize=optimize,
            pipeline=pipeline,
            plan_cache_size=plan_cache_size,
        )
        self.pool = BufferPool(
            max_bytes=(
                pool_max_bytes
                if pool_max_bytes is not None
                else config.service_pool_max_bytes
            ),
            fairness=fairness if fairness is not None else config.service_fairness,
        )
        self.admission = AdmissionController(
            max_inflight=max_inflight,
            tenant_max_inflight=tenant_max_inflight,
            timeout_seconds=admission_timeout,
        )
        self._sessions: Dict[object, ServiceSession] = {}
        self._lock = threading.Lock()
        self._tenant_counter = itertools.count()
        #: Stats of sessions that have been closed and dropped, so
        #: :meth:`total_stats` never loses history to session churn.
        self._retired_stats: List[ExecutionStats] = []
        self.sessions_opened = 0
        self.closed = False

    # ------------------------------------------------------------------ #
    # Session lifecycle
    # ------------------------------------------------------------------ #

    def open_session(self, tenant: Optional[object] = None) -> ServiceSession:
        """Open a session for ``tenant`` (auto-named when omitted)."""
        with self._lock:
            if self.closed:
                raise ExecutionError("service is closed")
            if tenant is None:
                tenant = f"tenant-{next(self._tenant_counter)}"
            if tenant in self._sessions:
                raise ValueError(f"tenant {tenant!r} already has an open session")
            session = ServiceSession(self, tenant)
            self._sessions[tenant] = session
            self.sessions_opened += 1
            return session

    def close_session(self, session: ServiceSession) -> None:
        """Close ``session`` and retire its statistics."""
        session.close()
        with self._lock:
            if self._sessions.get(session.tenant) is session:
                del self._sessions[session.tenant]
            self._retired_stats.extend(session.stats_history)

    def sessions(self) -> Tuple[ServiceSession, ...]:
        """The currently open sessions (snapshot)."""
        with self._lock:
            return tuple(self._sessions.values())

    def close(self) -> None:
        """Close every session and release the backend's resources."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            open_sessions = tuple(self._sessions.values())
            self._sessions.clear()
        for session in open_sessions:
            session.close()
            self._retired_stats.extend(session.stats_history)
        backend = self.engine._backend_instance
        closer = getattr(backend, "close", None)
        if callable(closer):
            closer()

    def __enter__(self) -> "ArrayService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    def total_stats(self) -> ExecutionStats:
        """Aggregate execution statistics across every flush of every tenant.

        Merges open sessions' histories with those of closed sessions, so
        the number is service-lifetime-cumulative regardless of churn.
        """
        with self._lock:
            histories = [list(self._retired_stats)]
            histories.extend(
                list(session.stats_history) for session in self._sessions.values()
            )
        total = ExecutionStats(backend_name=str(self.engine.backend_spec))
        for history in histories:
            for stats in history:
                total.merge(stats)
        return total

    def stats(self) -> Dict[str, object]:
        """One nested dict with every shared-structure counter.

        The shape feeds straight into ``repro-opt --stats-json``: admission
        (backpressure behaviour), the shared pool (occupancy, fairness
        discards, lock contention) and the engine's cache counters (plan
        builds vs cross-session hits, codegen outcomes).
        """
        with self._lock:
            open_sessions = len(self._sessions)
        return {
            "sessions_open": open_sessions,
            "sessions_opened": self.sessions_opened,
            "admission": self.admission.stats(),
            "pool": self.pool.stats(),
            "cache": self.engine.cache_stats(),
        }


# --------------------------------------------------------------------------- #
# Program cloning and the stress harness
# --------------------------------------------------------------------------- #


def clone_program_with_fresh_bases(
    program: Program,
) -> Tuple[Program, Tuple[BaseArray, ...]]:
    """Copy ``program`` onto brand-new base arrays.

    Returns ``(clone, bases)`` where ``bases`` is the clone's canonical
    (first-use) base order.  This is what a real tenant does every
    iteration — same structure, fresh temporaries — so it is exactly the
    shape that must produce cross-session plan-cache hits: every clone
    fingerprints identically while sharing no storage with any other.
    """
    mapping: Dict[int, BaseArray] = {}
    fresh_order: List[BaseArray] = []
    for base in program_base_order(program):
        fresh = BaseArray(base.nelem, base.dtype)
        mapping[id(base)] = fresh
        fresh_order.append(fresh)
    view_cache: Dict[int, View] = {}

    def clone_operand(operand):
        if is_constant(operand):
            return operand
        cached = view_cache.get(id(operand))
        if cached is None:
            cached = View(
                mapping[id(operand.base)],
                operand.offset,
                operand.shape,
                operand.strides,
            )
            view_cache[id(operand)] = cached
        return cached

    def clone_instruction(instruction: Instruction) -> Instruction:
        operands = tuple(clone_operand(op) for op in instruction.operands)
        kernel = None
        if instruction.kernel is not None:
            kernel = tuple(clone_instruction(inner) for inner in instruction.kernel)
        return Instruction(
            instruction.opcode, operands, kernel=kernel, tag=instruction.tag
        )

    clone = Program(clone_instruction(instruction) for instruction in program)
    return clone, tuple(fresh_order)


def _snapshot(bases: Tuple[BaseArray, ...], memory: MemoryManager) -> tuple:
    """Bitwise state of every still-allocated base, by canonical position."""
    state = []
    for index, base in enumerate(bases):
        if memory.is_allocated(base):
            state.append((index, memory.allocate(base).tobytes()))
    return tuple(state)


def run_service_stress(
    program: Program,
    threads: int = 4,
    sessions: int = 8,
    repeats: int = 3,
    backend: Optional[object] = None,
    pipeline=None,
    service: Optional[ArrayService] = None,
) -> Dict[str, object]:
    """Hammer one service with ``sessions`` tenants over ``threads`` threads.

    Every tenant executes a fresh-based clone of ``program`` ``repeats``
    times; each result is compared *bitwise* against a serial reference
    computed on a private engine of the same backend.  Sessions are
    partitioned across threads (a session stays on one thread — its
    single-owner contract), so all cross-thread interleaving happens in
    the shared engine, pool and admission controller, which is where the
    bugs would live.

    Returns a report dict (``ok``, ``mismatches``, ``errors``, per-layer
    stats) consumed by ``repro-opt --serve-stress`` and the stress suite.
    """
    if threads < 1 or sessions < 1 or repeats < 1:
        raise ValueError("threads, sessions and repeats must all be at least 1")

    # Serial reference on a private engine: same backend spec, no sharing.
    reference_engine = ExecutionEngine(
        backend=backend, optimize=True, pipeline=pipeline
    )
    reference_clone, reference_bases = clone_program_with_fresh_bases(program)
    reference_result = reference_engine.execute(reference_clone, MemoryManager())
    reference = _snapshot(reference_bases, reference_result.memory)
    reference_closer = getattr(reference_engine._backend_instance, "close", None)
    if callable(reference_closer):
        reference_closer()

    owns_service = service is None
    if owns_service:
        service = ArrayService(backend=backend, pipeline=pipeline)
    mismatches = [0]
    errors: List[str] = []
    rejections = [0]
    record_lock = threading.Lock()
    handles = [service.open_session() for _ in range(sessions)]

    def drive(partition: List[ServiceSession]) -> None:
        try:
            for session in partition:
                for _ in range(repeats):
                    clone, bases = clone_program_with_fresh_bases(program)
                    try:
                        result = session.execute(clone)
                    except ServiceOverloadError:
                        with record_lock:
                            rejections[0] += 1
                        continue
                    snapshot = _snapshot(bases, result.memory)
                    if snapshot != reference:
                        with record_lock:
                            mismatches[0] += 1
                    # Free the clone's surviving arrays so session memory
                    # does not grow with the repeat count — and so the
                    # shared pool's recycle path churns under contention.
                    for base in bases:
                        result.memory.free(base)
        except Exception as exc:  # noqa: BLE001 - reported, not swallowed
            with record_lock:
                errors.append(f"{type(exc).__name__}: {exc}")

    partitions: List[List[ServiceSession]] = [[] for _ in range(threads)]
    for index, session in enumerate(handles):
        partitions[index % threads].append(session)
    workers = [
        threading.Thread(target=drive, args=(partition,), name=f"stress-{i}")
        for i, partition in enumerate(partitions)
        if partition
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    total = service.total_stats()
    stats = service.stats()
    for session in handles:
        service.close_session(session)
    if owns_service:
        service.close()

    flushes = sessions * repeats
    report: Dict[str, object] = {
        "backend": service.engine.backend.name,
        "threads": threads,
        "sessions": sessions,
        "repeats": repeats,
        "flushes": flushes,
        "executed": flushes - rejections[0],
        "mismatches": mismatches[0],
        "rejections": rejections[0],
        "errors": errors,
        "total_wall_seconds": total.wall_time_seconds,
        "plan_builds": stats["cache"]["plan_builds"],
        "plan_cache_hits": stats["cache"]["plan_cache_hits"],
        "pool_peak_bytes_held": stats["pool"]["pool_peak_bytes_held"],
        "pool_max_bytes": service.pool.max_bytes,
        "stats": stats,
    }
    report["ok"] = not errors and mismatches[0] == 0
    return report
