"""Command-line tools.

* :mod:`repro.tools.cli` — the ``repro-opt`` byte-code optimizer CLI: parse a
  textual byte-code listing, run the transformation pipeline, and print the
  optimized listing together with a report and cost-model comparison.
"""

from repro.tools.cli import main

__all__ = ["main"]
