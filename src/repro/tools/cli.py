"""``repro-opt`` — optimize textual byte-code listings from the command line.

Example
-------
Given ``listing2.bh`` containing the paper's Listing 2::

    BH_IDENTITY a0[0:10:1] 0
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_ADD a0[0:10:1] a0[0:10:1] 1
    BH_SYNC a0[0:10:1]

running ``repro-opt listing2.bh`` prints the optimized listing (the paper's
Listing 3 plus fusion), the per-pass report and the cost-model comparison.
The tool reads stdin when no file is given, so it composes with pipes.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.bytecode.parser import parse_program
from repro.bytecode.printer import format_program
from repro.core.cost import CostModel
from repro.core.pipeline import default_pipeline
from repro.core.schedule import fusion_schedule_of
from repro.core.rules import DEFAULT_PASS_ORDER, EXTENDED_PASS_ORDER, available_passes
from repro.core.verifier import SemanticVerifier
from repro.runtime.engine import ExecutionEngine
from repro.runtime.simulator import DEVICE_PROFILES
from repro.utils.config import config_override
from repro.utils.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-opt",
        description="Optimize a Bohrium-style byte-code listing with the "
        "algebraic transformation engine.",
    )
    parser.add_argument(
        "input",
        nargs="?",
        default="-",
        help="path to the byte-code listing (default: '-' reads stdin)",
    )
    parser.add_argument(
        "--passes",
        default=None,
        help="comma-separated subset of passes to run "
        f"(available: {', '.join(sorted(set(EXTENDED_PASS_ORDER)))})",
    )
    parser.add_argument(
        "--extended",
        action="store_true",
        help="include the extension passes (constant folding, strength reduction, CSE)",
    )
    parser.add_argument(
        "--power-strategy",
        default="power_of_two",
        choices=("naive", "power_of_two", "binary", "optimal"),
        help="addition-chain strategy used by power expansion (default: the paper's)",
    )
    parser.add_argument(
        "--no-fixed-point",
        action="store_true",
        help="run the pass list once instead of iterating to a fixed point",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="execute original and optimized programs on random inputs and compare",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="enable the static checking layer (config knob check_ir): run "
        "the between-pass IR verifier during optimization and the "
        "plan-artifact soundness checks before execution; any violation "
        "aborts with an error naming the offending pass and instruction",
    )
    parser.add_argument(
        "--profile",
        default="gpu",
        choices=tuple(DEVICE_PROFILES),
        help="device profile used for the cost comparison (default: gpu)",
    )
    parser.add_argument(
        "--default-length",
        type=int,
        default=1024,
        help="vector length assumed for registers that appear without an explicit view",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="execute the listing through the execution engine on this "
        "registered backend (e.g. interpreter, jit, parallel, simulator, dist) "
        "and print execution plus plan/kernel cache statistics",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="with --backend: execute the listing this many times; repeats "
        "after the first are served from the plan cache (default: 1)",
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=None,
        help="with --backend parallel: worker-thread count for the tiled "
        "parallel backend (default: the configuration, then the CPU count)",
    )
    parser.add_argument(
        "--serve-stress",
        nargs="?",
        const="4x8x3",
        default=None,
        metavar="TxSxR",
        help="run the listing through the multi-tenant array service: T "
        "driver threads x S tenant sessions x R repeats per session "
        "(default 4x8x3), comparing every result bitwise against a serial "
        "reference; exit code 3 on any mismatch or worker error",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print only the optimized listing (no report, no cost table)",
    )
    parser.add_argument(
        "--stats-json",
        action="store_true",
        help="emit a machine-readable JSON document instead of the human "
        "report: optimization summary, cost model, and (with --backend) "
        "the per-run execution-statistics trajectory plus cache counters",
    )
    parser.add_argument(
        "--list-passes",
        action="store_true",
        help="list the registered passes and exit",
    )
    return parser


def _read_input(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _selected_passes(args) -> Optional[List[str]]:
    if args.passes is None:
        return None
    requested = [name.strip() for name in args.passes.split(",") if name.strip()]
    known = set(available_passes())
    unknown = [name for name in requested if name not in known]
    if unknown:
        raise ReproError(f"unknown pass(es): {', '.join(unknown)}")
    return requested


def run(args, out=None) -> int:
    """Run the tool with parsed arguments; returns the process exit code."""
    if args.check:
        # One override around the whole run so both the report pipeline and
        # any engine executions see the knob.
        with config_override(check_ir=True):
            return _run(args, out)
    return _run(args, out)


def _run(args, out=None) -> int:
    if out is None:
        out = sys.stdout
    if args.threads is not None and args.threads < 1:
        raise ReproError(f"--threads must be at least 1, got {args.threads}")
    if args.list_passes:
        order = EXTENDED_PASS_ORDER if args.extended else DEFAULT_PASS_ORDER
        print("pipeline order:", ", ".join(order), file=out)
        print("registered passes:", ", ".join(available_passes()), file=out)
        return 0

    text = _read_input(args.input)
    program = parse_program(text, default_nelem=args.default_length)
    pipeline = default_pipeline(
        enabled_passes=_selected_passes(args),
        fixed_point=not args.no_fixed_point,
        verify=False,
        extended=args.extended,
        power_expansion={"strategy": args.power_strategy},
    )
    report = pipeline.run(program)

    if args.stats_json:
        return _run_stats_json(program, pipeline, report, args, out)

    print(format_program(report.optimized), file=out)
    if args.quiet:
        # --quiet silences the report, not the stress harness's verdict.
        if args.serve_stress is not None:
            return _serve_stress(program, args, out)
        return 0

    print(file=out)
    print(report.summary(), file=out)

    schedule = fusion_schedule_of(report)
    if schedule is not None:
        print(file=out)
        print(_format_schedule(schedule), file=out)

    model = CostModel(args.profile)
    before = model.breakdown(program)
    after = model.breakdown(report.optimized)
    print(file=out)
    print(f"cost model ({args.profile} profile):", file=out)
    print(
        f"  kernels {before.kernel_launches} -> {after.kernel_launches}, "
        f"flops {before.flops:.3g} -> {after.flops:.3g}, "
        f"bytes {before.bytes_moved:.3g} -> {after.bytes_moved:.3g}",
        file=out,
    )
    if after.seconds > 0:
        print(
            f"  predicted time {before.seconds * 1e6:.2f} us -> {after.seconds * 1e6:.2f} us "
            f"({before.seconds / after.seconds:.2f}x)",
            file=out,
        )

    if args.verify:
        verifier = SemanticVerifier()
        equivalent = verifier.equivalent(program, report.optimized)
        print(file=out)
        print(f"semantic verification: {'passed' if equivalent else 'FAILED'}", file=out)
        if not equivalent:
            return 2

    if args.backend is not None:
        _execute_with_engine(program, pipeline, report, args, out)
    if args.serve_stress is not None:
        return _serve_stress(program, args, out)
    return 0


def _engine_trajectory(program, pipeline, report, args):
    """Execute the listing ``--repeat`` times; returns (engine, per-run stats).

    Owns the execution-affecting flag handling (``--threads``), so the
    human and JSON output paths cannot diverge on how runs are configured.
    """
    if args.repeat < 1:
        raise ReproError(f"--repeat must be at least 1, got {args.repeat}")

    def execute():
        engine = ExecutionEngine(backend=args.backend, optimize=True, pipeline=pipeline)
        # The pipeline already ran once to print the report above — seed the
        # plan cache with it so the first execution replays instead of
        # re-optimizing.
        engine.prime(program, report)
        trajectory = []
        for _ in range(args.repeat):
            # Fresh memory per run: repeats measure middleware reuse, not state.
            trajectory.append(engine.execute(program).stats)
        return engine, trajectory

    if args.threads is not None:
        with config_override(parallel_num_threads=args.threads):
            return execute()
    return execute()


def _parse_stress_spec(spec: str):
    """Parse a ``TxSxR`` stress spec into (threads, sessions, repeats)."""
    parts = spec.lower().split("x")
    try:
        threads, sessions, repeats = (int(part) for part in parts)
    except ValueError:
        raise ReproError(
            f"--serve-stress expects THREADSxSESSIONSxREPEATS (e.g. 4x8x3), got {spec!r}"
        )
    if min(threads, sessions, repeats) < 1:
        raise ReproError(
            f"--serve-stress values must all be at least 1, got {spec!r}"
        )
    return threads, sessions, repeats


def _stress_report(program, args):
    """Run the multi-tenant stress harness with the CLI's flag handling."""
    from repro.service import run_service_stress

    threads, sessions, repeats = _parse_stress_spec(args.serve_stress)

    def execute():
        return run_service_stress(
            program,
            threads=threads,
            sessions=sessions,
            repeats=repeats,
            backend=args.backend,
        )

    if args.threads is not None:
        with config_override(parallel_num_threads=args.threads):
            return execute()
    return execute()


def _serve_stress(program, args, out) -> int:
    """Human-readable output for ``--serve-stress``; exit code 3 on failure."""
    report = _stress_report(program, args)
    admission = report["stats"]["admission"]
    pool = report["stats"]["pool"]
    cache = report["stats"]["cache"]
    print(file=out)
    print(
        f"service stress ({report['backend']} backend, "
        f"{report['threads']} thread(s) x {report['sessions']} session(s) "
        f"x {report['repeats']} repeat(s)):",
        file=out,
    )
    print(
        f"  {report['executed']} flush(es) executed, "
        f"{report['rejections']} rejection(s), "
        f"{report['mismatches']} mismatch(es)",
        file=out,
    )
    print(
        f"  plan cache: {report['plan_builds']} build(s), "
        f"{report['plan_cache_hits']} cross-session hit(s), "
        f"{cache['plan_waits']} build wait(s)",
        file=out,
    )
    print(
        f"  admission: peak {admission['peak_inflight']} in flight "
        f"(cap {admission['max_inflight']}), "
        f"{admission['waits']} backpressure wait(s), "
        f"{admission['rejected_timeout']} timeout(s)",
        file=out,
    )
    print(
        f"  pool: peak {pool['pool_peak_bytes_held']} byte(s) parked "
        f"(cap {report['pool_max_bytes']}), "
        f"{pool['pool_discards']} discard(s), "
        f"{pool['pool_lock_contentions']} lock contention(s)",
        file=out,
    )
    if "native_mt_launches" in cache:
        print(
            f"  native: {cache['native_mt_launches']} in-kernel mt "
            f"launch(es), {cache['native_reductions_compiled']} compiled "
            f"reduction(s), {cache['native_reduction_fallbacks']} reduction "
            f"fallback(s), {cache['native_slots_elided']} slot(s) elided",
            file=out,
        )
    if report["ok"]:
        print("  result: bitwise-identical to the serial reference", file=out)
        return 0
    print(
        f"  result: STRESS FAILED ({report['mismatches']} mismatch(es), "
        f"{len(report['errors'])} worker error(s))",
        file=out,
    )
    for error in report["errors"]:
        print(f"    {error}", file=out)
    return 3


def _codegen_block(cache: dict) -> Optional[dict]:
    """The ``codegen`` summary of ``--stats-json``: how the native tier ran.

    ``None`` for backends without native counters, so the block's presence
    itself says "this execution had a compiled tier".
    """
    if "native_mt_launches" not in cache:
        return None
    return {
        "mt_launches": cache["native_mt_launches"],
        "reductions_compiled": cache["native_reductions_compiled"],
        "reduction_fallbacks": cache["native_reduction_fallbacks"],
        "slots_elided": cache["native_slots_elided"],
        "compiles": cache["native_compiles"],
        "kernel_launches": cache["native_kernel_launches"],
        "fallbacks": cache["native_fallbacks"],
    }


def _distributed_block(cache: dict) -> Optional[dict]:
    """The ``distributed`` summary of ``--stats-json``: how the dist tier ran.

    ``None`` for backends without shard counters, so the block's presence
    itself says "this execution ran across worker processes".  The
    ``payload_bytes`` entry is the hot-path invariant: array bytes that
    crossed the control channel (must stay 0 — arrays travel only through
    shared memory).
    """
    if "dist_workers_spawned" not in cache:
        return None
    return {
        "workers_spawned": cache["dist_workers_spawned"],
        "shard_launches": cache["dist_shard_launches"],
        "halo_exchanges": cache["dist_halo_exchanges"],
        "payload_bytes": cache["dist_payload_bytes"],
        "loads_shipped": cache["dist_loads_shipped"],
        "segments_created": cache["dist_segments_created"],
        "segments_recycled": cache["dist_segments_recycled"],
        "shm_bytes_active": cache["dist_shm_bytes_active"],
        "comm_priced_us": cache["comm_priced_us"],
        "comm_measured_us": cache["comm_measured_us"],
    }


def _format_schedule(schedule) -> str:
    """Human-readable one-liner for the fusion scheduler's statistics."""
    return (
        f"fusion scheduler ({schedule.scheduler}): "
        f"kernels {schedule.kernels_before} -> {schedule.kernels_after}, "
        f"{schedule.bytecodes_reordered} byte-code(s) reordered, "
        f"predicted streaming savings "
        f"{schedule.predicted_savings_seconds * 1e6:.2f} us"
    )


def _run_stats_json(program, pipeline, report, args, out) -> int:
    """Emit the machine-readable statistics document (``--stats-json``)."""
    model = CostModel(args.profile)
    before = model.breakdown(program)
    after = model.breakdown(report.optimized)
    passes = {}
    for stats in report.pass_stats:
        passes[stats.pass_name] = passes.get(stats.pass_name, 0) + stats.rewrites_applied
    payload = {
        "optimization": {
            "instructions_before": report.instructions_before,
            "instructions_after": report.instructions_after,
            "iterations": report.iterations,
            "rewrites": report.total_rewrites,
            "rewrites_per_pass": passes,
        },
        "cost_model": {
            "profile": args.profile,
            "kernels_before": before.kernel_launches,
            "kernels_after": after.kernel_launches,
            "flops_before": before.flops,
            "flops_after": after.flops,
            "bytes_before": before.bytes_moved,
            "bytes_after": after.bytes_moved,
            "seconds_before": before.seconds,
            "seconds_after": after.seconds,
        },
    }
    schedule = fusion_schedule_of(report)
    if schedule is not None:
        payload["optimization"]["fusion_scheduler"] = schedule.stats()
    exit_code = 0
    if args.verify:
        equivalent = SemanticVerifier().equivalent(program, report.optimized)
        payload["verified"] = bool(equivalent)
        if not equivalent:
            exit_code = 2
    if args.backend is not None:
        engine, trajectory = _engine_trajectory(program, pipeline, report, args)
        cache_stats = engine.cache_stats()
        execution = {
            "backend": engine.backend.name,
            "runs": args.repeat,
            "per_run": [stats.as_dict() for stats in trajectory],
            "cache": cache_stats,
        }
        codegen = _codegen_block(cache_stats)
        if codegen is not None:
            execution["codegen"] = codegen
        distributed = _distributed_block(cache_stats)
        if distributed is not None:
            execution["distributed"] = distributed
        plan = engine.last_plan
        memory_plan = plan.memory_plan if plan is not None else None
        if memory_plan is not None:
            execution["memory_plan"] = memory_plan.stats()
        plan_schedule = plan.fusion_schedule if plan is not None else None
        if plan_schedule is not None:
            execution["fusion_scheduler"] = plan_schedule.stats()
        payload["execution"] = execution
    if args.serve_stress is not None:
        report = _stress_report(program, args)
        payload["service"] = report
        if not report["ok"] and exit_code == 0:
            exit_code = 3
    if args.check:
        from repro.checks import COUNTERS

        # Snapshot last so plan checks paid during --backend executions are
        # included.  Process-wide analyzer totals: proof the checks actually
        # ran (an all-zero "checks" block means --check was vacuous).
        payload["checks"] = COUNTERS.snapshot()
    json.dump(payload, out, indent=2)
    print(file=out)
    return exit_code


def _execute_with_engine(program, pipeline, report, args, out) -> None:
    """Run the listing through the staged engine and report cache statistics."""
    engine, trajectory = _engine_trajectory(program, pipeline, report, args)
    last_stats = trajectory[-1]

    print(file=out)
    print(f"execution ({engine.backend.name} backend, {args.repeat} run(s)):", file=out)
    print(
        f"  last run: {last_stats.instructions_executed} byte-code(s), "
        f"{last_stats.kernel_launches} kernel launch(es), "
        f"{last_stats.wall_time_seconds * 1e3:.3f} ms wall, "
        f"{last_stats.plan_time_seconds * 1e3:.3f} ms planning",
        file=out,
    )
    if last_stats.threads_used:
        print(
            f"  tiling: {last_stats.tiles_executed} tile(s) over "
            f"{last_stats.threads_used} thread(s), "
            f"{last_stats.tiled_instructions} tiled byte-code(s), "
            f"{last_stats.serial_fallbacks} serial fallback(s)",
            file=out,
        )
    print(
        f"  memory: {last_stats.pool_hits} pool hit(s), "
        f"{last_stats.pool_misses} pool miss(es), "
        f"{last_stats.pool_bytes_reused} byte(s) reused, "
        f"peak {last_stats.actual_peak_bytes} byte(s)",
        file=out,
    )
    plan = engine.last_plan
    plan_schedule = plan.fusion_schedule if plan is not None else None
    report_schedule = fusion_schedule_of(report)
    if plan_schedule is not None and (
        report_schedule is None or plan_schedule.stats() != report_schedule.stats()
    ):
        # Normally the plan replays the printed report's schedule (the CLI
        # primes the cache with it) and the line above already said it all;
        # only a genuinely different plan-stage schedule is worth a line.
        print(f"  {_format_schedule(plan_schedule)}", file=out)
    memory_plan = plan.memory_plan if plan is not None else None
    if memory_plan is not None:
        print(
            f"  memory plan: {memory_plan.num_slots} shared slot(s) over "
            f"{memory_plan.aliased_bases} aliased base(s), "
            f"{memory_plan.zero_fills_waived} zero fill(s) waived, "
            f"planned peak {memory_plan.planned_peak_bytes} byte(s) "
            f"(unplanned {memory_plan.unplanned_peak_bytes})",
            file=out,
        )
    cache = engine.cache_stats()
    print(
        f"  plan cache: {cache['plan_cache_hits']} hit(s), "
        f"{cache['plan_cache_misses']} miss(es), "
        f"{cache['plan_cache_size']} plan(s) cached",
        file=out,
    )
    if "kernel_cache_hits" in cache:
        print(
            f"  kernel cache: {cache['kernel_cache_hits']} hit(s), "
            f"{cache['kernel_cache_misses']} miss(es), "
            f"{cache.get('kernel_cache_size', 0)} kernel(s) cached",
            file=out,
        )
    if "tile_template_hits" in cache:
        print(
            f"  tile templates: {cache['tile_template_hits']} hit(s), "
            f"{cache['tile_template_misses']} miss(es), "
            f"{cache.get('tile_template_size', 0)} template(s) cached",
            file=out,
        )
    if "native_compiles" in cache:
        print(
            f"  native codegen: {cache['native_compiles']} compile(s), "
            f"{cache['native_disk_hits']} disk hit(s), "
            f"{cache['native_memory_hits']} memory hit(s), "
            f"{cache['native_kernel_launches']} native launch(es), "
            f"{cache['native_fallbacks']} fallback(s)",
            file=out,
        )
    if "native_mt_launches" in cache:
        print(
            f"  native threading: {cache['native_mt_launches']} in-kernel "
            f"mt launch(es), {cache['native_reductions_compiled']} compiled "
            f"reduction(s), {cache['native_reduction_fallbacks']} reduction "
            f"fallback(s), {cache['native_slots_elided']} slot(s) elided",
            file=out,
        )
    if "dist_workers_spawned" in cache:
        print(
            f"  distributed: {cache['dist_workers_spawned']} worker(s) "
            f"spawned, {cache['dist_shard_launches']} shard launch(es), "
            f"{cache['dist_halo_exchanges']} halo exchange(s), "
            f"{cache['dist_payload_bytes']} control-channel payload byte(s), "
            f"{cache['dist_segments_created']} segment(s) created "
            f"({cache['dist_segments_recycled']} recycled)",
            file=out,
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Console entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return run(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
