"""Shared utilities: configuration, errors, logging and timing helpers."""

from repro.utils.errors import (
    ReproError,
    ValidationError,
    ExecutionError,
    RewriteError,
    FrontendError,
    AllocationError,
    ConcurrencyError,
    ServiceOverloadError,
)
from repro.utils.config import Config, get_config, set_config, config_override
from repro.utils.locking import ContendedLock, SingleOwner
from repro.utils.timing import Timer, StopWatch

__all__ = [
    "ReproError",
    "ValidationError",
    "ExecutionError",
    "RewriteError",
    "FrontendError",
    "AllocationError",
    "ConcurrencyError",
    "ServiceOverloadError",
    "Config",
    "get_config",
    "set_config",
    "config_override",
    "ContendedLock",
    "SingleOwner",
    "Timer",
    "StopWatch",
]
