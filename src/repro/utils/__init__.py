"""Shared utilities: configuration, errors, logging and timing helpers."""

from repro.utils.errors import (
    ReproError,
    ValidationError,
    ExecutionError,
    RewriteError,
    FrontendError,
    AllocationError,
)
from repro.utils.config import Config, get_config, set_config, config_override
from repro.utils.timing import Timer, StopWatch

__all__ = [
    "ReproError",
    "ValidationError",
    "ExecutionError",
    "RewriteError",
    "FrontendError",
    "AllocationError",
    "Config",
    "get_config",
    "set_config",
    "config_override",
    "Timer",
    "StopWatch",
]
