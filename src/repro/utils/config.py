"""Global library configuration.

The configuration object controls cross-cutting behaviour such as which
optimization passes are enabled by default, whether rewrites are verified
semantically after they are applied, and the default execution backend used
by the lazy front-end.

The configuration is intentionally a plain dataclass with module-level
accessors (:func:`get_config`, :func:`set_config`, :func:`config_override`)
rather than environment-variable magic, following the "explicit is better
than implicit" rule.
"""

from __future__ import annotations

import contextlib
import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, List, Optional


@dataclass
class Config:
    """Library-wide configuration knobs.

    Attributes
    ----------
    default_backend:
        Name of the backend the front-end uses when none is given.  One of
        ``"interpreter"``, ``"jit"`` or ``"simulator"``.
    optimize:
        Whether the front-end runs the optimization pipeline before
        executing a flushed program.
    verify_rewrites:
        When true, every pipeline run re-executes the original and the
        optimized program on the same inputs and compares the results.
        Expensive; meant for tests and debugging.
    check_ir:
        When true, the static checking layer (:mod:`repro.checks`) runs
        between every optimization pass (flow-sensitive program invariant
        checks, :class:`~repro.utils.errors.IRCheckError` naming the first
        offending pass) and on every plan preparation/execution
        (memory-plan, schedule and tiling soundness,
        :class:`~repro.utils.errors.PlanCheckError`).  Purely read-only:
        plans built with checks on are byte-identical to plans built with
        checks off, so the knob is deliberately *not* part of the
        plan-cache signature.
    max_constant_merge_window:
        Upper bound on how many consecutive constant operations the
        constant-merge pass will contract at once.
    power_expansion_limit:
        Largest integer exponent that the power-expansion pass will rewrite
        into multiplications.  Above this the ``BH_POWER`` op-code is kept.
    fusion_max_kernel_size:
        Maximum number of element-wise byte-codes fused into one kernel.
    fusion_scheduler:
        Clustering policy behind kernel fusion.  ``"dag"`` (the default)
        builds a data-dependency graph and clusters *non-adjacent* fusable
        byte-codes via legal topological reordering, accepting each merge
        with the cost model; ``"consecutive"`` restores the low-end policy
        of maximal runs of adjacent element-wise byte-codes.  Part of the
        plan-cache signature, so toggling it re-plans.
    fusion_cost_threshold:
        Minimum predicted saving (simulated seconds: one kernel launch plus
        re-streamed shared operands) a merge must clear before the
        dependency-graph scheduler accepts it.  ``0.0`` accepts every legal
        merge; a large value disables merging without disabling the
        scheduler's analysis.
    fixed_point_max_iterations:
        Safety bound on the pipeline's iterate-to-fixed-point loop.
    plan_cache_enabled:
        Whether the execution engine caches optimized execution plans keyed
        by program fingerprint and replays them on structurally identical
        flushes.
    plan_cache_size:
        Maximum number of execution plans the engine's LRU plan cache holds.
    parallel_num_threads:
        Worker-thread count used by the tiled parallel backend.  ``None``
        (the default) resolves to ``os.cpu_count()`` at execution time.
    parallel_tile_elements:
        Target number of elements per tile when the parallel backend splits
        a fused kernel or reduction into cache-sized contiguous tiles.
    parallel_serial_threshold:
        Operations over fewer elements than this run serially in the
        parallel backend: below it, tiling overhead exceeds the win.
    memory_plan_enabled:
        Whether plan compilation additionally runs the liveness-driven
        memory planner (:mod:`repro.runtime.memplan`): temporaries with
        disjoint lifetimes share storage slots and provably
        fully-initialised buffers skip their zero fill.  Part of the plan
        cache key, so toggling it re-plans instead of replaying a plan
        built under the other setting.
    memory_pool_max_bytes:
        Byte cap of the size-class buffer pool each
        :class:`~repro.runtime.memory.MemoryManager` recycles freed
        allocations through.  ``0`` disables pooling entirely (every
        allocation is fresh, every free returns storage to the host).
    memory_zero_policy:
        ``"auto"`` zero-fills a buffer only when the liveness analysis
        cannot prove every element is written before it is read;
        ``"always"`` zero-fills every allocation regardless (the
        pre-planning behaviour, useful when debugging a suspected
        planner unsoundness).
    codegen_enabled:
        Whether the native backend lowers eligible kernel forms to
        compiled C loops.  When off (or when lowering/compilation fails)
        every kernel runs through the interpreted templates, so the
        backend degrades to the tiled parallel backend's behaviour.  Part
        of the plan-cache signature.
    codegen_cache_dir:
        Directory of the on-disk compiled-artifact cache.  ``None`` (the
        default) resolves to the ``REPRO_CODEGEN_CACHE`` environment
        variable or ``~/.cache/repro-codegen``.  Part of the plan-cache
        signature because plans pre-compile their kernels against one
        concrete cache.
    codegen_opt_level:
        C compiler optimization level (0-3) for generated kernels.  Part
        of the artifact content digest, so changing it can never reuse a
        library built under different flags.
    codegen_disk_cache_enabled:
        Whether compiled artifacts persist on disk.  When off, kernels
        compile into a process-private temporary directory and only the
        in-process cache amortizes them.
    codegen_threads:
        Thread count passed to compiled kernels' ``repro_kernel_mt`` entry
        point (in-kernel chunking across the artifact's persistent worker
        pool).  ``None`` defers to the ``REPRO_CODEGEN_THREADS``
        environment variable and then to the parallel worker count.  This
        is a *runtime* argument of the artifact — changing it never
        recompiles or invalidates cached kernels.
    codegen_reductions_enabled:
        Whether tiled reductions lower to compiled C kernels.  When off
        (or when a reduction form has no lowering) reductions run on the
        tiled interpreted paths, counted as
        ``native_reduction_fallbacks``.
    service_max_inflight:
        Global cap on concurrently executing flushes inside an
        :class:`~repro.service.ArrayService`.  Arrivals beyond the cap
        queue (with backpressure) until a slot frees or the admission
        timeout expires.
    service_tenant_max_inflight:
        Per-tenant cap on queued-plus-executing flushes; one tenant
        hammering the service cannot starve the others past this depth.
    service_admission_timeout_seconds:
        How long an over-cap flush waits for admission before it is
        cleanly rejected with
        :class:`~repro.utils.errors.ServiceOverloadError`.
    service_pool_max_bytes:
        Byte cap of the *shared* buffer pool an ``ArrayService`` hands to
        every tenant session (tenant-agnostic recycling, per-tenant
        accounting).  Independent of ``memory_pool_max_bytes``, which caps
        the private pool of a stand-alone session.
    service_fairness:
        ``"shared"`` lets any tenant park freed buffers until the global
        cap; ``"fair"`` additionally caps each tenant's parked bytes at an
        equal share of the pool, so one tenant's burst of large frees
        cannot monopolize the recycling budget.
    dist_num_workers:
        Worker-process count of the distributed (``"dist"``) backend's
        persistent pool.  Shard plans depend on it, so it is signed into
        the plan signature; pools are shared process-wide per worker
        count.
    dist_halo_mode:
        How stencil shards fetch their halo rows: ``"overlap"`` runs the
        exchange on a background thread while the shard's interior rows
        compute, ``"blocking"`` fetches first and computes after.  Results
        are bitwise identical either way.
    dist_shm_max_bytes:
        Byte cap on live ``multiprocessing.shared_memory`` segments (active
        arrays plus the recycling free list) owned by the distributed
        backend's shard store.  Exceeding it raises
        :class:`~repro.utils.errors.DistributedExecutionError` instead of
        exhausting ``/dev/shm``.
    enabled_passes:
        Names of passes that the default pipeline should include.  ``None``
        means "all registered default passes".
    random_seed:
        Seed used by verification and workload generators for
        reproducibility.
    """

    default_backend: str = "interpreter"
    optimize: bool = True
    verify_rewrites: bool = False
    check_ir: bool = False
    max_constant_merge_window: int = 1024
    power_expansion_limit: int = 64
    fusion_max_kernel_size: int = 32
    fusion_scheduler: str = "dag"
    fusion_cost_threshold: float = 0.0
    fixed_point_max_iterations: int = 16
    plan_cache_enabled: bool = True
    plan_cache_size: int = 128
    parallel_num_threads: Optional[int] = None
    parallel_tile_elements: int = 65536
    parallel_serial_threshold: int = 8192
    memory_plan_enabled: bool = True
    memory_pool_max_bytes: int = 1 << 26  # 64 MiB
    memory_zero_policy: str = "auto"
    codegen_enabled: bool = True
    codegen_cache_dir: Optional[str] = None
    codegen_opt_level: int = 3
    codegen_disk_cache_enabled: bool = True
    codegen_threads: Optional[int] = None
    codegen_reductions_enabled: bool = True
    service_max_inflight: int = 16
    service_tenant_max_inflight: int = 4
    service_admission_timeout_seconds: float = 5.0
    service_pool_max_bytes: int = 1 << 28  # 256 MiB
    service_fairness: str = "shared"
    dist_num_workers: int = 2
    dist_halo_mode: str = "overlap"
    dist_shm_max_bytes: int = 1 << 30  # 1 GiB
    enabled_passes: Optional[List[str]] = None
    random_seed: int = 0x5EED

    def copy(self) -> "Config":
        """Return a deep copy of this configuration."""
        return copy.deepcopy(self)

    def replace(self, **changes) -> "Config":
        """Return a new configuration with ``changes`` applied."""
        return dataclasses.replace(self.copy(), **changes)


_CONFIG = Config()


def get_config() -> Config:
    """Return the currently active global configuration object."""
    return _CONFIG


def set_config(config: Config) -> None:
    """Replace the global configuration with ``config``."""
    global _CONFIG
    if not isinstance(config, Config):
        raise TypeError(f"expected Config, got {type(config)!r}")
    _CONFIG = config


@contextlib.contextmanager
def config_override(**changes) -> Iterator[Config]:
    """Temporarily override configuration fields within a ``with`` block.

    Example
    -------
    >>> with config_override(optimize=False):
    ...     ...  # front-end flushes run unoptimized here
    """
    global _CONFIG
    previous = _CONFIG
    _CONFIG = previous.replace(**changes)
    try:
        yield _CONFIG
    finally:
        _CONFIG = previous
