"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish validation problems from execution problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError):
    """A byte-code program or instruction failed static validation.

    Raised by :mod:`repro.bytecode.validate` when an instruction has the
    wrong arity, incompatible operand shapes, a constant in an output
    position, or similar structural problems.
    """


class IRCheckError(ValidationError):
    """A between-pass program invariant was violated.

    Raised by :mod:`repro.checks.ircheck` when the program produced by an
    optimization pass breaks a flow-sensitive invariant the pass's input
    satisfied (a read of a never-written temporary, a dropped SYNC target, a
    use after BH_FREE, a view escaping its base).  The pipeline decorates
    the message with the *first offending pass* so the diagnosis lands on
    the rewrite, not on the backend that would have executed the damage.

    Attributes
    ----------
    index:
        Position of the offending instruction in the checked program, or
        ``None`` for whole-program violations (e.g. a missing SYNC).
    pass_name:
        Name of the pass whose output failed, filled in by the pipeline.
    """

    def __init__(self, message: str, index=None, pass_name=None) -> None:
        super().__init__(message)
        self.index = index
        self.pass_name = pass_name


class PlanCheckError(ValidationError):
    """A plan-time artifact failed its independent soundness check.

    Raised by :mod:`repro.checks.plancheck` when a memory plan aliases
    overlapping lifetimes, a fusion schedule violates a dependency edge, or
    a tiling decomposition contradicts the independently recomputed overlap
    hazards.  Backends run the check from ``prepare_plan`` under the
    ``check_ir`` knob, so a corrupted cached plan can never execute.
    """


class ExecutionError(ReproError):
    """A backend failed while executing a byte-code program."""


class DistributedExecutionError(ExecutionError):
    """The distributed backend lost a worker or hit a protocol fault.

    Raised when a worker process dies mid-flush, replies with an error
    frame, violates the control protocol, or the shared-memory budget is
    exhausted.  The failure is surfaced cleanly: the worker pool is torn
    down (a fresh pool respawns on the next flush) and the session remains
    usable — no hang, no leaked shared-memory segments.
    """


class RewriteError(ReproError):
    """A transformation pass produced an invalid or non-equivalent program.

    Raised either directly by a pass that detects it cannot apply safely, or
    by the semantic verifier when the optimized program disagrees with the
    original program on a test input.
    """


class FrontendError(ReproError):
    """Misuse of the lazy array front-end (e.g. shape mismatch)."""


class AllocationError(ReproError):
    """The memory manager could not satisfy an allocation request."""


class ParseError(ReproError):
    """The textual byte-code parser encountered malformed input."""


class CostModelError(ReproError):
    """The cost model was asked to price an unknown operation."""


class ClusterError(ReproError):
    """The simulated cluster executor hit an invalid configuration."""


class ConcurrencyError(ReproError):
    """A single-owner structure was entered by two threads concurrently.

    Raised by :class:`repro.utils.locking.SingleOwner` — the deterministic
    diagnosis for what would otherwise be a silent data race (two threads
    driving one tenant session at once).
    """


class ServiceOverloadError(ReproError):
    """The array service rejected a flush under admission control.

    Raised when the in-flight cap (global or per-tenant) stays saturated
    past the admission timeout.  The rejection is clean: nothing was
    recorded as executed and the session remains usable — callers retry or
    shed load.
    """
