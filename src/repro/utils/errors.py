"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish validation problems from execution problems.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError):
    """A byte-code program or instruction failed static validation.

    Raised by :mod:`repro.bytecode.validate` when an instruction has the
    wrong arity, incompatible operand shapes, a constant in an output
    position, or similar structural problems.
    """


class ExecutionError(ReproError):
    """A backend failed while executing a byte-code program."""


class RewriteError(ReproError):
    """A transformation pass produced an invalid or non-equivalent program.

    Raised either directly by a pass that detects it cannot apply safely, or
    by the semantic verifier when the optimized program disagrees with the
    original program on a test input.
    """


class FrontendError(ReproError):
    """Misuse of the lazy array front-end (e.g. shape mismatch)."""


class AllocationError(ReproError):
    """The memory manager could not satisfy an allocation request."""


class ParseError(ReproError):
    """The textual byte-code parser encountered malformed input."""


class CostModelError(ReproError):
    """The cost model was asked to price an unknown operation."""


class ClusterError(ReproError):
    """The simulated cluster executor hit an invalid configuration."""


class ConcurrencyError(ReproError):
    """A single-owner structure was entered by two threads concurrently.

    Raised by :class:`repro.utils.locking.SingleOwner` — the deterministic
    diagnosis for what would otherwise be a silent data race (two threads
    driving one tenant session at once).
    """


class ServiceOverloadError(ReproError):
    """The array service rejected a flush under admission control.

    Raised when the in-flight cap (global or per-tenant) stays saturated
    past the admission timeout.  The rejection is clean: nothing was
    recorded as executed and the session remains usable — callers retry or
    shed load.
    """
