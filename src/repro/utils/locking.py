"""Lock-discipline helpers shared by every thread-safe runtime structure.

The multi-tenant service multiplexes many concurrent sessions onto one
shared engine, so every cache the engine touches (plan LRU, buffer pool,
codegen digest memo, backend-local template LRUs) needs a lock — and the
service's observability story needs to know how hot those locks run.  Two
small primitives keep that discipline uniform instead of ad-hoc:

* :class:`ContendedLock` — a reentrant lock that counts how many acquires
  had to block behind another thread.  Structures expose the counter in
  their ``stats()`` dicts, so cross-session contention shows up in
  ``repro-opt --stats-json`` next to the hit/miss counters it explains.
* :class:`SingleOwner` — a guard for structures that are *not* locked but
  are contractually touched by one thread at a time (a tenant's session,
  a memory manager between flushes).  Violations raise immediately with
  both thread names instead of corrupting state silently.

Lock hierarchy (documented in ``docs/architecture.md`` §9): the engine's
plan latch may be held while taking the plan-cache lock, the buffer-pool
lock or the codegen memo lock; none of those are ever held while taking a
lock above them, and they never nest among themselves.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.utils.errors import ConcurrencyError


class ContendedLock:
    """A reentrant lock that counts contended acquisitions.

    An acquire that succeeds immediately is free; one that has to block
    behind another thread increments :attr:`contentions`.  The counter is
    monotonic and read without the lock (a torn read of an int is benign
    in CPython), so surfacing it in ``stats()`` never adds contention of
    its own.
    """

    __slots__ = ("_lock", "contentions", "acquisitions")

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.contentions = 0
        self.acquisitions = 0

    def acquire(self) -> None:
        if not self._lock.acquire(blocking=False):
            self._lock.acquire()
            self.contentions += 1
        self.acquisitions += 1

    def release(self) -> None:
        self._lock.release()

    def __enter__(self) -> "ContendedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class SingleOwner:
    """Asserts that a code region is entered by one thread at a time.

    This is the *discipline* half of the thread-safety layer: structures
    that are deliberately lock-free (a tenant's session, its memory
    manager) declare their contract with a ``SingleOwner`` guard, and a
    second thread entering concurrently gets a :class:`ConcurrencyError`
    naming both threads — a deterministic diagnosis instead of a latent
    race.  Re-entry by the owning thread is permitted (flushes recurse
    through the front-end).
    """

    __slots__ = ("_label", "_lock", "_owner", "_depth", "violations")

    def __init__(self, label: str = "structure") -> None:
        self._label = label
        self._lock = threading.Lock()
        self._owner: Optional[threading.Thread] = None
        self._depth = 0
        self.violations = 0

    def __enter__(self) -> "SingleOwner":
        me = threading.current_thread()
        with self._lock:
            if self._owner is None or self._owner is me:
                self._owner = me
                self._depth += 1
                return self
            self.violations += 1
            other = self._owner.name
        raise ConcurrencyError(
            f"{self._label} is owned by thread {other!r} but was entered "
            f"concurrently by {me.name!r}; each tenant session must be "
            "driven by one thread at a time"
        )

    def __exit__(self, *exc_info) -> None:
        with self._lock:
            self._depth -= 1
            if self._depth == 0:
                self._owner = None
