"""Small timing helpers used by benchmarks and instrumentation."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class Timer:
    """Context-manager wall-clock timer.

    Example
    -------
    >>> with Timer() as t:
    ...     do_work()
    >>> t.elapsed  # seconds
    """

    def __init__(self) -> None:
        self.start: Optional[float] = None
        self.end: Optional[float] = None

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self.end = time.perf_counter()

    @property
    def elapsed(self) -> float:
        """Elapsed wall-clock seconds (0.0 if the timer never ran)."""
        if self.start is None:
            return 0.0
        end = self.end if self.end is not None else time.perf_counter()
        return end - self.start


@dataclass
class StopWatch:
    """Accumulates named timing segments.

    Used by the instrumented backends to attribute time to phases
    (scheduling, kernel execution, memory management).
    """

    segments: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    _open: Dict[str, float] = field(default_factory=dict)

    def start(self, name: str) -> None:
        """Begin timing the segment ``name``."""
        self._open[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop timing ``name`` and return the duration of this interval."""
        begin = self._open.pop(name, None)
        if begin is None:
            return 0.0
        duration = time.perf_counter() - begin
        self.segments[name] = self.segments.get(name, 0.0) + duration
        self.counts[name] = self.counts.get(name, 0) + 1
        return duration

    def add(self, name: str, seconds: float) -> None:
        """Directly add ``seconds`` to the segment ``name``."""
        self.segments[name] = self.segments.get(name, 0.0) + seconds
        self.counts[name] = self.counts.get(name, 0) + 1

    def total(self) -> float:
        """Total seconds across all segments."""
        return sum(self.segments.values())

    def as_dict(self) -> Dict[str, float]:
        """Return a copy of the per-segment totals."""
        return dict(self.segments)

    def merge(self, other: "StopWatch") -> None:
        """Fold another stop-watch's segments into this one."""
        for name, seconds in other.segments.items():
            self.segments[name] = self.segments.get(name, 0.0) + seconds
        for name, count in other.counts.items():
            self.counts[name] = self.counts.get(name, 0) + count
