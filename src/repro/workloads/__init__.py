"""Workload generators used by the examples, tests and benchmark harness.

Two granularities:

* :mod:`repro.workloads.microbench` — byte-code-level programs matching the
  paper's listings and claims one-to-one (repeated constant adds, powers,
  element-wise chains, the inverse-then-multiply linear-solve idiom).
* :mod:`repro.workloads.applications` — front-end-level scientific kernels
  of the kind the paper's introduction motivates (heat-equation stencil,
  Black-Scholes pricing, Monte-Carlo pi, Gaussian blur) used by the
  end-to-end benchmark (E7) and the examples.
* :mod:`repro.workloads.generators` — randomized program generation used by
  property-based tests to fuzz the optimizer against the semantic verifier.
"""

from repro.workloads.microbench import (
    elementwise_chain,
    linear_solve_program,
    power_program,
    repeated_constant_add,
    repeated_scaling,
)
from repro.workloads.applications import (
    black_scholes,
    gaussian_blur,
    heat_equation,
    heat_equation_with_norm,
    monte_carlo_pi,
    polynomial_evaluation,
)
from repro.workloads.generators import random_elementwise_program

__all__ = [
    "repeated_constant_add",
    "repeated_scaling",
    "power_program",
    "elementwise_chain",
    "linear_solve_program",
    "heat_equation",
    "heat_equation_with_norm",
    "black_scholes",
    "monte_carlo_pi",
    "gaussian_blur",
    "polynomial_evaluation",
    "random_elementwise_program",
]
