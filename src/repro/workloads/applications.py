"""Front-end-level scientific workloads (the paper's motivating use cases).

Each function takes the numbers of a realistic kernel and expresses it with
the lazy front-end exactly as a NumPy user would write it — no byte-code
level tricks.  The value returned is a :class:`~repro.frontend.array.BhArray`
(or a tuple of them); nothing has been executed yet, so the caller decides
when to flush and with which configuration (optimized / unoptimized, which
backend), which is what benchmark E7 does.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.frontend import creation, linalg, random as bh_random, reductions, ufuncs
from repro.frontend.array import BhArray
from repro.frontend.session import Session


def heat_equation(
    grid_size: int = 64,
    iterations: int = 10,
    hot_edge_value: float = 100.0,
    session: Optional[Session] = None,
) -> BhArray:
    """Jacobi iteration for the 2-D heat equation on a square grid.

    The classic Bohrium demonstration workload: each iteration replaces the
    interior with the average of its four neighbours, expressed with shifted
    views (no explicit Python loops over elements).
    """
    grid = creation.zeros((grid_size, grid_size), session=session)
    grid[0, :] = hot_edge_value
    grid[-1, :] = hot_edge_value
    work = grid
    for _ in range(iterations):
        up = work[0:-2, 1:-1]
        down = work[2:, 1:-1]
        left = work[1:-1, 0:-2]
        right = work[1:-1, 2:]
        interior = (up + down + left + right) * 0.25
        next_grid = work.copy()
        next_grid[1:-1, 1:-1] = interior
        work = next_grid
    return work


def heat_equation_with_norm(
    grid_size: int = 64,
    iterations: int = 10,
    hot_edge_value: float = 100.0,
    session: Optional[Session] = None,
) -> Tuple[BhArray, list]:
    """Heat-equation Jacobi iteration with a per-step norm diagnostic.

    Identical stencil to :func:`heat_equation`, but every step also records
    a convergence diagnostic — the summed vertical neighbour contribution —
    **mid-chain**: the reduction is emitted between the element-wise
    byte-codes of the stencil, exactly where a monitoring statement lands
    in real simulation codes.  Consecutive-only fusion cuts the
    element-wise chain at the interleaved reduction; the dependency-graph
    fusion scheduler legally reorders the reduction past the rest of the
    chain and fuses the whole stencil step into one kernel, so this
    workload launches strictly fewer kernels with the scheduler on.

    Returns the final grid plus the list of per-step norm arrays (one
    single-element array per iteration).
    """
    grid = creation.zeros((grid_size, grid_size), session=session)
    grid[0, :] = hot_edge_value
    grid[-1, :] = hot_edge_value
    work = grid
    norms = []
    for _ in range(iterations):
        up = work[0:-2, 1:-1]
        down = work[2:, 1:-1]
        left = work[1:-1, 0:-2]
        right = work[1:-1, 2:]
        vertical = up + down
        # The per-step "norm": interleaved into the stencil's chain on
        # purpose (see the docstring).
        norm = reductions.sum(vertical) * 0.25
        interior = ((vertical + left) + right) * 0.25
        next_grid = work.copy()
        next_grid[1:-1, 1:-1] = interior
        norms.append(norm)
        work = next_grid
    return work, norms


def black_scholes(
    num_options: int = 10_000,
    strike: float = 100.0,
    rate: float = 0.05,
    volatility: float = 0.2,
    maturity: float = 1.0,
    session: Optional[Session] = None,
) -> BhArray:
    """European call prices under Black-Scholes for random spot prices.

    A long element-wise pipeline (log, sqrt, erf, exp, many multiplies) —
    the kind of chain where fusion and constant handling matter.
    """
    spot = bh_random.uniform(80.0, 120.0, num_options, session=session)
    sqrt_t = math.sqrt(maturity)
    log_moneyness = ufuncs.log(spot / strike)
    d1 = (log_moneyness + (rate + 0.5 * volatility * volatility) * maturity) / (
        volatility * sqrt_t
    )
    d2 = d1 - volatility * sqrt_t
    cdf_d1 = (ufuncs.erf(d1 / math.sqrt(2.0)) + 1.0) * 0.5
    cdf_d2 = (ufuncs.erf(d2 / math.sqrt(2.0)) + 1.0) * 0.5
    discount = math.exp(-rate * maturity)
    return spot * cdf_d1 - (strike * discount) * cdf_d2


def monte_carlo_pi(
    num_samples: int = 100_000, session: Optional[Session] = None
) -> BhArray:
    """Monte-Carlo estimate of pi from uniform samples in the unit square.

    Returns a single-element array holding the estimate.
    """
    x = bh_random.random(num_samples, session=session)
    y = bh_random.random(num_samples, session=session)
    radius_squared = x * x + y * y
    inside = radius_squared <= 1.0
    # Boolean -> float accumulation: multiply by 1.0 to promote, then reduce.
    hits = reductions.sum(inside * 1.0)
    return hits * (4.0 / num_samples)


def gaussian_blur(
    height: int = 64,
    width: int = 64,
    iterations: int = 3,
    session: Optional[Session] = None,
) -> BhArray:
    """Iterated 3x3 box/Gaussian-style blur of a random image via shifted views.

    Stands in for the imaging-pipeline workloads of the CINEMA project the
    paper is embedded in (X-ray tomography post-processing).
    """
    image = bh_random.random((height, width), session=session)
    work = image
    for _ in range(iterations):
        centre = work[1:-1, 1:-1]
        up = work[0:-2, 1:-1]
        down = work[2:, 1:-1]
        left = work[1:-1, 0:-2]
        right = work[1:-1, 2:]
        corners = (
            work[0:-2, 0:-2] + work[0:-2, 2:] + work[2:, 0:-2] + work[2:, 2:]
        )
        blurred = centre * 0.25 + (up + down + left + right) * 0.125 + corners * 0.0625
        next_image = work.copy()
        next_image[1:-1, 1:-1] = blurred
        work = next_image
    return work


def polynomial_evaluation(
    size: int = 10_000,
    exponent: int = 10,
    session: Optional[Session] = None,
) -> BhArray:
    """Evaluate ``x**exponent + 3`` over a random vector.

    A tiny workload combining the paper's two headline transformations:
    the power is expanded into a multiplication chain and the trailing
    constant additions are merged.
    """
    x = bh_random.uniform(0.5, 1.5, size, session=session)
    result = x ** exponent
    result += 1
    result += 1
    result += 1
    return result


def linear_system_solution(
    n: int = 64,
    reuse_inverse: bool = False,
    session: Optional[Session] = None,
) -> Tuple[BhArray, Optional[BhArray]]:
    """Solve a random well-conditioned system via the ``inv(A) @ b`` idiom.

    Returns ``(x, extra)`` where ``extra`` is the reuse of the inverse (its
    row sums) when ``reuse_inverse`` is true, else ``None``.
    """
    import numpy as np

    from repro.frontend.creation import array
    from repro.linalg.util import random_well_conditioned

    matrix = array(random_well_conditioned(n, seed=n), session=session)
    rhs = array(np.random.default_rng(n).standard_normal(n), session=session)
    inverse = linalg.inv(matrix)
    solution = inverse @ rhs
    extra = reductions.sum(inverse, axis=0) if reuse_inverse else None
    return solution, extra
