"""Randomised program generation for property-based testing.

The generator builds structurally valid element-wise byte-code programs with
a mix of in-place accumulations, fresh outputs, constants and view inputs.
The property tests run every generated program through the full optimization
pipeline and assert, via the semantic verifier, that the optimized program
computes the same observable values — the strongest end-to-end statement we
can make about the transformation engine.
"""

from __future__ import annotations

import random as _random
from typing import List, Optional, Sequence, Tuple

from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.dtypes import float64
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View

#: Element-wise op-codes the generator draws from.  Kept to operations that
#: are numerically tame on inputs around one so verification tolerances stay
#: meaningful.
_BINARY_OPCODES = (
    OpCode.BH_ADD,
    OpCode.BH_SUBTRACT,
    OpCode.BH_MULTIPLY,
    OpCode.BH_MAXIMUM,
    OpCode.BH_MINIMUM,
)
_UNARY_OPCODES = (
    OpCode.BH_ABSOLUTE,
    OpCode.BH_SQRT,
    OpCode.BH_NEGATIVE,
)
_CONSTANT_POOL = (0, 1, 2, 3, 0.5, 1.5, -1, -0.25)


def random_elementwise_program(
    seed: int,
    num_instructions: int = 12,
    vector_length: int = 16,
    num_vectors: int = 3,
    include_power: bool = True,
) -> Tuple[Program, List[View]]:
    """Generate a random but valid element-wise program.

    Parameters
    ----------
    seed:
        Seed for the pseudo-random choices (programs are reproducible).
    num_instructions:
        Number of compute byte-codes to emit (system byte-codes are added on
        top).
    vector_length:
        Length of every vector register.
    num_vectors:
        How many distinct base arrays the program works over.
    include_power:
        Whether to sprinkle in ``BH_POWER`` byte-codes with small natural
        exponents (exercises the power-expansion pass).

    Returns the program plus the list of views that get synced (the
    observable outputs).
    """
    rng = _random.Random(seed)
    builder = ProgramBuilder(float64)
    vectors = [builder.new_vector(vector_length) for _ in range(num_vectors)]
    # Give every register a defined starting value so reads are never of
    # uninitialised (but zero-filled) storage with surprising semantics.
    for vector in vectors:
        builder.identity(vector, rng.choice(_CONSTANT_POOL))

    for _ in range(num_instructions):
        kind = rng.random()
        out = rng.choice(vectors)
        if include_power and kind < 0.15:
            source = rng.choice([v for v in vectors if v is not out] or vectors)
            builder.power(out, source, rng.randint(2, 12))
        elif kind < 0.35:
            opcode = rng.choice(_UNARY_OPCODES)
            source = rng.choice(vectors)
            if opcode is OpCode.BH_SQRT:
                # Keep sqrt inputs non-negative: take absolute value first.
                builder.absolute(out, source)
                builder.emit_unary(opcode, out, out)
            else:
                builder.emit_unary(opcode, out, source)
        else:
            opcode = rng.choice(_BINARY_OPCODES)
            left = out if rng.random() < 0.6 else rng.choice(vectors)
            if rng.random() < 0.5:
                right = rng.choice(_CONSTANT_POOL)
            else:
                right = rng.choice(vectors)
            builder.emit_binary(opcode, out, left, right)

    synced = []
    for vector in vectors:
        if rng.random() < 0.8:
            builder.sync(vector)
            synced.append(vector)
    if not synced:
        builder.sync(vectors[0])
        synced.append(vectors[0])
    return builder.build(), synced


def random_mixed_program(
    seed: int,
    num_instructions: int = 10,
    rows: int = 8,
    cols: int = 6,
    include_random: bool = True,
) -> Tuple[Program, List[View]]:
    """Generate a random program mixing element-wise ops and reductions.

    Built for the differential-testing harness: alongside the element-wise
    byte-codes of :func:`random_elementwise_program` it emits 2-D axis
    reductions (both axes), a full 1-D reduction down to a scalar, and —
    optionally — seeded ``BH_RANDOM`` generators, covering every execution
    path of the tiled parallel backend (sliced reductions, tree-combined
    partials, serial fallback) while staying numerically tame.

    Returns the program plus the synced (observable) views.
    """
    rng = _random.Random(seed)
    builder = ProgramBuilder(float64)
    matrices = [builder.new_matrix(rows, cols) for _ in range(2)]
    row_out = builder.new_vector(cols)   # axis-0 reductions land here
    col_out = builder.new_vector(rows)   # axis-1 reductions land here
    scalar_out = builder.new_vector(1)   # full 1-D reduction lands here
    for matrix in matrices:
        builder.identity(matrix, rng.choice(_CONSTANT_POOL))
    for vector in (row_out, col_out, scalar_out):
        builder.identity(vector, rng.choice(_CONSTANT_POOL))

    for _ in range(num_instructions):
        kind = rng.random()
        if kind < 0.25:
            source = rng.choice(matrices)
            reduce = rng.choice((builder.add_reduce, builder.maximum_reduce))
            if rng.random() < 0.5:
                reduce(row_out, source, axis=0)
            else:
                reduce(col_out, source, axis=1)
        elif include_random and kind < 0.35:
            builder.random(rng.choice(matrices), rng.randint(0, 2**31))
        else:
            opcode = rng.choice(_BINARY_OPCODES)
            out = rng.choice(matrices)
            left = out if rng.random() < 0.6 else rng.choice(matrices)
            if rng.random() < 0.5:
                right = rng.choice(_CONSTANT_POOL)
            else:
                right = rng.choice(matrices)
            builder.emit_binary(opcode, out, left, right)

    # Always exercise the tree-combined 1-D reduction path.
    builder.add_reduce(scalar_out, col_out, axis=0)

    synced = [matrices[0], row_out, col_out, scalar_out]
    for view in synced:
        builder.sync(view)
    return builder.build(), synced
