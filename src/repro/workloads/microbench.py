"""Byte-code-level micro-workloads matching the paper's listings.

Every function returns a ``(program, outputs)`` pair (plus, where relevant, a
pre-populated memory manager) so benchmarks can run the *same* program both
unoptimized and optimized and compare instruction counts, simulated cost and
wall-clock time.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.bytecode.dtypes import DType, float64
from repro.bytecode.builder import ProgramBuilder
from repro.bytecode.opcodes import OpCode
from repro.bytecode.program import Program
from repro.bytecode.view import View
from repro.linalg.util import random_well_conditioned
from repro.runtime.memory import MemoryManager


def repeated_constant_add(
    size: int, repeats: int = 3, constant: float = 1, dtype: DType = float64
) -> Tuple[Program, View]:
    """The paper's Listing 1/2 generalised: ``repeats`` additions of ``constant``.

    Returns the program and the accumulated view (``a0``).
    """
    builder = ProgramBuilder(dtype)
    accumulator = builder.new_vector(size)
    builder.identity(accumulator, 0)
    for _ in range(repeats):
        builder.add(accumulator, accumulator, constant)
    builder.sync(accumulator)
    return builder.build(), accumulator


def repeated_scaling(
    size: int, repeats: int = 4, factor: float = 2.0, dtype: DType = float64
) -> Tuple[Program, View]:
    """Multiplicative variant of the constant-merge workload."""
    builder = ProgramBuilder(dtype)
    accumulator = builder.new_vector(size)
    builder.identity(accumulator, 1)
    for _ in range(repeats):
        builder.multiply(accumulator, accumulator, factor)
    builder.sync(accumulator)
    return builder.build(), accumulator


def power_program(
    size: int, exponent: int, dtype: DType = float64
) -> Tuple[Program, View, MemoryManager]:
    """``y = x ** exponent`` over a vector of ``size`` elements (Listings 4-5).

    Returns the program, the output view and a memory manager whose input
    vector is filled with reproducible values in ``[0.5, 1.5)`` (kept near
    one so large exponents do not overflow).
    """
    builder = ProgramBuilder(dtype)
    x = builder.new_vector(size)
    y = builder.new_vector(size)
    builder.power(y, x, exponent)
    builder.sync(y)
    program = builder.build()
    memory = MemoryManager()
    rng = np.random.default_rng(exponent * 7919 + size)
    memory.set_data(x.base, rng.uniform(0.5, 1.5, size))
    return program, y, memory


def elementwise_chain(
    size: int,
    length: int = 8,
    opcodes: Sequence[OpCode] = (OpCode.BH_ADD, OpCode.BH_MULTIPLY),
    dtype: DType = float64,
) -> Tuple[Program, View]:
    """A chain of ``length`` element-wise byte-codes over one vector (E6).

    The chain alternates through ``opcodes`` with small constants, each
    byte-code writing the accumulator in place — the shape that fusion
    contracts into a single kernel.
    """
    builder = ProgramBuilder(dtype)
    accumulator = builder.new_vector(size)
    builder.identity(accumulator, 1)
    constants = (1.5, 0.75, 2.0, 0.5)
    for step in range(length):
        opcode = opcodes[step % len(opcodes)]
        constant = constants[step % len(constants)]
        builder.emit_binary(opcode, accumulator, accumulator, constant)
    builder.sync(accumulator)
    return builder.build(), accumulator


def linear_solve_program(
    n: int,
    reuse_inverse: bool = False,
    seed: int = 0,
    dtype: DType = float64,
) -> Tuple[Program, View, MemoryManager]:
    """The Equation 2 idiom: ``x = inv(A) @ b`` as byte-code.

    Parameters
    ----------
    n:
        System size (``A`` is ``n x n``).
    reuse_inverse:
        When true, an extra byte-code reads the inverse afterwards
        (``trace_like = sum(inv)``), which makes the rewrite *unsafe*; the
        optimizer must then leave the program alone.  Benchmark E5 exercises
        both settings.
    seed:
        Seed for the well-conditioned random system.

    Returns the program, the solution view and a memory manager holding
    ``A`` and ``b``.
    """
    builder = ProgramBuilder(dtype)
    matrix = builder.new_matrix(n, n)
    rhs = builder.new_vector(n)
    inverse = builder.new_matrix(n, n)
    solution = builder.new_vector(n)
    builder.matrix_inverse(inverse, matrix)
    builder.matmul(solution, inverse, rhs)
    if reuse_inverse:
        row_sums = builder.new_vector(n)
        builder.add_reduce(row_sums, inverse, axis=0)
        builder.sync(row_sums)
    builder.sync(solution)
    # The inverse is an unnamed temporary in the source program, so the
    # front-end frees it once every use has been recorded (Bohrium emits
    # BH_FREE when the Python object is garbage collected).  In the reuse
    # case the extra read above still blocks the rewrite.
    builder.free(inverse)
    program = builder.build()

    memory = MemoryManager()
    memory.set_data(matrix.base, random_well_conditioned(n, seed=seed))
    rng = np.random.default_rng(seed + 1)
    memory.set_data(rhs.base, rng.standard_normal(n))
    return program, solution, memory
