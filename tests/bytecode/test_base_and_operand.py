"""Tests for BaseArray and operand (Constant) behaviour."""

import numpy as np
import pytest

from repro.bytecode.base import BaseArray
from repro.bytecode.dtypes import bool_, float64, int64
from repro.bytecode.operand import Constant, as_operand, is_constant, is_view, operand_dtype
from repro.bytecode.view import View


class TestBaseArray:
    def test_basic_properties(self):
        base = BaseArray(100, float64, name="x")
        assert base.nelem == 100
        assert base.name == "x"
        assert base.nbytes == 800

    def test_auto_naming_is_unique(self):
        first, second = BaseArray(4), BaseArray(4)
        assert first.name != second.name

    def test_zero_or_negative_size_rejected(self):
        with pytest.raises(ValueError):
            BaseArray(0)
        with pytest.raises(ValueError):
            BaseArray(-3)

    def test_equality_is_identity(self):
        first, second = BaseArray(8, name="same"), BaseArray(8, name="same")
        assert first == first
        assert first != second
        assert len({first, second}) == 2


class TestConstant:
    def test_dtype_inference(self):
        assert Constant(3).dtype is int64
        assert Constant(3.5).dtype is float64
        assert Constant(True).dtype is bool_

    def test_explicit_dtype_coerces_value(self):
        constant = Constant(3, float64)
        assert isinstance(constant.value, float)
        assert constant.value == 3.0

    def test_as_numpy_scalar(self):
        value = Constant(2, int64).as_numpy()
        assert value.dtype == np.int64
        assert value == 2

    def test_equality_with_constants_and_scalars(self):
        assert Constant(3) == Constant(3)
        assert Constant(3) != Constant(4)
        assert Constant(3) == 3
        assert Constant(3.0) != Constant(3)  # different dtype

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_wrapping_a_constant_keeps_value(self):
        inner = Constant(5)
        assert Constant(inner).value == 5


class TestOperandHelpers:
    def test_is_constant_and_is_view(self):
        base = BaseArray(4)
        assert is_view(View.full(base))
        assert not is_constant(View.full(base))
        assert is_constant(Constant(1))
        assert not is_view(Constant(1))

    def test_as_operand_coerces_scalars(self):
        assert is_constant(as_operand(7))
        assert is_constant(as_operand(1.25))
        assert is_constant(as_operand(np.float64(2.0)))

    def test_as_operand_rejects_unknown(self):
        with pytest.raises(TypeError):
            as_operand("nope")

    def test_operand_dtype(self):
        base = BaseArray(4, int64)
        assert operand_dtype(View.full(base)) is int64
        assert operand_dtype(Constant(1.0)) is float64
