"""Tests for repro.bytecode.dtypes."""

import numpy as np
import pytest

from repro.bytecode import dtypes
from repro.bytecode.dtypes import bool_, float32, float64, int32, int64, promote


class TestDTypeProperties:
    def test_float64_is_float(self):
        assert float64.is_float and not float64.is_integer and not float64.is_bool

    def test_int64_is_integer(self):
        assert int64.is_integer and not int64.is_float

    def test_bool_flags(self):
        assert bool_.is_bool and not bool_.is_float and not bool_.is_integer

    def test_itemsize_matches_numpy(self):
        assert float64.itemsize == 8
        assert float32.itemsize == 4
        assert int32.itemsize == 4
        assert bool_.itemsize == 1

    def test_repr_is_bohrium_name(self):
        assert repr(float64) == "BH_FLOAT64"


class TestLookup:
    def test_from_name(self):
        assert dtypes.from_name("BH_FLOAT64") is float64
        assert dtypes.from_name("BH_INT32") is int32

    def test_from_name_unknown_raises(self):
        with pytest.raises(KeyError):
            dtypes.from_name("BH_COMPLEX128")

    def test_from_numpy_exact(self):
        assert dtypes.from_numpy(np.float64) is float64
        assert dtypes.from_numpy(np.dtype(np.int64)) is int64
        assert dtypes.from_numpy(np.bool_) is bool_

    def test_from_numpy_fallback_integer_widths(self):
        assert dtypes.from_numpy(np.int16) is int64
        assert dtypes.from_numpy(np.uint32) is int64

    def test_from_numpy_fallback_float16(self):
        assert dtypes.from_numpy(np.float16) is float64

    def test_from_numpy_unsupported_raises(self):
        with pytest.raises(KeyError):
            dtypes.from_numpy(np.complex128)

    def test_from_python(self):
        assert dtypes.from_python(True) is bool_
        assert dtypes.from_python(7) is int64
        assert dtypes.from_python(1.5) is float64

    def test_from_python_unsupported(self):
        with pytest.raises(TypeError):
            dtypes.from_python("not a number")


class TestPromotion:
    @pytest.mark.parametrize(
        "left, right, expected",
        [
            (bool_, int64, int64),
            (int32, int64, int64),
            (int64, float32, float32),
            (float32, float64, float64),
            (float64, bool_, float64),
            (float64, float64, float64),
        ],
    )
    def test_promote_pairs(self, left, right, expected):
        assert promote(left, right) is expected
        assert promote(right, left) is expected

    def test_all_dtypes_listed(self):
        assert set(dtypes.all_dtypes()) == {bool_, int32, int64, float32, float64}
